//! Constructor parity: the paper's central claim, as one test. Every
//! canonical `Algorithm` variant, driven through the unified `ChlBuilder`,
//! must produce the *identical* labeling on both topology families the paper
//! evaluates — and `SParaPll` a superset that answers identical distances.

use planted_hub_labeling::graph::sssp::dijkstra;
use planted_hub_labeling::prelude::*;

/// The two topology families of the paper's evaluation, seeded so runs are
/// reproducible: a perturbed weighted grid (road-like) and a Barabási–Albert
/// graph (scale-free). Weights are spread wide to keep shortest paths nearly
/// tie-free, which makes even `SParaPll`'s size relation deterministic in
/// practice.
fn testbeds() -> Vec<(&'static str, CsrGraph)> {
    let grid = grid_network(
        &GridOptions {
            rows: 14,
            cols: 14,
            max_weight: 1000,
            ..GridOptions::default()
        },
        0xC0FFEE,
    );
    let ba = barabasi_albert(250, 3, 0xBEEF);
    vec![("grid", grid), ("barabasi-albert", ba)]
}

#[test]
fn all_canonical_constructors_agree_on_both_topologies() {
    for (name, graph) in testbeds() {
        let ranking = degree_ranking(&graph);
        let builder = ChlBuilder::new(&graph)
            .ranking(RankingStrategy::Explicit(ranking.clone()))
            .threads(3);

        let reference = builder
            .clone()
            .algorithm(Algorithm::Pll)
            .validate()
            .expect("configuration is valid")
            .build()
            .expect("construction succeeds")
            .index;

        for algo in Algorithm::CANONICAL {
            let built = builder
                .clone()
                .algorithm(algo)
                .build()
                .unwrap_or_else(|e| panic!("{algo} on {name}: {e}"))
                .index;
            assert_eq!(
                built, reference,
                "{algo} must produce the identical canonical labeling on {name}"
            );
        }
        // The reference itself is the true CHL.
        assert!(
            is_canonical(&graph, &ranking, &reference),
            "seqPLL output not canonical on {name}"
        );
    }
}

#[test]
fn spara_pll_is_a_query_equivalent_superset() {
    for (name, graph) in testbeds() {
        let ranking = degree_ranking(&graph);
        let builder = ChlBuilder::new(&graph)
            .ranking(RankingStrategy::Explicit(ranking.clone()))
            .threads(4);

        let canonical = builder
            .clone()
            .algorithm(Algorithm::Pll)
            .build()
            .unwrap()
            .index;
        let para = builder
            .algorithm(Algorithm::SParaPll)
            .build()
            .unwrap()
            .index;

        // Superset in size (nearly tie-free weights make this robust to
        // thread interleaving)...
        assert!(
            para.total_labels() >= canonical.total_labels(),
            "SParaPll produced fewer labels than the CHL on {name}"
        );

        // ...and identical distances everywhere, verified against Dijkstra
        // through the shared DistanceOracle surface.
        let n = graph.num_vertices() as u32;
        for u in (0..n).step_by(17) {
            let truth = dijkstra(&graph, u);
            for v in 0..n {
                assert_eq!(para.distance(u, v), truth[v as usize], "{name}: d({u},{v})");
                assert_eq!(
                    canonical.distance(u, v),
                    truth[v as usize],
                    "{name}: d({u},{v})"
                );
            }
        }
    }
}

#[test]
fn hybrid_switch_points_do_not_change_the_labeling() {
    // The builder's tuning knobs steer performance, never the output: the
    // Hybrid must stay canonical across aggressive and lazy switch points.
    let (_, graph) = testbeds().remove(0);
    let ranking = degree_ranking(&graph);
    let builder = ChlBuilder::new(&graph)
        .ranking(RankingStrategy::Explicit(ranking.clone()))
        .threads(2);
    let reference = builder
        .clone()
        .algorithm(Algorithm::Pll)
        .build()
        .unwrap()
        .index;
    for psi in [1.0, 10.0, 1000.0] {
        let hybrid = builder
            .clone()
            .algorithm(Algorithm::Hybrid)
            .psi_threshold(psi)
            .build()
            .unwrap()
            .index;
        assert_eq!(
            hybrid, reference,
            "Hybrid with psi_threshold={psi} diverged"
        );
    }
}
