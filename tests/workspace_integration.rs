//! Workspace-level integration tests exercising the facade crate end-to-end:
//! dataset generation → ranking → construction through the unified
//! `ChlBuilder` (shared-memory and distributed) → query serving behind the
//! `DistanceOracle` trait — one-shot and through the long-running TCP
//! serving tier — all cross-checked against ground truth.

use planted_hub_labeling::graph::sssp::dijkstra;
use planted_hub_labeling::prelude::*;
use planted_hub_labeling::query::random_pairs;

#[test]
fn end_to_end_road_network_pipeline() {
    let ds = load_dataset(DatasetId::CAL, Scale::Tiny, 1);
    let result = ChlBuilder::new(&ds.graph)
        .ranking(RankingStrategy::Explicit(ds.ranking.clone()))
        .algorithm(Algorithm::Gll)
        .threads(4)
        .validate()
        .expect("configuration is valid")
        .build()
        .expect("construction succeeds");
    // Exact queries against Dijkstra from several sources.
    for src in [0u32, 10, 60] {
        let reference = dijkstra(&ds.graph, src);
        for v in 0..ds.graph.num_vertices() as u32 {
            assert_eq!(result.index.query(src, v), reference[v as usize]);
        }
    }
    assert!(is_canonical(&ds.graph, &ds.ranking, &result.index));
}

#[test]
fn end_to_end_scale_free_pipeline_all_constructors_agree() {
    let ds = load_dataset(DatasetId::SKIT, Scale::Tiny, 2);
    let builder = ChlBuilder::new(&ds.graph)
        .ranking(RankingStrategy::Explicit(ds.ranking.clone()))
        .threads(4);
    let reference = builder
        .clone()
        .algorithm(Algorithm::Pll)
        .build()
        .expect("construction succeeds")
        .index;
    for algo in Algorithm::CANONICAL {
        let built = builder
            .clone()
            .algorithm(algo)
            .build()
            .expect("construction succeeds");
        assert_eq!(
            built.index, reference,
            "{algo} must reproduce the canonical labeling"
        );
    }
    assert_eq!(brute_force_chl(&ds.graph, &ds.ranking), reference);
}

#[test]
fn end_to_end_distributed_pipeline_with_queries() {
    let ds = load_dataset(DatasetId::AUT, Scale::Tiny, 3);
    let spec = ClusterSpec::with_nodes(6);
    let cluster = SimulatedCluster::new(spec);
    let labeling = distributed_hybrid(
        &ds.graph,
        &ds.ranking,
        &cluster,
        &DistributedConfig::default(),
    );
    let reference = sequential_pll(&ds.graph, &ds.ranking).index;
    assert_eq!(labeling.assemble(), reference);

    // All three query modes agree with the reference on a random workload —
    // checked uniformly through the DistanceOracle surface they share.
    let workload = random_pairs(ds.graph.num_vertices(), 3_000, 5);
    let oracles: Vec<Box<dyn DistanceOracle>> = vec![
        Box::new(QlsnEngine::new(&labeling, spec)),
        Box::new(QfdlEngine::new(&labeling, spec)),
        Box::new(QdolEngine::new(&labeling, spec)),
    ];
    let expected = reference.distances(&workload.pairs);
    for oracle in &oracles {
        assert_eq!(oracle.num_vertices(), ds.graph.num_vertices());
        assert_eq!(oracle.distances(&workload.pairs), expected);
    }
    // The raw partitions answer identically as well.
    let as_oracle: &dyn DistanceOracle = &labeling;
    assert_eq!(as_oracle.distances(&workload.pairs), expected);

    // Memory ordering of the three modes matches §6: QFDL < QDOL < QLSN,
    // per node and in oracle-level totals.
    let qlsn = QlsnEngine::new(&labeling, spec);
    let qfdl = QfdlEngine::new(&labeling, spec);
    let qdol = QdolEngine::new(&labeling, spec);
    let qlsn_max = *qlsn.memory_per_node().iter().max().unwrap();
    let qfdl_max = *qfdl.memory_per_node().iter().max().unwrap();
    let qdol_max = *qdol.memory_per_node().iter().max().unwrap();
    assert!(qfdl_max <= qdol_max);
    assert!(qdol_max <= qlsn_max);
    assert!(qfdl.memory_bytes() <= qdol.memory_bytes());
    assert!(qdol.memory_bytes() <= qlsn.memory_bytes());
}

#[test]
fn distributed_algorithms_report_expected_communication_profile() {
    let ds = load_dataset(DatasetId::SKIT, Scale::Tiny, 4);
    let config = DistributedConfig::default();
    let q = 8;

    let plant = distributed_plant(
        &ds.graph,
        &ds.ranking,
        &SimulatedCluster::new(ClusterSpec::with_nodes(q)),
        &config,
    );
    let dgll = distributed_gll(
        &ds.graph,
        &ds.ranking,
        &SimulatedCluster::new(ClusterSpec::with_nodes(q)),
        &config,
    );
    let dparapll = distributed_parapll(
        &ds.graph,
        &ds.ranking,
        &SimulatedCluster::new(ClusterSpec::with_nodes(q)),
        &config,
    );

    // PLaNT: zero label traffic. DGLL: some. DparaPLL: full replication.
    assert_eq!(plant.metrics.total_comm().total_bytes(), 0);
    assert!(dgll.metrics.total_comm().broadcast_bytes > 0);
    assert!(dparapll.metrics.total_comm().broadcast_bytes > 0);
    let plant_peak = plant.metrics.peak_node_label_bytes;
    let dparapll_peak = dparapll.metrics.peak_node_label_bytes;
    assert!(
        dparapll_peak > plant_peak,
        "replicated storage must dominate partitioned storage ({dparapll_peak} vs {plant_peak})"
    );
}

#[test]
fn para_pll_label_size_exceeds_canonical_on_scale_free_graphs() {
    let ds = load_dataset(DatasetId::YTB, Scale::Tiny, 6);
    let builder = ChlBuilder::new(&ds.graph)
        .ranking(RankingStrategy::Explicit(ds.ranking.clone()))
        .threads(8);
    let canonical = builder
        .clone()
        .algorithm(Algorithm::Pll)
        .build()
        .unwrap()
        .index;
    let para = builder
        .algorithm(Algorithm::SParaPll)
        .build()
        .unwrap()
        .index;
    assert!(para.total_labels() >= canonical.total_labels());
}

#[test]
fn end_to_end_serving_tier_gen_build_serve_bench_shutdown() {
    use std::sync::Arc;
    use std::time::Duration;

    // gen → build: a road-like grid through the same builder path as the CLI.
    let graph = grid_network(
        &GridOptions {
            rows: 10,
            cols: 10,
            ..GridOptions::default()
        },
        21,
    );
    let result = ChlBuilder::new(&graph)
        .ranking(RankingStrategy::Auto { seed: 21 })
        .algorithm(Algorithm::Hybrid)
        .build()
        .expect("construction succeeds");
    let flat = FlatIndex::from_index(&result.index);

    // save → serve: persist, load through the shared handle, bind ephemeral.
    let path = std::env::temp_dir().join(format!("chl-workspace-serve-{}.chl", std::process::id()));
    flat.save(&path).expect("save index");
    let shared = Arc::new(SharedIndex::open(&path, false).expect("open served index"));
    let server = Server::bind("127.0.0.1:0", shared, ServeOptions::default())
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server");
    let addr = server.handle().addr();

    // A served answer is the in-memory answer.
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.query(0, 99).expect("query"), flat.query(0, 99));
    drop(client);

    // bench-serve: 4 concurrent closed-loop connections, then assert on the
    // parsed summary the CLI would print.
    let summary = run_bench(
        addr,
        &BenchOptions {
            connections: 4,
            duration: Duration::from_millis(300),
            ..BenchOptions::default()
        },
    )
    .expect("bench run");
    assert_eq!(summary.connections, 4);
    assert_eq!(summary.errors, 0);
    assert!(summary.requests > 0, "no frames answered: {summary:?}");
    assert!(summary.throughput_qps() > 0.0);
    assert!(summary.latency_percentile(0.50) <= summary.latency_percentile(0.999));
    let rendered = summary.render();
    for key in ["throughput:", "latency p50:", "latency p999:"] {
        assert!(rendered.contains(key), "missing {key} in:\n{rendered}");
    }

    // shutdown: the protocol frame stops the server; stats reflect the run.
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown_server().expect("shutdown ack");
    let stats = server.join().expect("server exits cleanly");
    assert!(stats.queries >= summary.queries);
    assert_eq!(stats.error_frames, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn builder_surfaces_configuration_errors_instead_of_panicking() {
    let ds = load_dataset(DatasetId::CAL, Scale::Tiny, 9);
    // Bad alpha.
    let err = ChlBuilder::new(&ds.graph)
        .alpha(0.0)
        .validate()
        .unwrap_err();
    assert!(matches!(err, LabelingError::InvalidConfig(_)));
    // Ranking for a different graph.
    let err = ChlBuilder::new(&ds.graph)
        .ranking(RankingStrategy::Explicit(Ranking::identity(3)))
        .build()
        .unwrap_err();
    assert!(matches!(err, LabelingError::RankingMismatch { .. }));
}
