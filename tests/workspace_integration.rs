//! Workspace-level integration tests exercising the facade crate end-to-end:
//! dataset generation → ranking → construction (shared-memory and
//! distributed) → query serving, all cross-checked against ground truth.

use planted_hub_labeling::graph::sssp::dijkstra;
use planted_hub_labeling::prelude::*;
use planted_hub_labeling::query::random_pairs;

#[test]
fn end_to_end_road_network_pipeline() {
    let ds = load_dataset(DatasetId::CAL, Scale::Tiny, 1);
    let result = gll(&ds.graph, &ds.ranking, &LabelingConfig::default().with_threads(4));
    // Exact queries against Dijkstra from several sources.
    for src in [0u32, 10, 60] {
        let reference = dijkstra(&ds.graph, src);
        for v in 0..ds.graph.num_vertices() as u32 {
            assert_eq!(result.index.query(src, v), reference[v as usize]);
        }
    }
    assert!(is_canonical(&ds.graph, &ds.ranking, &result.index));
}

#[test]
fn end_to_end_scale_free_pipeline_all_constructors_agree() {
    let ds = load_dataset(DatasetId::SKIT, Scale::Tiny, 2);
    let config = LabelingConfig::default().with_threads(4);
    let reference = sequential_pll(&ds.graph, &ds.ranking).index;
    assert_eq!(lcc(&ds.graph, &ds.ranking, &config).index, reference);
    assert_eq!(gll(&ds.graph, &ds.ranking, &config).index, reference);
    assert_eq!(plant_labeling(&ds.graph, &ds.ranking, &config).index, reference);
    assert_eq!(shared_hybrid(&ds.graph, &ds.ranking, &config).index, reference);
    assert_eq!(brute_force_chl(&ds.graph, &ds.ranking), reference);
}

#[test]
fn end_to_end_distributed_pipeline_with_queries() {
    let ds = load_dataset(DatasetId::AUT, Scale::Tiny, 3);
    let spec = ClusterSpec::with_nodes(6);
    let cluster = SimulatedCluster::new(spec);
    let labeling =
        distributed_hybrid(&ds.graph, &ds.ranking, &cluster, &DistributedConfig::default());
    let reference = sequential_pll(&ds.graph, &ds.ranking).index;
    assert_eq!(labeling.assemble(), reference);

    // All three query modes agree with the reference on a random workload.
    let workload = random_pairs(ds.graph.num_vertices(), 3_000, 5);
    let qlsn = QlsnEngine::new(&labeling, spec);
    let qfdl = QfdlEngine::new(&labeling, spec);
    let qdol = QdolEngine::new(&labeling, spec);
    for &(u, v) in &workload.pairs {
        let expected = reference.query(u, v);
        assert_eq!(qlsn.query(u, v), expected);
        assert_eq!(qfdl.query(u, v), expected);
        assert_eq!(qdol.query(u, v), expected);
    }

    // Memory ordering of the three modes matches §6: QFDL < QDOL < QLSN.
    let qlsn_max = *qlsn.memory_per_node().iter().max().unwrap();
    let qfdl_max = *qfdl.memory_per_node().iter().max().unwrap();
    let qdol_max = *qdol.memory_per_node().iter().max().unwrap();
    assert!(qfdl_max <= qdol_max);
    assert!(qdol_max <= qlsn_max);
}

#[test]
fn distributed_algorithms_report_expected_communication_profile() {
    let ds = load_dataset(DatasetId::SKIT, Scale::Tiny, 4);
    let config = DistributedConfig::default();
    let q = 8;

    let plant =
        distributed_plant(&ds.graph, &ds.ranking, &SimulatedCluster::new(ClusterSpec::with_nodes(q)), &config);
    let dgll =
        distributed_gll(&ds.graph, &ds.ranking, &SimulatedCluster::new(ClusterSpec::with_nodes(q)), &config);
    let dparapll =
        distributed_parapll(&ds.graph, &ds.ranking, &SimulatedCluster::new(ClusterSpec::with_nodes(q)), &config);

    // PLaNT: zero label traffic. DGLL: some. DparaPLL: full replication.
    assert_eq!(plant.metrics.total_comm().total_bytes(), 0);
    assert!(dgll.metrics.total_comm().broadcast_bytes > 0);
    assert!(dparapll.metrics.total_comm().broadcast_bytes > 0);
    let plant_peak = plant.metrics.peak_node_label_bytes;
    let dparapll_peak = dparapll.metrics.peak_node_label_bytes;
    assert!(
        dparapll_peak > plant_peak,
        "replicated storage must dominate partitioned storage ({dparapll_peak} vs {plant_peak})"
    );
}

#[test]
fn para_pll_label_size_exceeds_canonical_on_scale_free_graphs() {
    let ds = load_dataset(DatasetId::YTB, Scale::Tiny, 6);
    let config = LabelingConfig::default().with_threads(8);
    let canonical = sequential_pll(&ds.graph, &ds.ranking).index;
    let para = planted_hub_labeling::labeling::para_pll::spara_pll(&ds.graph, &ds.ranking, &config);
    assert!(para.index.total_labels() >= canonical.total_labels());
}
