//! Shim for `rand_chacha`: provides the `ChaCha8Rng` name the workspace
//! seeds its deterministic generators with. The stream is produced by
//! xoshiro256** seeded through SplitMix64 — deterministic and statistically
//! solid, but not the real ChaCha cipher stream (nothing here is
//! cryptographic; the workspace only generates synthetic datasets).

pub mod rand_core {
    //! Re-exports matching `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

/// Deterministic seeded RNG under the name the workspace expects.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

/// Same generator under the stronger-variant name, for API parity.
pub type ChaCha20Rng = ChaCha8Rng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        ChaCha8Rng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x: u32 = rng.gen_range(0..10);
        assert!(x < 10);
        let _: f64 = rng.gen();
    }
}
