//! Marker-trait shim for `serde`. The workspace derives `Serialize` and
//! `Deserialize` on its data types to keep them wire-ready, but never invokes
//! an actual serializer, so blanket marker impls are sufficient.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
