//! Deterministic-scheduler proofs for the shim's lock-free protocols.
//!
//! Each concurrent algorithm in `src/lib.rs` that justifies a
//! `Ordering::Relaxed` with "proven in tests/interleavings.rs" is modeled
//! here as a [`World`] state machine — one `step` per atomic action — and
//! driven through **every** sequentially consistent interleaving by
//! [`chl_lint::sched`]. Three kinds of assertion appear:
//!
//! 1. `find_violation(...) == None` + `!truncated`: the protocol is
//!    race-free over all schedules of the modeled thread count (≤3).
//! 2. `find_violation(...).is_some()`: the harness *finds* the historical
//!    bug in the pre-fix protocol, so the green assertions above are known
//!    to have teeth (a regression test for the checker itself).
//! 3. Real-code tests exercising the actual `ThreadPoolBuilder` /
//!    `ThreadPool` implementations on OS threads.

use chl_lint::sched::{explore, find_violation, World};

// ---------------------------------------------------------------------------
// Model 1: dynamic chunk claiming off a shared cursor (`execute`)
// ---------------------------------------------------------------------------

/// Program counter of one virtual worker in [`ChunkClaim`].
#[derive(Clone, Copy, PartialEq)]
enum WorkerPc {
    /// About to `cursor.fetch_add(1)`.
    FetchAdd,
    /// Claimed index `i`; about to take the task out of its slot.
    Take(usize),
    /// Observed `i >= tasks` and exited the loop.
    Done,
}

/// Models the worker loop of `execute`: each worker repeatedly fetch_adds a
/// shared cursor and, when the index is in range, takes that task. The
/// fetch_add and the slot-take are separate atomic actions, exactly as in
/// the real code (where the slot hand-off is a `Mutex` lock).
#[derive(Clone)]
struct ChunkClaim {
    cursor: usize,
    tasks: usize,
    taken: Vec<bool>,
    double_claim: bool,
    pc: Vec<WorkerPc>,
}

impl ChunkClaim {
    fn new(workers: usize, tasks: usize) -> Self {
        ChunkClaim {
            cursor: 0,
            tasks,
            taken: vec![false; tasks],
            double_claim: false,
            pc: vec![WorkerPc::FetchAdd; workers],
        }
    }
}

impl World for ChunkClaim {
    fn thread_count(&self) -> usize {
        self.pc.len()
    }

    fn is_runnable(&self, tid: usize) -> bool {
        self.pc[tid] != WorkerPc::Done
    }

    fn step(&mut self, tid: usize) {
        match self.pc[tid] {
            WorkerPc::FetchAdd => {
                let i = self.cursor;
                self.cursor += 1;
                self.pc[tid] = if i < self.tasks {
                    WorkerPc::Take(i)
                } else {
                    WorkerPc::Done
                };
            }
            WorkerPc::Take(i) => {
                if self.taken[i] {
                    self.double_claim = true;
                }
                self.taken[i] = true;
                self.pc[tid] = WorkerPc::FetchAdd;
            }
            WorkerPc::Done => unreachable!("explorer never steps a finished thread"),
        }
    }
}

#[test]
fn chunk_claiming_is_exactly_once_under_all_schedules() {
    for (workers, tasks) in [(2, 3), (3, 2), (3, 4)] {
        let initial = ChunkClaim::new(workers, tasks);
        let mut leaves = 0usize;
        let result = explore(&initial, &mut |world, schedule| {
            leaves += 1;
            assert!(
                !world.double_claim,
                "task claimed twice under schedule {schedule:?}"
            );
            assert!(
                world.taken.iter().all(|&t| t),
                "task never claimed under schedule {schedule:?}"
            );
        });
        assert!(!result.truncated, "exploration must be exhaustive");
        assert_eq!(result.schedules, leaves);
        assert!(result.schedules > 1, "model must actually interleave");
    }
}

// ---------------------------------------------------------------------------
// Model 2: the historical two-atomic global-pool init (the bug)
// ---------------------------------------------------------------------------

/// The pre-fix protocol: `build_global` did `GLOBAL_BUILT.swap(true)` and
/// *then* `GLOBAL_THREADS.store(n)` — two separate atomic actions — while a
/// reader checked the flag first and trusted the count it then loaded.
#[derive(Clone)]
struct TwoAtomicInit {
    built: bool,
    threads: usize,
    /// 0 = swap flag, 1 = store count, 2 = done.
    builder_pc: u8,
    /// 0 = load flag, 1 = load count, 2 = done.
    reader_pc: u8,
    observed: Option<usize>,
}

impl TwoAtomicInit {
    fn new() -> Self {
        TwoAtomicInit {
            built: false,
            threads: 0,
            builder_pc: 0,
            reader_pc: 0,
            observed: None,
        }
    }
}

impl World for TwoAtomicInit {
    fn thread_count(&self) -> usize {
        2
    }

    fn is_runnable(&self, tid: usize) -> bool {
        if tid == 0 {
            self.builder_pc != 2
        } else {
            self.reader_pc != 2
        }
    }

    fn step(&mut self, tid: usize) {
        if tid == 0 {
            match self.builder_pc {
                0 => {
                    self.built = true;
                    self.builder_pc = 1;
                }
                _ => {
                    self.threads = 7;
                    self.builder_pc = 2;
                }
            }
        } else {
            match self.reader_pc {
                0 => {
                    // Reader trusts the flag: if built, the count must be
                    // valid. (If not built it would fall back to the env
                    // default — irrelevant to the race.)
                    self.reader_pc = if self.built { 1 } else { 2 };
                }
                _ => {
                    self.observed = Some(self.threads);
                    self.reader_pc = 2;
                }
            }
        }
    }
}

#[test]
fn harness_finds_the_built_but_zero_window_in_the_old_protocol() {
    let schedule = find_violation(&TwoAtomicInit::new(), |w| w.observed == Some(0));
    let schedule = schedule.expect("the two-atomic protocol must expose built-but-zero");
    // Replay the reported schedule: it must reproduce the bad observation.
    let mut world = TwoAtomicInit::new();
    for &tid in &schedule {
        world.step(tid);
    }
    assert_eq!(world.observed, Some(0), "replay of {schedule:?}");
}

// ---------------------------------------------------------------------------
// Model 3: the packed single-word init (the fix)
// ---------------------------------------------------------------------------

/// Model-scale constants mirroring `GLOBAL_STATE`'s layout.
const M_BUILT: usize = 1 << 8;
const M_MASK: usize = M_BUILT - 1;

/// Per-thread state in [`PackedInit`]: two builders and one reader.
#[derive(Clone, Copy, PartialEq)]
enum InitPc {
    /// About to load the packed word.
    Load,
    /// Holds an observed value; about to CAS (builder) or CAS-cache-default
    /// (reader).
    Cas(usize),
    Done,
}

/// Faithful model of the fixed protocol: `build_global` retries
/// `compare_exchange(observed, count | BUILT)` until it wins or sees the
/// flag; `current_num_threads` returns a nonzero count or tries to cache
/// the env default with `compare_exchange(0, default)`.
#[derive(Clone)]
struct PackedInit {
    state: usize,
    pc: [InitPc; 3],
    builder_ok: [Option<bool>; 2],
    observed: Option<usize>,
}

impl PackedInit {
    /// Builder `tid` (0 or 1) publishes this count.
    fn builder_count(tid: usize) -> usize {
        [3, 5][tid]
    }
    const READER_DEFAULT: usize = 2;

    fn new() -> Self {
        PackedInit {
            state: 0,
            pc: [InitPc::Load; 3],
            builder_ok: [None; 2],
            observed: None,
        }
    }
}

impl World for PackedInit {
    fn thread_count(&self) -> usize {
        3
    }

    fn is_runnable(&self, tid: usize) -> bool {
        self.pc[tid] != InitPc::Done
    }

    fn step(&mut self, tid: usize) {
        match (tid, self.pc[tid]) {
            // Builders 0 and 1.
            (b @ (0 | 1), InitPc::Load) => {
                self.pc[b] = InitPc::Cas(self.state);
            }
            (b @ (0 | 1), InitPc::Cas(observed)) => {
                if observed & M_BUILT != 0 {
                    self.builder_ok[b] = Some(false);
                    self.pc[b] = InitPc::Done;
                } else if self.state == observed {
                    self.state = Self::builder_count(b) | M_BUILT;
                    self.builder_ok[b] = Some(true);
                    self.pc[b] = InitPc::Done;
                } else {
                    // CAS failure returns the current value; retry with it.
                    self.pc[b] = InitPc::Cas(self.state);
                }
            }
            // Reader.
            (2, InitPc::Load) => {
                if self.state & M_MASK != 0 {
                    self.observed = Some(self.state & M_MASK);
                    self.pc[2] = InitPc::Done;
                } else {
                    self.pc[2] = InitPc::Cas(0);
                }
            }
            (2, InitPc::Cas(_)) => {
                // compare_exchange(0, default): cache the env default only
                // if nothing else was published meanwhile.
                if self.state == 0 {
                    self.state = Self::READER_DEFAULT;
                    self.observed = Some(Self::READER_DEFAULT);
                } else {
                    self.observed = Some(self.state & M_MASK);
                }
                self.pc[2] = InitPc::Done;
            }
            _ => unreachable!("explorer never steps a finished thread"),
        }
    }
}

#[test]
fn packed_init_has_no_bad_state_under_any_schedule() {
    let initial = PackedInit::new();

    // Exhaustive, and the model genuinely branches.
    let result = explore(&initial, &mut |_, _| {});
    assert!(!result.truncated);
    assert!(result.schedules > 1);

    let done = |w: &PackedInit| w.pc.iter().all(|&pc| pc == InitPc::Done);
    assert_eq!(
        find_violation(&initial, |w| done(w) && w.observed == Some(0)),
        None,
        "a reader must never observe a zero thread count"
    );
    assert_eq!(
        find_violation(&initial, |w| done(w)
            && w.builder_ok == [Some(true), Some(true)]),
        None,
        "both builders succeeding would be a double global init"
    );
    assert_eq!(
        find_violation(&initial, |w| done(w)
            && w.builder_ok == [Some(false), Some(false)]),
        None,
        "one builder must always win"
    );
    assert_eq!(
        find_violation(&initial, |w| {
            // The winner's count is what the word ends up holding.
            let winner = match w.builder_ok {
                [Some(true), _] => PackedInit::builder_count(0),
                [_, Some(true)] => PackedInit::builder_count(1),
                _ => return false,
            };
            done(w) && w.state != (winner | M_BUILT)
        }),
        None,
        "the published count and the built flag arrive together"
    );
}

// ---------------------------------------------------------------------------
// Model 4: `ThreadPool::install` isolation (thread-local overrides)
// ---------------------------------------------------------------------------

/// Two threads install different pool sizes; the override lives in a
/// thread-local, so each must observe its own value regardless of schedule.
#[derive(Clone)]
struct InstallIsolation {
    /// Per-thread thread-local slot (0 = no override).
    slot: [usize; 2],
    /// 0 = install, 1 = read, 2 = restore, 3 = done.
    pc: [u8; 2],
    observed: [usize; 2],
}

impl InstallIsolation {
    fn new() -> Self {
        InstallIsolation {
            slot: [0; 2],
            pc: [0; 2],
            observed: [0; 2],
        }
    }
    const SIZES: [usize; 2] = [4, 9];
}

impl World for InstallIsolation {
    fn thread_count(&self) -> usize {
        2
    }

    fn is_runnable(&self, tid: usize) -> bool {
        self.pc[tid] != 3
    }

    fn step(&mut self, tid: usize) {
        match self.pc[tid] {
            0 => self.slot[tid] = Self::SIZES[tid],
            1 => self.observed[tid] = self.slot[tid],
            _ => self.slot[tid] = 0,
        }
        self.pc[tid] += 1;
    }
}

#[test]
fn install_overrides_never_leak_across_threads() {
    assert_eq!(
        find_violation(&InstallIsolation::new(), |w| {
            w.pc == [3, 3] && w.observed != InstallIsolation::SIZES
        }),
        None
    );
}

// ---------------------------------------------------------------------------
// Real-code tests: the actual implementation on OS threads
// ---------------------------------------------------------------------------

#[test]
fn build_global_wins_once_and_errors_after() {
    // This is the only test in the workspace that calls build_global, so
    // the process-global state is ours alone.
    rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build_global()
        .expect("first build_global succeeds");
    assert_eq!(rayon::current_num_threads(), 3);
    let err = rayon::ThreadPoolBuilder::new()
        .num_threads(5)
        .build_global()
        .expect_err("second build_global must fail");
    assert!(err.to_string().contains("already been initialized"));
    // The losing call must not have clobbered the published count.
    assert_eq!(rayon::current_num_threads(), 3);
}

#[test]
fn concurrent_installs_stay_isolated() {
    std::thread::scope(|scope| {
        for threads in [2usize, 4, 8] {
            scope.spawn(move || {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("build");
                for _ in 0..100 {
                    pool.install(|| assert_eq!(rayon::current_num_threads(), threads));
                }
            });
        }
    });
}
