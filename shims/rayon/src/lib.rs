//! Parallel shim for `rayon`: the `par_iter` / `par_iter_mut` /
//! `into_par_iter` surface backed by a real chunked execution layer on
//! scoped `std::thread`s.
//!
//! Every parallel iterator bottoms out in a [`Producer`]: a splittable,
//! exactly-sized description of the work. Execution splits the producer into
//! contiguous chunks (several per worker), spawns one scoped thread per
//! worker, and lets workers claim chunks dynamically off a shared atomic
//! cursor — cheap load balancing without a work-stealing deque. Results are
//! reassembled in chunk order, so **order-preserving drivers are
//! deterministic**: `collect` over `map`/`zip`/`enumerate` produces exactly
//! the sequence the equivalent sequential iterator would, at any thread
//! count. `for_each` visits each chunk's items in order but chunks run
//! concurrently, so cross-chunk side-effect ordering is unspecified (as in
//! real rayon). Reductions
//! (`sum`, `min`, `max`, `count`) combine per-chunk partials, so they are
//! thread-count-independent only for associative, commutative operations —
//! true for every reduction in this workspace (integer sums and counts), but
//! a floating-point `sum` would see chunk-boundary rounding differences.
//!
//! Thread count resolution, most specific first:
//! 1. the innermost enclosing [`ThreadPool::install`] scope on this thread,
//! 2. the global pool built via [`ThreadPoolBuilder::build_global`],
//! 3. the `RAYON_NUM_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! With a resolved count of 1 everything runs inline on the calling thread —
//! no spawns, no allocation beyond the sequential path. Parallelism applies
//! to the **outermost** parallel call only: a nested `par_iter` inside a
//! worker runs inline on that worker, which keeps a `--threads t` /
//! `RAYON_NUM_THREADS=1` cap airtight and rules out multiplicative thread
//! blow-up (real rayon achieves the same by scheduling nested work onto the
//! already-running pool).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

/// Packed global pool state: the low bits hold the resolved thread count
/// (0 = not resolved yet), [`BUILT_BIT`] records that an explicit
/// `build_global` happened. Packing both into **one** atomic word makes the
/// historical "built flag visible before the thread count" race
/// unrepresentable: any load observes flag and count together. The old
/// two-atomic protocol (`GLOBAL_BUILT.swap` then `GLOBAL_THREADS.store`)
/// had an observable built-but-zero window, reproduced by the model in
/// `tests/interleavings.rs`.
static GLOBAL_STATE: AtomicUsize = AtomicUsize::new(0);

/// High bit of [`GLOBAL_STATE`]: set once `build_global` succeeded.
const BUILT_BIT: usize = 1 << (usize::BITS - 1);
/// Low bits of [`GLOBAL_STATE`]: the resolved thread count.
const COUNT_MASK: usize = BUILT_BIT - 1;

thread_local! {
    /// Thread count forced by an enclosing `ThreadPool::install` (0 = none).
    static INSTALLED_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The number of threads parallel operations started on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed != 0 {
        return installed;
    }
    // ORDERING: Relaxed is sufficient for every access to GLOBAL_STATE —
    // the count and the built flag travel together in the single packed
    // word, so there is no second location whose visibility would need an
    // acquire/release edge. Proven race-free over all ≤3-thread
    // interleavings in tests/interleavings.rs.
    let state = GLOBAL_STATE.load(Ordering::Relaxed);
    if state & COUNT_MASK != 0 {
        return state & COUNT_MASK;
    }
    // Cache the environment default, but never clobber a concurrent
    // `build_global`: whoever installs a nonzero count first wins, everyone
    // reads that value.
    let resolved = default_threads().min(COUNT_MASK);
    // ORDERING: single-word protocol, see above.
    match GLOBAL_STATE.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => resolved,
        Err(stored) => stored & COUNT_MASK,
    }
}

/// Error returned when the global pool is configured twice.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for thread pools, mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; 0 keeps the default resolution
    /// (`RAYON_NUM_THREADS`, then available parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    fn resolve(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            default_threads()
        }
    }

    /// Builds a scoped pool handle; run work under it with
    /// [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.resolve(),
        })
    }

    /// Sets the process-wide default thread count. Errors if the global pool
    /// was already built, like the real rayon.
    ///
    /// Publishing count-plus-built-flag as one CAS means a concurrent
    /// [`current_num_threads`] can never observe "built but count still 0";
    /// an env-default cached earlier by a reader is overridden, exactly as
    /// the previous (racy) two-atomic protocol intended.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let resolved = self.resolve().clamp(1, COUNT_MASK);
        // ORDERING: single-word protocol — flag and count are published by
        // the same atomic CAS, so Relaxed cannot reorder them apart. See
        // tests/interleavings.rs.
        let mut observed = GLOBAL_STATE.load(Ordering::Relaxed);
        loop {
            if observed & BUILT_BIT != 0 {
                return Err(ThreadPoolBuildError {
                    message: "the global thread pool has already been initialized",
                });
            }
            // ORDERING: single-word protocol, see above.
            match GLOBAL_STATE.compare_exchange(
                observed,
                resolved | BUILT_BIT,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => observed = now,
            }
        }
    }
}

/// A handle fixing the thread count for the work run under [`Self::install`].
///
/// Unlike the real rayon this does not own long-lived workers — threads are
/// scoped to each parallel call — but `install` has the same meaning: the
/// parallel operations invoked inside the closure use this pool's size.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the current default.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|c| {
            let previous = c.replace(self.threads);
            // Restore on unwind too, so a panicking closure does not leak the
            // override into unrelated work on this thread.
            struct Restore<'a>(&'a std::cell::Cell<usize>, usize);
            impl Drop for Restore<'_> {
                fn drop(&mut self) {
                    self.0.set(self.1);
                }
            }
            let _restore = Restore(c, previous);
            op()
        })
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

// ---------------------------------------------------------------------------
// Producers: splittable descriptions of parallel work
// ---------------------------------------------------------------------------

/// A splittable, exactly-sized source of items — the engine's view of a
/// parallel iterator. Splitting is always by *contiguous position*, which is
/// what makes order-preserving reassembly (and thus determinism) possible.
pub trait Producer: Sized + Send {
    /// Item produced.
    type Item: Send;
    /// Sequential iterator over one chunk.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// `true` when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the first `index` items and the rest.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Lowers this chunk onto a sequential iterator.
    fn into_iter(self) -> Self::IntoIter;
}

/// How many chunks each worker gets on average: >1 so a skewed chunk (e.g.
/// one hot bucket of a query workload) does not serialize the whole batch.
const CHUNKS_PER_THREAD: usize = 4;

/// Splits `producer` into `parts` contiguous, near-equal chunks, in order
/// (in-order binary recursion). Halving matters for producers whose split
/// copies data — `VecIter::split_at` moves the tail into a fresh allocation,
/// so k sequential front-splits would copy O(n·k) elements while halving
/// copies O(n·log k). Requires `parts <= producer.len()` so no chunk is
/// empty.
fn split_evenly<P: Producer>(producer: P, parts: usize, out: &mut Vec<P>) {
    if parts <= 1 {
        out.push(producer);
        return;
    }
    let len = producer.len();
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    // Proportional share, clamped so both subtrees keep one item per part.
    let left_len = (len * left_parts / parts).clamp(left_parts, len - right_parts);
    let (left, right) = producer.split_at(left_len);
    split_evenly(left, left_parts, out);
    split_evenly(right, right_parts, out);
}

/// The execution core: runs `work` over contiguous chunks of `producer` on
/// the current thread count, returning the per-chunk results **in chunk
/// order**. Workers claim chunks dynamically; a panic in any chunk propagates
/// to the caller once all workers have stopped.
fn execute<P, R>(producer: P, work: impl Fn(P::IntoIter) -> R + Sync) -> Vec<R>
where
    P: Producer,
    R: Send,
{
    let len = producer.len();
    let threads = current_num_threads().min(len).max(1);
    if threads == 1 {
        return vec![work(producer.into_iter())];
    }

    let chunk_count = (threads * CHUNKS_PER_THREAD).min(len);
    let mut chunks = Vec::with_capacity(chunk_count);
    split_evenly(producer, chunk_count, &mut chunks);

    let tasks: Vec<Mutex<Option<P>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Fresh OS threads would otherwise re-resolve the global
                // default, letting a nested par_iter escape an enclosing
                // `install` / `RAYON_NUM_THREADS` cap and multiply threads.
                // Nested parallel calls therefore run inline on the worker.
                INSTALLED_THREADS.with(|c| c.set(1));
                loop {
                    // ORDERING: the fetch_add's read-modify-write atomicity
                    // alone makes claimed indices unique; the chunk payloads
                    // themselves are handed over through the Mutex slots,
                    // whose lock/unlock pairs provide the acquire/release
                    // edges. Exactly-once claiming is proven over all
                    // ≤3-thread interleavings in tests/interleavings.rs.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = tasks.get(i) else { break };
                    // A poisoned slot means another worker panicked; stop
                    // quietly — the scope join propagates that panic.
                    let Some(chunk) = slot.lock().ok().and_then(|mut s| s.take()) else {
                        break;
                    };
                    let r = work(chunk.into_iter());
                    if let Some(Ok(mut out)) = results.get(i).map(Mutex::lock) {
                        *out = Some(r);
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every chunk produced a result")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// ParallelIterator: the adaptor surface
// ---------------------------------------------------------------------------

/// The adaptors and drivers available on every parallel iterator. All
/// combining drivers preserve the sequential order of items.
pub trait ParallelIterator: Producer {
    /// Applies `f` to every item.
    fn map<R, F>(self, f: F) -> Map<Self, F, R>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
            _result: PhantomData,
        }
    }

    /// Pairs items positionally with `other`, stopping at the shorter side.
    fn zip<B: Producer>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attaches each item's sequential position.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Consumes every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        execute(self, |iter| iter.for_each(&f));
    }

    /// Collects into `C`, preserving sequential order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sums the items (chunk-wise partial sums, then a sum of partials).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        execute(self, |iter| iter.sum::<S>()).into_iter().sum()
    }

    /// Counts the items.
    fn count(self) -> usize {
        execute(self, |iter| iter.count()).into_iter().sum()
    }

    /// Minimum item, `None` when empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute(self, |iter| iter.min()).into_iter().flatten().min()
    }

    /// Maximum item, `None` when empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute(self, |iter| iter.max()).into_iter().flatten().max()
    }
}

impl<P: Producer> ParallelIterator for P {}

/// Types constructible from a parallel iterator (order-preserving).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection from `par`.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self {
        let total = par.len();
        let mut parts = execute(par, |iter| iter.collect::<Vec<T>>());
        if parts.len() == 1 {
            return parts.pop().expect("one part");
        }
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

/// Parallel `map`. The closure is shared across chunks through an `Arc`, so
/// splitting never clones user state.
pub struct Map<P, F, R> {
    base: P,
    f: Arc<F>,
    _result: PhantomData<fn() -> R>,
}

impl<P, F, R> Producer for Map<P, F, R>
where
    P: Producer,
    F: Fn(P::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    type IntoIter = MapIter<P::IntoIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (
            Map {
                base: left,
                f: Arc::clone(&self.f),
                _result: PhantomData,
            },
            Map {
                base: right,
                f: self.f,
                _result: PhantomData,
            },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        MapIter {
            base: self.base.into_iter(),
            f: self.f,
        }
    }
}

/// Sequential side of [`Map`].
pub struct MapIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for MapIter<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.base.next().map(|item| (self.f)(item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// Parallel `zip`: both sides split at the same positions.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.a.into_iter().zip(self.b.into_iter())
    }
}

/// Parallel `enumerate`: the right half of a split starts at `offset + mid`,
/// so indices are globally correct on every chunk.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateIter<P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (
            Enumerate {
                base: left,
                offset: self.offset,
            },
            Enumerate {
                base: right,
                offset: self.offset + index,
            },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        EnumerateIter {
            base: self.base.into_iter(),
            index: self.offset,
        }
    }
}

/// Sequential side of [`Enumerate`].
pub struct EnumerateIter<I> {
    base: I,
    index: usize,
}

impl<I: Iterator> Iterator for EnumerateIter<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.base.next()?;
        let index = self.index;
        self.index += 1;
        Some((index, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync + 'data> Producer for SliceIter<'data, T> {
    type Item = &'data T;
    type IntoIter = std::slice::Iter<'data, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at(index);
        (SliceIter { slice: left }, SliceIter { slice: right })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send + 'data> Producer for SliceIterMut<'data, T> {
    type Item = &'data mut T;
    type IntoIter = std::slice::IterMut<'data, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: left }, SliceIterMut { slice: right })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecIter<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mut left = self.vec;
        let right = left.split_off(index);
        (VecIter { vec: left }, VecIter { vec: right })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.vec.into_iter()
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: std::ops::Range<T>,
}

macro_rules! impl_range_producer {
    ($ty:ty) => {
        impl Producer for RangeIter<$ty> {
            type Item = $ty;
            type IntoIter = std::ops::Range<$ty>;

            fn len(&self) -> usize {
                self.range.end.saturating_sub(self.range.start) as usize
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $ty;
                (
                    RangeIter {
                        range: self.range.start..mid,
                    },
                    RangeIter {
                        range: mid..self.range.end,
                    },
                )
            }

            fn into_iter(self) -> Self::IntoIter {
                self.range
            }
        }
    };
}

impl_range_producer!(usize);
impl_range_producer!(u32);

// ---------------------------------------------------------------------------
// Prelude: conversion traits
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{FromParallelIterator, ParallelIterator};

    use crate::{RangeIter, SliceIter, SliceIterMut, VecIter};

    /// `par_iter()` on shared slices and vectors.
    pub trait IntoParallelRefIterator<'data> {
        /// Parallel iterator type.
        type Iter: crate::ParallelIterator;
        /// Returns a parallel iterator over references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `par_iter_mut()` on mutable slices and vectors.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Parallel iterator type.
        type Iter: crate::ParallelIterator;
        /// Returns a parallel iterator over mutable references.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    /// `into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// Parallel iterator type.
        type Iter: crate::ParallelIterator;
        /// Consumes `self`, returning a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = SliceIter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            SliceIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = SliceIter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            SliceIter { slice: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = SliceIterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            SliceIterMut { slice: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = SliceIterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            SliceIterMut { slice: self }
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            VecIter { vec: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = RangeIter<usize>;
        fn into_par_iter(self) -> Self::Iter {
            RangeIter { range: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Iter = RangeIter<u32>;
        fn into_par_iter(self) -> Self::Iter {
            RangeIter { range: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::time::Duration;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let mut w = vec![1, 2];
        w.par_iter_mut()
            .zip(vec![10, 20].into_par_iter())
            .for_each(|(a, b)| *a += b);
        assert_eq!(w, vec![11, 22]);
    }

    #[test]
    fn collect_preserves_order_at_every_thread_count() {
        let input: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 17] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * x).collect());
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn enumerate_indices_are_global_across_chunks() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let v = vec![7u32; 5000];
        let idx: Vec<usize> = pool.install(|| v.par_iter().enumerate().map(|(i, _)| i).collect());
        assert_eq!(idx, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn zip_mutation_covers_every_element_exactly_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut a = vec![0u64; 4097];
        let b: Vec<u64> = (0..4097).collect();
        pool.install(|| {
            a.par_iter_mut()
                .zip(b.into_par_iter())
                .for_each(|(x, y)| *x += y + 1)
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn sum_count_min_max_match_sequential() {
        let v: Vec<usize> = (1..=1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        pool.install(|| {
            assert_eq!(v.par_iter().map(|&x| x).sum::<usize>(), 500_500);
            assert_eq!(v.par_iter().count(), 1000);
            assert_eq!(v.par_iter().min(), Some(&1));
            assert_eq!(v.par_iter().max(), Some(&1000));
            assert_eq!((0usize..0).into_par_iter().min(), None);
        });
    }

    #[test]
    fn ranges_are_parallel_iterators() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let squares: Vec<usize> =
            pool.install(|| (0usize..100).into_par_iter().map(|i| i * i).collect());
        assert_eq!(squares[99], 9801);
        let from_u32: Vec<u32> = (5u32..10).into_par_iter().collect();
        assert_eq!(from_u32, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        // A sequential implementation runs every item on the calling thread,
        // so observing more than one thread id proves real parallelism — and
        // unlike a wall-clock bound it cannot flake on a loaded CI host. The
        // short sleep keeps early workers from draining all chunks before
        // the later ones have spawned.
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0usize..8)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(Duration::from_millis(25));
                    std::thread::current().id()
                })
                .collect()
        });
        let caller = std::thread::current().id();
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected more than one worker thread");
        assert!(
            !distinct.contains(&caller),
            "work ran on the calling thread"
        );
    }

    #[test]
    fn nested_parallel_calls_run_inline_on_their_worker() {
        // Workers pin their thread-local count to 1, so a nested par_iter
        // must not spawn further threads (and cannot escape a --threads /
        // RAYON_NUM_THREADS cap through fresh OS threads).
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let nested: Vec<Vec<std::thread::ThreadId>> = pool.install(|| {
            (0usize..4)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(Duration::from_millis(10));
                    assert_eq!(current_num_threads(), 1);
                    (0usize..16)
                        .into_par_iter()
                        .map(|_| std::thread::current().id())
                        .collect()
                })
                .collect()
        });
        for ids in nested {
            let distinct: HashSet<_> = ids.into_iter().collect();
            assert_eq!(distinct.len(), 1, "nested work left its worker thread");
        }
    }

    #[test]
    fn install_is_scoped_and_restored() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 5);
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 5);
        });
        assert_eq!(current_num_threads(), outer);
        assert_eq!(pool.current_num_threads(), 5);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids: Vec<_> = pool.install(|| {
            (0usize..64)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn zip_truncates_to_the_shorter_side() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a = vec![1u32; 100];
        let pairs: Vec<(u32, u32)> = pool.install(|| {
            a.par_iter()
                .map(|&x| x)
                .zip((0u32..37).into_par_iter())
                .collect()
        });
        assert_eq!(pairs.len(), 37);
        assert_eq!(pairs[36], (1, 36));
    }
}
