//! Sequential shim for `rayon`: `par_iter` and friends lower onto ordinary
//! std iterators, so every adaptor that follows (`map`, `zip`, `filter`,
//! `collect`, `for_each`, ...) is the std one and semantics are identical up
//! to parallelism. The workspace's constructor worker pools use explicit
//! `std::thread` scopes and are unaffected; only `par_iter` call sites run
//! sequentially under this shim.

pub mod prelude {
    /// `par_iter()` on shared slices and vectors.
    pub trait IntoParallelRefIterator<'data> {
        /// Element iterator type.
        type Iter: Iterator;
        /// Returns a (sequential) stand-in for a parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `par_iter_mut()` on mutable slices and vectors.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Element iterator type.
        type Iter: Iterator;
        /// Returns a (sequential) stand-in for a parallel mutable iterator.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    /// `into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// Element iterator type.
        type Iter: Iterator;
        /// Consumes `self`, returning a (sequential) stand-in iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Iter = std::ops::Range<u32>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let mut w = vec![1, 2];
        w.par_iter_mut()
            .zip(vec![10, 20].into_par_iter())
            .for_each(|(a, b)| *a += b);
        assert_eq!(w, vec![11, 22]);
    }
}
