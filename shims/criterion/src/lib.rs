//! Wall-clock shim for `criterion`: the `Criterion`/group/`Bencher` API and
//! the `criterion_group!`/`criterion_main!` macros, measuring each benchmark
//! as mean wall time over `sample_size` timed iterations (after one warm-up
//! iteration). No statistics, plots or comparisons — just honest timings so
//! `cargo bench` compiles and runs without the real crate.

use std::fmt;
use std::time::{Duration, Instant};

/// Batch sizing hint (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean duration of the routine, filled in by `iter`/`iter_batched`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.samples as u32;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        let name = id.to_string();
        println!(
            "bench {:<50} {:>12.3?}  ({} samples)",
            name, bencher.mean, self.sample_size
        );
        record_json(&name, bencher.mean, self.sample_size);
    }
}

/// Appends one JSONL record per benchmark to the file named by the
/// `CHL_BENCH_JSON` environment variable (no-op when unset), so scripts
/// like `scripts/bench_snapshot.sh` can collect machine-readable results
/// without parsing the human report.
fn record_json(name: &str, mean: Duration, samples: usize) {
    let Ok(path) = std::env::var("CHL_BENCH_JSON") else {
        return;
    };
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"bench\":\"{escaped}\",\"mean_ns\":{},\"samples\":{samples}}}\n",
        mean.as_nanos()
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = appended {
        eprintln!("warning: cannot append bench record to {path}: {e}");
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(full, f);
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
