//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};

/// Strategy generating `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        use rand::Rng;
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.start..self.size.end)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
