//! The usual `use proptest::prelude::*` surface.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
    Strategy, TestCaseError,
};
