//! Deterministic property-testing shim for `proptest`: the `proptest!` DSL,
//! `prop_assert*` macros and the strategy combinators this workspace uses
//! (ranges, tuples, `collection::vec`, `any`, `prop_map`). Each property runs
//! a fixed number of cases derived deterministically from the test name and
//! case index, so failures are reproducible; there is no shrinking — the
//! failing case index is reported instead.

use std::fmt;

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub mod collection;
pub mod prelude;

/// RNG driving case generation.
pub type TestRng = ChaCha8Rng;

/// Failure raised by `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-property configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one (property, case) pair.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37))
}

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        let unit: f64 = rng.gen();
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Runs each property a configured number of deterministic cases.
///
/// Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop_holds(x in 0u32..100, v in collection::vec(0u8..5, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::test_rng(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed on deterministic case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Fails the enclosing property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rng_per_test_and_case() {
        use rand::RngCore;
        let a = test_rng("t", 0).next_u64();
        let b = test_rng("t", 0).next_u64();
        let c = test_rng("t", 1).next_u64();
        let d = test_rng("u", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = test_rng("domain", 0);
        for _ in 0..200 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let (a, b, c) = (0u32..4, 1usize..3, any::<u64>()).generate(&mut rng);
            assert!(a < 4 && (1..3).contains(&b));
            let _ = c;
            let v = crate::collection::vec(0u32..7, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 7));
            let mapped = (0u32..10).prop_map(|x| x * 2).generate(&mut rng);
            assert!(mapped < 20 && mapped % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..50, v in crate::collection::vec(0u8..3, 0..6)) {
            prop_assert!(x < 50, "x out of range: {x}");
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 1000);
        }
    }
}
