//! Vec-backed shim for the `bytes` crate: `Bytes`, `BytesMut` and the
//! `Buf`/`BufMut` cursor traits, covering the little-endian accessors the
//! graph snapshot format uses. No reference counting — `Bytes` owns its
//! buffer and tracks a read cursor.

use std::ops::Deref;

/// Read-side cursor trait (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// The unread portion as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copies the unread portion into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(0x0123456789ABCDEF);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 17);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0123456789ABCDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        b.get_u32_le();
    }
}
