//! Shim for `rand` 0.8: the [`Rng`] trait (`gen`, `gen_range`, `gen_bool`),
//! the [`RngCore`]/[`SeedableRng`] core traits and `seq::SliceRandom`
//! (`choose`, `shuffle`). Uniform range sampling uses rejection sampling so
//! distributions are unbiased, though not bit-compatible with the real crate.

/// Core RNG interface: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Integer types uniform-sampleable over half-open/inclusive ranges.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `low < high` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// `self + 1`, saturating; used to turn `..=hi` into an exclusive bound.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                debug_assert!(span > 0, "empty sample range");
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let draw = rng.next_u64();
                    if draw < zone {
                        return low.wrapping_add((draw % span) as $ty);
                    }
                }
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_range(rng, low, high.successor())
    }
}

/// User-facing RNG interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence sampling helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = Counter(7);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut w: Vec<u32> = (0..50).collect();
        w.shuffle(&mut rng);
        let mut sorted = w.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
