//! Minimal local shim for the `memmap2` crate: **read-only** file mappings,
//! which is all this workspace uses (serving `.chl` index files without
//! copying them through the heap).
//!
//! On Unix the mapping is a real `mmap(2)` (`PROT_READ | MAP_PRIVATE`),
//! declared directly against the C library so the offline build needs no
//! `libc` crate. On every other platform [`Mmap::map`] transparently falls
//! back to reading the whole file into an 8-byte-aligned heap buffer — same
//! API, same alignment guarantee, no page-cache sharing. Pages are mapped
//! (or the buffer filled) for the length of the file at map time; like the
//! real crate, empty files map to an empty slice.
//!
//! Swapping in the real `memmap2` keeps every call site compiling: the one
//! constructor used here, `unsafe Mmap::map(&File)`, and the `Deref<Target =
//! [u8]>` view match its API.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of an entire file (or, off Unix, an owned aligned
/// copy of it).
///
/// The base address is page-aligned on Unix and 8-byte aligned in the
/// fallback, so 8-byte-aligned on-disk structures can be reinterpreted in
/// place on either backing.
#[derive(Debug)]
pub struct Mmap {
    inner: sys::Map,
}

impl Mmap {
    /// Maps `file` read-only for its current length.
    ///
    /// # Safety
    ///
    /// The caller must ensure the underlying file is not truncated or
    /// modified by this or another process while the map is alive: on Unix
    /// the mapping observes such changes (truncation can raise `SIGBUS` on
    /// access), which is the same contract the real `memmap2` documents.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        // SAFETY: the caller upholds the no-concurrent-modification
        // contract documented above, which is exactly what the backend
        // requires.
        unsafe { sys::Map::new(file) }.map(|inner| Mmap { inner })
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.inner.as_slice().len()
    }

    /// `true` when the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    #[derive(Debug)]
    pub struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is immutable for its lifetime (PROT_READ) and the
    // pointer is owned solely by this value, so moving the owner between
    // threads is sound.
    unsafe impl Send for Map {}
    // SAFETY: all access through a shared `Map` is read-only (PROT_READ
    // pages, `&[u8]` views only), so concurrent readers cannot race.
    unsafe impl Sync for Map {}

    impl Map {
        /// Maps `file` read-only.
        ///
        /// # Safety
        ///
        /// Same contract as [`crate::Mmap::map`]: the file must not be
        /// truncated or modified while the mapping is alive.
        pub unsafe fn new(file: &File) -> io::Result<Map> {
            let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "file too large to map")
            })?;
            if len == 0 {
                // mmap(2) rejects zero-length mappings; model an empty file
                // as an empty slice like the real crate does.
                return Ok(Map {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: plain FFI call with a live fd, a null address hint and
            // a length validated against the file's metadata; the kernel
            // checks all arguments and reports failure via MAP_FAILED.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                &[]
            } else {
                // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned by
                // self; the kernel guarantees page alignment and the bytes
                // stay mapped until Drop runs.
                unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
            }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: exactly the region returned by mmap in new().
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io::{self, Read};

    /// Buffered fallback: the whole file in an 8-byte-aligned heap buffer.
    #[derive(Debug)]
    pub struct Map {
        words: Vec<u64>,
        len: usize,
    }

    impl Map {
        /// Reads `file` into an aligned buffer.
        ///
        /// # Safety
        ///
        /// Trivially safe (the buffered fallback never aliases the file);
        /// `unsafe` only to mirror the Unix backend's signature.
        pub unsafe fn new(file: &File) -> io::Result<Map> {
            let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "file too large to map")
            })?;
            let mut words = vec![0u64; len.div_ceil(8)];
            // SAFETY: the u64 buffer holds at least `len` bytes and u8 has
            // no alignment requirement.
            let bytes =
                unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
            let mut file = file;
            file.read_exact(bytes)?;
            Ok(Map { words, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: as in new(); lifetime tied to &self.
            unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("memmap2-shim-test-{}-{tag}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn maps_a_file_read_only() {
        let path = temp_file("basic", b"hello mapped world");
        let file = File::open(&path).unwrap();
        // SAFETY: the temp file is created, never truncated, and removed
        // only after the map is dropped.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&map[..], b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        // Page (or heap) alignment covers the 8-byte requirement of callers.
        assert!((map.as_ref().as_ptr() as usize).is_multiple_of(8));
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = temp_file("empty", b"");
        let file = File::open(&path).unwrap();
        // SAFETY: the temp file is created, never truncated, and removed
        // only after the map is dropped.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn maps_are_shareable_across_threads() {
        let path = temp_file("threads", &[7u8; 4096]);
        let file = File::open(&path).unwrap();
        // SAFETY: the temp file is created, never truncated, and removed
        // only after the map is dropped.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert!(map.iter().all(|&b| b == 7)));
            }
        });
        std::fs::remove_file(&path).unwrap();
    }
}
