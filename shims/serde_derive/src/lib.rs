//! No-op shim for `serde_derive`: the workspace only uses the derives as
//! markers (no serialization format is ever produced), and the `serde` shim's
//! traits are blanket-implemented, so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
