#!/usr/bin/env bash
# Refreshes the checked-in benchmark snapshots:
#
#   BENCH_kernels.json  - the criterion kernels group (query join tiers,
#                         SPT kernels, cleaning), machine-readable via the
#                         CHL_BENCH_JSON hook in the criterion shim.
#   BENCH_serve.json    - chl bench-serve --json against an ephemeral
#                         chl serve, with and without --hot-hubs.
#
# Usage: scripts/bench_snapshot.sh [out_dir]
#
# Numbers are wall-clock means on whatever machine runs this; the snapshots
# exist to make perf regressions reviewable, not to be portable.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${1:-.}"
CHL=target/release/chl
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== building (release, target-cpu=native) =="
RUSTFLAGS="-C target-cpu=native" cargo build --release -p chl-cli
RUSTFLAGS="-C target-cpu=native" cargo bench -p chl-bench --bench kernels --no-run

echo "== kernels bench =="
KERNELS_JSONL="$WORK/kernels.jsonl"
CHL_BENCH_JSON="$KERNELS_JSONL" RUSTFLAGS="-C target-cpu=native" \
    cargo bench -p chl-bench --bench kernels

{
    printf '{"snapshot":"kernels","host_arch":"%s","benches":[' "$(uname -m)"
    paste -sd, "$KERNELS_JSONL"
    printf ']}\n'
} | tr -d '\n' >"$OUT_DIR/BENCH_kernels.json"
echo >>"$OUT_DIR/BENCH_kernels.json"

echo "== serve bench =="
# Scale-free graph sized so the hot-hub stripes (k=32: ~500 KiB) stay
# L2-resident — the regime the cache is for; crates/bench/examples/
# hot_hub_tuning.rs has the sweep that picked this configuration.
GRAPH="$WORK/g.bin"
INDEX="$WORK/idx.chl"
"$CHL" gen ba --vertices 2000 --edges-per-vertex 4 --out "$GRAPH" --seed 7
"$CHL" build "$GRAPH" --out "$INDEX"

# One serve+bench round; prints the bench-serve JSON object on stdout.
serve_round() {
    local hot_hubs="$1" serve_log="$WORK/serve_$1.log"
    if [ "$hot_hubs" -gt 0 ]; then
        "$CHL" serve "$INDEX" --addr 127.0.0.1:0 --hot-hubs "$hot_hubs" \
            >"$serve_log" 2>&1 &
    else
        "$CHL" serve "$INDEX" --addr 127.0.0.1:0 >"$serve_log" 2>&1 &
    fi
    local serve_pid=$!
    local addr=""
    for _ in $(seq 1 50); do
        addr="$(sed -n 's/^listening on //p' "$serve_log")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "chl serve never reported its address:" >&2
        cat "$serve_log" >&2
        kill "$serve_pid" 2>/dev/null || true
        return 1
    fi
    "$CHL" bench-serve "$addr" --connections 4 --duration-ms 3000 \
        --pipeline 8 --batch 64 --json --shutdown
    wait "$serve_pid"
}

PLAIN_JSON="$(serve_round 0)"
CACHED_JSON="$(serve_round 32)"

printf '{"snapshot":"serve","host_arch":"%s","plain":%s,"hot_hubs_32":%s}\n' \
    "$(uname -m)" "$PLAIN_JSON" "$CACHED_JSON" >"$OUT_DIR/BENCH_serve.json"

echo "== snapshots written =="
ls -l "$OUT_DIR/BENCH_kernels.json" "$OUT_DIR/BENCH_serve.json"
