//! Table 4 — query processing throughput, latency and memory for the three
//! query modes (QLSN, QFDL, QDOL) on a 16-node cluster.

use chl_bench::{
    banner, datasets_from_env, fmt_mib, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_cluster::{ClusterSpec, SimulatedCluster};
use chl_datasets::{load, DatasetId};
use chl_distributed::{distributed_hybrid, DistributedConfig};
use chl_query::{random_pairs, QdolEngine, QfdlEngine, QlsnEngine, QueryEngine};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let nodes: usize = std::env::var("CHL_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let batch: usize = std::env::var("CHL_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let datasets = datasets_from_env(&DatasetId::all());
    banner(
        "Table 4: query modes on a simulated cluster",
        &format!("scale {scale:?}, q = {nodes} nodes, batch = {batch} queries"),
    );

    let printer = TablePrinter::new(&[
        "Dataset",
        "Mode",
        "Throughput (Mq/s)",
        "Latency (us)",
        "Total label memory (MiB)",
        "Max per-node (MiB)",
    ]);
    let mut csv = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        let spec = ClusterSpec::with_nodes(nodes);
        let cluster = SimulatedCluster::new(spec);
        let labeling = distributed_hybrid(
            &ds.graph,
            &ds.ranking,
            &cluster,
            &DistributedConfig::default(),
        );
        let workload = random_pairs(ds.graph.num_vertices(), batch, seed);

        let engines: Vec<Box<dyn QueryEngine>> = vec![
            Box::new(QlsnEngine::new(&labeling, spec)),
            Box::new(QfdlEngine::new(&labeling, spec)),
            Box::new(QdolEngine::new(&labeling, spec)),
        ];
        for engine in engines {
            let report = engine.evaluate(&workload);
            let cells = vec![
                ds.name().to_string(),
                report.mode.clone(),
                format!("{:.2}", report.throughput_mqps()),
                format!("{:.1}", report.latency_us()),
                fmt_mib(report.total_memory_bytes()),
                fmt_mib(report.max_memory_per_node_bytes()),
            ];
            printer.print_row(&cells);
            csv.push(cells);
        }
    }

    write_csv(
        "table4_query_modes",
        &[
            "dataset",
            "mode",
            "throughput_mqps",
            "latency_us",
            "total_memory_mib",
            "max_node_memory_mib",
        ],
        &csv,
    );
}
