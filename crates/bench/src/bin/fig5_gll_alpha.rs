//! Figure 5 — GLL execution time as a function of the synchronization
//! threshold α. The paper's qualitative shape: a broad flat optimum for
//! α between roughly 2 and 32, with degradation at α = 1 (too many
//! synchronizations) and at very large α (cleaning degenerates to LCC).

use chl_bench::{
    banner, datasets_from_env, fmt_secs, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_core::api::Algorithm;
use chl_core::LabelingConfig;
use chl_datasets::{load, DatasetId};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let datasets = datasets_from_env(&[
        DatasetId::CTR,
        DatasetId::BDU,
        DatasetId::CAL,
        DatasetId::SKIT,
        DatasetId::ACT,
        DatasetId::YTB,
        DatasetId::EAS,
        DatasetId::AUT,
    ]);
    let alphas = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
    banner(
        "Figure 5: GLL execution time vs α",
        &format!("scale {scale:?}, seed {seed}"),
    );

    let printer = TablePrinter::new(&["Dataset", "alpha", "time (s)", "supersteps"]);
    let mut csv = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        for &alpha in &alphas {
            let config = LabelingConfig::default().with_alpha(alpha);
            let result = Algorithm::Gll
                .labeler()
                .build(&ds.graph, &ds.ranking, &config)
                .expect("valid inputs");
            printer.print_row(&[
                ds.name().to_string(),
                format!("{alpha}"),
                fmt_secs(result.stats.total_time),
                result.stats.supersteps.to_string(),
            ]);
            csv.push(vec![
                ds.name().to_string(),
                format!("{alpha}"),
                format!("{:.6}", result.stats.total_time.as_secs_f64()),
                result.stats.supersteps.to_string(),
            ]);
        }
    }

    write_csv(
        "fig5_gll_alpha",
        &["dataset", "alpha", "time_s", "supersteps"],
        &csv,
    );
}
