//! Figure 8 — strong scaling of the four distributed algorithms (DparaPLL,
//! DGLL, PLaNT, Hybrid) as the node count grows from 1 to 64.
//!
//! The reported series is the *modeled* cluster time: per-node compute is
//! measured with the nodes executed free of oversubscription and combined
//! with the α-β communication model (see chl-cluster). The paper's
//! qualitative shape: PLaNT scales near-linearly (no label traffic), Hybrid
//! tracks or beats it on scale-free graphs, while DGLL and especially
//! DparaPLL flatten out or degrade as communication dominates, with DparaPLL
//! additionally blowing up its per-node memory (it replicates all labels).

use chl_bench::{
    banner, datasets_from_env, fmt_mib, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_cluster::{ClusterSpec, SimulatedCluster};
use chl_datasets::{load, DatasetId};
use chl_distributed::{
    distributed_gll, distributed_hybrid, distributed_parapll, distributed_plant, DistributedConfig,
    DistributedLabeling,
};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let datasets = datasets_from_env(&[
        DatasetId::CAL,
        DatasetId::SKIT,
        DatasetId::YTB,
        DatasetId::EAS,
    ]);
    let node_counts: Vec<usize> = std::env::var("CHL_NODE_SWEEP")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32, 64]);
    banner(
        "Figure 8: strong scaling of distributed algorithms (modeled time)",
        &format!("scale {scale:?}, node sweep {node_counts:?}; cores = 8 × nodes in the paper"),
    );

    type Runner = fn(
        &chl_graph::CsrGraph,
        &chl_ranking::Ranking,
        &SimulatedCluster,
        &DistributedConfig,
    ) -> DistributedLabeling;
    let algorithms: Vec<(&str, Runner)> = vec![
        ("DparaPLL", distributed_parapll as Runner),
        ("DGLL", distributed_gll as Runner),
        ("PLaNT", distributed_plant as Runner),
        ("Hybrid", distributed_hybrid as Runner),
    ];

    let printer = TablePrinter::new(&[
        "Dataset",
        "Algorithm",
        "nodes",
        "modeled time (s)",
        "speedup vs 1",
        "bcast (MiB)",
        "peak node mem (MiB)",
    ]);
    let mut csv = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        for (name, runner) in &algorithms {
            let mut baseline = None;
            for &q in &node_counts {
                let spec = ClusterSpec::with_nodes(q);
                let cluster = SimulatedCluster::new(spec);
                let config = DistributedConfig::default();
                let labeling = runner(&ds.graph, &ds.ranking, &cluster, &config);
                let modeled = labeling.metrics.modeled_time(&spec).as_secs_f64();
                let baseline_time = *baseline.get_or_insert(modeled);
                let speedup = baseline_time / modeled.max(1e-12);
                let comm = labeling.metrics.total_comm();
                printer.print_row(&[
                    ds.name().to_string(),
                    name.to_string(),
                    q.to_string(),
                    format!("{modeled:.3}"),
                    format!("{speedup:.1}x"),
                    fmt_mib(comm.broadcast_bytes as usize),
                    fmt_mib(labeling.metrics.peak_node_label_bytes),
                ]);
                csv.push(vec![
                    ds.name().to_string(),
                    name.to_string(),
                    q.to_string(),
                    format!("{modeled:.6}"),
                    format!("{speedup:.3}"),
                    comm.broadcast_bytes.to_string(),
                    labeling.metrics.peak_node_label_bytes.to_string(),
                ]);
            }
        }
    }

    write_csv(
        "fig8_strong_scaling",
        &[
            "dataset",
            "algorithm",
            "nodes",
            "modeled_time_s",
            "speedup",
            "broadcast_bytes",
            "peak_node_label_bytes",
        ],
        &csv,
    );
}
