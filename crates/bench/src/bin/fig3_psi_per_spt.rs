//! Figure 3 — Ψ (vertices explored per label generated) for each PLaNTed SPT
//! as a function of the SPT id, for a road network (CAL) and a scale-free
//! network (SKIT). The paper's qualitative shape: Ψ is near 1 for the most
//! important roots and grows by orders of magnitude for the tail, with a far
//! larger maximum on scale-free graphs than on road networks.

use chl_bench::{
    banner, datasets_from_env, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_core::api::Algorithm;
use chl_core::LabelingConfig;
use chl_datasets::{load, DatasetId};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let datasets = datasets_from_env(&[DatasetId::CAL, DatasetId::SKIT]);
    banner(
        "Figure 3: Ψ per PLaNTed SPT",
        &format!("scale {scale:?}, seed {seed}"),
    );

    // PLaNT exactly as deployed (early termination on); a second series with
    // early termination disabled shows the raw tree sizes for comparison.
    let config = LabelingConfig::default();
    let config_no_et = LabelingConfig {
        early_termination: false,
        ..LabelingConfig::default()
    };
    let mut csv = Vec::new();
    let mut maxima = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        let plant = Algorithm::Plant.labeler();
        let result = plant
            .build(&ds.graph, &ds.ranking, &config)
            .expect("valid inputs");
        let raw = plant
            .build(&ds.graph, &ds.ranking, &config_no_et)
            .expect("valid inputs");
        let raw_max = raw
            .stats
            .psi_per_spt()
            .iter()
            .map(|&(_, p)| p)
            .filter(|p| p.is_finite())
            .fold(0.0f64, f64::max);
        println!(
            "{}: max Ψ without early termination = {raw_max:.0}",
            ds.name()
        );
        let series = result.stats.psi_per_spt();

        println!("\n{} — {} SPTs", ds.name(), series.len());
        let printer = TablePrinter::new(&["SPT id (bucket start)", "Psi (bucket avg)"]);
        let bucket_size = series.len().div_ceil(20).max(1);
        for chunk in series.chunks(bucket_size) {
            let finite: Vec<f64> = chunk
                .iter()
                .map(|&(_, p)| p)
                .filter(|p| p.is_finite())
                .collect();
            let avg = finite.iter().sum::<f64>() / finite.len().max(1) as f64;
            printer.print_row(&[chunk[0].0.to_string(), format!("{avg:.1}")]);
        }
        let max_psi = series
            .iter()
            .map(|&(_, p)| p)
            .filter(|p| p.is_finite())
            .fold(0.0f64, f64::max);
        println!("max Ψ = {max_psi:.0}");
        maxima.push((ds.name().to_string(), max_psi));
        for &(pos, psi) in &series {
            if psi.is_finite() {
                csv.push(vec![
                    ds.name().to_string(),
                    pos.to_string(),
                    format!("{psi:.3}"),
                ]);
            }
        }
    }

    if maxima.len() == 2 {
        println!(
            "\nmax Ψ ratio {} / {} = {:.1}×",
            maxima[1].0,
            maxima[0].0,
            maxima[1].1 / maxima[0].1.max(1e-9)
        );
    }
    write_csv("fig3_psi_per_spt", &["dataset", "spt_id", "psi"], &csv);
}
