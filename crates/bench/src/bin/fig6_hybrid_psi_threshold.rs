//! Figure 6 — execution time of the distributed Hybrid algorithm on 16
//! compute nodes as a function of the switching threshold Ψ_th, separately
//! for road networks and scale-free networks. The paper's qualitative shape:
//! road networks tolerate (and prefer) large Ψ_th — PLaNT is efficient there
//! — while scale-free networks degrade when Ψ_th is too large because
//! low-yield trees keep being PLaNTed.

use chl_bench::{
    banner, datasets_from_env, fmt_secs, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_cluster::{ClusterSpec, SimulatedCluster};
use chl_datasets::{load, DatasetId, Topology};
use chl_distributed::{distributed_hybrid, DistributedConfig};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let nodes: usize = std::env::var("CHL_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let datasets = datasets_from_env(&[
        DatasetId::CTR,
        DatasetId::CAL,
        DatasetId::EAS,
        DatasetId::BDU,
        DatasetId::SKIT,
        DatasetId::ACT,
        DatasetId::YTB,
        DatasetId::AUT,
    ]);
    let thresholds = [16.0, 64.0, 100.0, 256.0, 500.0, 1024.0, 4096.0, 16384.0];
    banner(
        "Figure 6: Hybrid execution time vs Ψ_th",
        &format!("scale {scale:?}, q = {nodes} simulated nodes (modeled time)"),
    );

    let printer = TablePrinter::new(&[
        "Dataset",
        "type",
        "psi_th",
        "modeled time (s)",
        "wall time (s)",
    ]);
    let mut csv = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        let topo = match id.topology() {
            Topology::Road => "road",
            Topology::ScaleFree => "scale-free",
        };
        for &psi in &thresholds {
            let spec = ClusterSpec::with_nodes(nodes);
            let cluster = SimulatedCluster::new(spec);
            let config = DistributedConfig::default().with_psi_threshold(psi);
            let labeling = distributed_hybrid(&ds.graph, &ds.ranking, &cluster, &config);
            let modeled = labeling.metrics.modeled_time(&spec);
            printer.print_row(&[
                ds.name().to_string(),
                topo.to_string(),
                format!("{psi}"),
                fmt_secs(modeled),
                fmt_secs(labeling.metrics.wall_time),
            ]);
            csv.push(vec![
                ds.name().to_string(),
                topo.to_string(),
                format!("{psi}"),
                format!("{:.6}", modeled.as_secs_f64()),
                format!("{:.6}", labeling.metrics.wall_time.as_secs_f64()),
            ]);
        }
    }

    write_csv(
        "fig6_hybrid_psi_threshold",
        &[
            "dataset",
            "type",
            "psi_threshold",
            "modeled_time_s",
            "wall_time_s",
        ],
        &csv,
    );
}
