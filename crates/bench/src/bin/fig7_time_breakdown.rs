//! Figure 7 — label construction vs. label cleaning time for LCC and GLL,
//! normalized by GLL's total execution time. The paper's qualitative shape:
//! GLL's cleaning is a small fraction of its runtime, while LCC's cleaning is
//! the dominant overhead, making GLL ~1.25× faster overall.

use chl_bench::{
    banner, datasets_from_env, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_core::api::Algorithm;
use chl_core::LabelingConfig;
use chl_datasets::{load, DatasetId};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let datasets = datasets_from_env(&DatasetId::shared_memory_set());
    let config = LabelingConfig::default();
    banner(
        "Figure 7: LCC vs GLL construction/cleaning breakdown (normalized by GLL total)",
        &format!(
            "scale {scale:?}, seed {seed}, {} threads",
            config.effective_threads()
        ),
    );

    let printer = TablePrinter::new(&[
        "Dataset",
        "GLL construct",
        "LCC construct",
        "GLL clean",
        "LCC clean",
        "LCC/GLL total",
    ]);
    let mut csv = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        let gll_run = Algorithm::Gll
            .labeler()
            .build(&ds.graph, &ds.ranking, &config)
            .expect("valid inputs");
        let lcc_run = Algorithm::Lcc
            .labeler()
            .build(&ds.graph, &ds.ranking, &config)
            .expect("valid inputs");
        let norm = gll_run.stats.total_time.as_secs_f64().max(1e-9);

        let cells = vec![
            ds.name().to_string(),
            format!(
                "{:.2}",
                gll_run.stats.construction_time.as_secs_f64() / norm
            ),
            format!(
                "{:.2}",
                lcc_run.stats.construction_time.as_secs_f64() / norm
            ),
            format!("{:.2}", gll_run.stats.cleaning_time.as_secs_f64() / norm),
            format!("{:.2}", lcc_run.stats.cleaning_time.as_secs_f64() / norm),
            format!("{:.2}", lcc_run.stats.total_time.as_secs_f64() / norm),
        ];
        printer.print_row(&cells);
        csv.push(cells);
    }

    write_csv(
        "fig7_time_breakdown",
        &[
            "dataset",
            "gll_construct",
            "lcc_construct",
            "gll_clean",
            "lcc_clean",
            "lcc_over_gll_total",
        ],
        &csv,
    );
}
