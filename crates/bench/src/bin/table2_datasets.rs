//! Table 2 — dataset inventory: the synthetic stand-ins versus the paper's
//! original sizes.

use chl_bench::{banner, scale_from_env, seed_from_env, write_csv, TablePrinter};
use chl_datasets::synth::table2;
use chl_datasets::Topology;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner(
        "Table 2: Datasets for Evaluation",
        &format!("synthetic stand-ins at scale {scale:?}, seed {seed}"),
    );

    let rows = table2(scale, seed);
    let printer = TablePrinter::new(&[
        "Dataset",
        "n (synthetic)",
        "m (synthetic)",
        "n (paper)",
        "m (paper)",
        "Type",
        "~diameter",
    ]);
    let mut csv = Vec::new();
    for row in &rows {
        let topo = match row.topology {
            Topology::Road => "road",
            Topology::ScaleFree => "scale-free",
        };
        let cells = vec![
            row.name.to_string(),
            row.vertices.to_string(),
            row.edges.to_string(),
            row.paper_vertices.to_string(),
            row.paper_edges.to_string(),
            topo.to_string(),
            row.approx_diameter.to_string(),
        ];
        printer.print_row(&cells);
        csv.push(cells);
    }
    write_csv(
        "table2_datasets",
        &[
            "dataset",
            "n_synth",
            "m_synth",
            "n_paper",
            "m_paper",
            "type",
            "approx_diameter",
        ],
        &csv,
    );
}
