//! Table 3 — shared-memory comparison: SparaPLL (ALS + time), CHL ALS,
//! sequential PLL, LCC and GLL construction times.
//!
//! All constructors run through the unified `Labeler` interface, so the
//! measured set is data (`Algorithm` values), not hand-written call sites.
//!
//! The paper's qualitative expectations, checked against these rows in
//! EXPERIMENTS.md: SparaPLL's ALS exceeds the CHL ALS (≈17% on average in the
//! paper), GLL is faster than LCC, and both GLL and LCC beat sequential PLL
//! by a wide margin while producing the canonical label size.

use chl_bench::{
    banner, datasets_from_env, fmt_secs, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_core::api::Algorithm;
use chl_core::{LabelingConfig, LabelingResult};
use chl_datasets::{load, DatasetId};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let datasets = datasets_from_env(&DatasetId::shared_memory_set());
    let config = LabelingConfig::default();
    banner(
        "Table 3: shared-memory labeling comparison",
        &format!(
            "scale {scale:?}, seed {seed}, {} threads, alpha = {}",
            config.effective_threads(),
            config.alpha
        ),
    );

    let printer = TablePrinter::new(&[
        "Dataset",
        "SparaPLL ALS",
        "SparaPLL time(s)",
        "CHL ALS",
        "seqPLL time(s)",
        "LCC time(s)",
        "GLL time(s)",
    ]);
    let mut csv = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        let run = |algo: Algorithm| -> LabelingResult {
            algo.labeler()
                .build(&ds.graph, &ds.ranking, &config)
                .unwrap_or_else(|e| panic!("{algo}: {e}"))
        };
        let spara = run(Algorithm::SParaPll);
        let seq = run(Algorithm::Pll);
        let lcc_run = run(Algorithm::Lcc);
        let gll_run = run(Algorithm::Gll);

        let cells = vec![
            ds.name().to_string(),
            format!("{:.1}", spara.index.average_label_size()),
            fmt_secs(spara.stats.total_time),
            format!("{:.1}", seq.index.average_label_size()),
            fmt_secs(seq.stats.total_time),
            fmt_secs(lcc_run.stats.total_time),
            fmt_secs(gll_run.stats.total_time),
        ];
        printer.print_row(&cells);
        csv.push(cells);

        // Sanity invariants mirrored from the paper: LCC and GLL reproduce
        // the canonical label size exactly.
        assert_eq!(lcc_run.index.total_labels(), seq.index.total_labels());
        assert_eq!(gll_run.index.total_labels(), seq.index.total_labels());
    }

    write_csv(
        "table3_shared_memory",
        &[
            "dataset",
            "sparapll_als",
            "sparapll_time_s",
            "chl_als",
            "seqpll_time_s",
            "lcc_time_s",
            "gll_time_s",
        ],
        &csv,
    );
}
