//! Figure 9 — average label size (ALS) of DparaPLL vs. the Hybrid algorithm
//! as the node count grows. The paper's qualitative shape: the Hybrid (and
//! every other CHL-producing algorithm) keeps the canonical ALS regardless of
//! the node count, while DparaPLL's ALS explodes with more nodes because
//! labels from high-ranked hubs are missing during pruning.

use chl_bench::{
    banner, datasets_from_env, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_cluster::{ClusterSpec, SimulatedCluster};
use chl_core::api::Algorithm;
use chl_core::LabelingConfig;
use chl_datasets::{load, DatasetId};
use chl_distributed::{distributed_hybrid, distributed_parapll, DistributedConfig};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let datasets = datasets_from_env(&[
        DatasetId::CAL,
        DatasetId::EAS,
        DatasetId::SKIT,
        DatasetId::WND,
        DatasetId::AUT,
        DatasetId::YTB,
        DatasetId::ACT,
        DatasetId::BDU,
    ]);
    let node_counts: Vec<usize> = std::env::var("CHL_NODE_SWEEP")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32, 64]);
    banner(
        "Figure 9: average label size of DparaPLL vs Hybrid",
        &format!("scale {scale:?}, node sweep {node_counts:?}"),
    );

    let printer = TablePrinter::new(&["Dataset", "nodes", "DparaPLL ALS", "Hybrid ALS", "CHL ALS"]);
    let mut csv = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        let chl_als = Algorithm::Pll
            .labeler()
            .build(&ds.graph, &ds.ranking, &LabelingConfig::default())
            .expect("valid inputs")
            .index
            .average_label_size();
        for &q in &node_counts {
            let spec = ClusterSpec::with_nodes(q);
            let config = DistributedConfig::default();
            let dparapll = distributed_parapll(
                &ds.graph,
                &ds.ranking,
                &SimulatedCluster::new(spec),
                &config,
            );
            let hybrid = distributed_hybrid(
                &ds.graph,
                &ds.ranking,
                &SimulatedCluster::new(spec),
                &config,
            );
            let cells = vec![
                ds.name().to_string(),
                q.to_string(),
                format!("{:.1}", dparapll.average_label_size()),
                format!("{:.1}", hybrid.average_label_size()),
                format!("{chl_als:.1}"),
            ];
            printer.print_row(&cells);
            csv.push(cells);
        }
    }

    write_csv(
        "fig9_als_scaling",
        &["dataset", "nodes", "dparapll_als", "hybrid_als", "chl_als"],
        &csv,
    );
}
