//! Figure 4 — number of labels generated when PLL's pruning distance queries
//! may only use the `x` highest-ranked hubs (x = 0 means rank queries only).
//! The paper's qualitative shape: the label count drops dramatically with the
//! first few pruning hubs and approaches the canonical size quickly — the
//! observation motivating the Common Label Table (§5.3).

use chl_bench::{
    banner, datasets_from_env, scale_from_env, seed_from_env, write_csv, TablePrinter,
};
use chl_core::api::Algorithm;
use chl_core::pll::pll_with_restricted_pruning;
use chl_core::LabelingConfig;
use chl_datasets::{load, DatasetId};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let datasets = datasets_from_env(&[DatasetId::CAL, DatasetId::SKIT]);
    banner(
        "Figure 4: labels generated vs. number of hubs usable by pruning queries",
        &format!("scale {scale:?}, seed {seed}"),
    );

    let sweep: Vec<u32> = vec![0, 1, 2, 4, 8, 16, 32, 64];
    let mut csv = Vec::new();

    for id in datasets {
        let ds = load(id, scale, seed);
        let canonical = Algorithm::Pll
            .labeler()
            .build(&ds.graph, &ds.ranking, &LabelingConfig::default())
            .expect("valid inputs")
            .index
            .total_labels();

        println!("\n{} — canonical label count = {}", ds.name(), canonical);
        let printer = TablePrinter::new(&["# pruning hubs", "# labels", "vs canonical"]);
        for &x in &sweep {
            let labels = pll_with_restricted_pruning(&ds.graph, &ds.ranking, x)
                .index
                .total_labels();
            printer.print_row(&[
                x.to_string(),
                labels.to_string(),
                format!("{:.2}x", labels as f64 / canonical.max(1) as f64),
            ]);
            csv.push(vec![
                ds.name().to_string(),
                x.to_string(),
                labels.to_string(),
                canonical.to_string(),
            ]);
        }
    }

    write_csv(
        "fig4_pruning_hubs",
        &["dataset", "pruning_hubs", "labels", "canonical_labels"],
        &csv,
    );
}
