//! # chl-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation section (§7). Each experiment is a standalone binary:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2_datasets` | Table 2 — dataset inventory |
//! | `table3_shared_memory` | Table 3 — SparaPLL / seqPLL / LCC / GLL comparison |
//! | `table4_query_modes` | Table 4 — QLSN / QFDL / QDOL throughput, latency, memory |
//! | `fig2_labels_per_spt` | Figure 2 — labels generated per SPT |
//! | `fig3_psi_per_spt` | Figure 3 — Ψ (exploration per label) per SPT |
//! | `fig4_pruning_hubs` | Figure 4 — label count vs. number of pruning hubs |
//! | `fig5_gll_alpha` | Figure 5 — GLL time vs. synchronization threshold α |
//! | `fig6_hybrid_psi_threshold` | Figure 6 — Hybrid time vs. switching threshold Ψ_th |
//! | `fig7_time_breakdown` | Figure 7 — LCC vs. GLL construction/cleaning breakdown |
//! | `fig8_strong_scaling` | Figure 8 — strong scaling of DparaPLL / DGLL / PLaNT / Hybrid |
//! | `fig9_als_scaling` | Figure 9 — average label size of DparaPLL vs. Hybrid |
//!
//! Run one with `cargo run --release -p chl-bench --bin <name>`. Every binary
//! prints a human-readable table and writes `target/experiments/<name>.csv`.
//!
//! Environment knobs shared by all binaries:
//!
//! * `CHL_SCALE` — `tiny`, `small` (default) or `medium`; scales the
//!   synthetic stand-in datasets.
//! * `CHL_DATASETS` — comma-separated subset of dataset names (e.g.
//!   `CAL,SKIT`) to restrict an experiment.
//! * `CHL_SEED` — RNG seed for dataset generation (default 42).

#![forbid(unsafe_code)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use chl_datasets::{DatasetId, Scale};

/// Reads the dataset scale from `CHL_SCALE` (default: small).
pub fn scale_from_env() -> Scale {
    match std::env::var("CHL_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "tiny" => Scale::Tiny,
        "medium" => Scale::Medium,
        _ => Scale::Small,
    }
}

/// Reads the RNG seed from `CHL_SEED` (default: 42).
pub fn seed_from_env() -> u64 {
    std::env::var("CHL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Reads the dataset selection from `CHL_DATASETS`, falling back to
/// `default` when unset or unparsable.
pub fn datasets_from_env(default: &[DatasetId]) -> Vec<DatasetId> {
    match std::env::var("CHL_DATASETS") {
        Ok(list) if !list.trim().is_empty() => {
            let wanted: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_uppercase())
                .filter(|s| !s.is_empty())
                .collect();
            let selected: Vec<DatasetId> = DatasetId::all()
                .into_iter()
                .filter(|d| wanted.iter().any(|w| w == d.name()))
                .collect();
            if selected.is_empty() {
                default.to_vec()
            } else {
                selected
            }
        }
        _ => default.to_vec(),
    }
}

/// Directory where experiment CSVs are written (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target").join("experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a CSV file into [`experiments_dir`]; failures are reported to
/// stderr but never abort the experiment.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = experiments_dir().join(format!("{name}.csv"));
    let write = || -> std::io::Result<()> {
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    };
    match write() {
        Ok(()) => println!("\n[csv] wrote {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Formats a duration in seconds with 3 decimal places.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count as mebibytes.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// A minimal fixed-width console table printer.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Prints the header row and remembers the column widths.
    pub fn new(columns: &[&str]) -> Self {
        let widths: Vec<usize> = columns.iter().map(|c| c.len().max(10)).collect();
        let printer = TablePrinter { widths };
        printer.print_row(&columns.iter().map(|c| c.to_string()).collect::<Vec<_>>());
        println!(
            "{}",
            "-".repeat(printer.widths.iter().sum::<usize>() + 3 * printer.widths.len())
        );
        printer
    }

    /// Prints one data row, padding each cell to its column width.
    pub fn print_row(&self, cells: &[String]) {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:>width$}",
                    c,
                    width = self.widths.get(i).copied().unwrap_or(10)
                )
            })
            .collect();
        println!("{}", line.join(" | "));
    }
}

/// Standard experiment banner.
pub fn banner(title: &str, detail: &str) {
    println!("\n=== {title} ===");
    println!("{detail}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_small() {
        // Cannot mutate the environment safely in parallel tests; just check
        // the default path (no CHL_SCALE set in the test environment).
        if std::env::var("CHL_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::Small);
        }
    }

    #[test]
    fn dataset_selection_falls_back_to_default() {
        if std::env::var("CHL_DATASETS").is_err() {
            let def = [DatasetId::CAL, DatasetId::SKIT];
            assert_eq!(datasets_from_env(&def), def.to_vec());
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(fmt_mib(1024 * 1024), "1.00");
    }

    #[test]
    fn csv_writer_creates_files() {
        write_csv(
            "unit_test_output",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let path = experiments_dir().join("unit_test_output.csv");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
    }
}
