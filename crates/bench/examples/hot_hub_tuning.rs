//! One-off tuning harness for the query kernel tiers and the hot-hub cache:
//! measures each join tier and the cached query against the seed scalar on
//! several graph shapes and cache sizes.
//!
//! Run with: `cargo run --release -p chl-bench --example hot_hub_tuning`

use std::hint::black_box;
use std::time::Instant;

use chl_core::api::{Algorithm, ChlBuilder, RankingStrategy};
use chl_core::flat::FlatIndex;
use chl_core::kernel::{self, HotHubCache};
use chl_core::labels::{join_sorted_iters, LabelEntry};
use chl_graph::csr::CsrGraph;
use chl_graph::generators::{barabasi_albert, grid_network, GridOptions};
use chl_graph::types::INFINITY;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn measure(name: &str, g: &CsrGraph) {
    let n = g.num_vertices();
    let result = ChlBuilder::new(g)
        .ranking(RankingStrategy::Degree)
        .algorithm(Algorithm::Hybrid)
        .threads(1)
        .validate()
        .expect("valid config")
        .build()
        .expect("construction succeeds");
    let flat = FlatIndex::from_index(&result.index);
    println!(
        "== {name}: {n} vertices, {} labels (avg {:.1}) ==",
        flat.total_labels(),
        flat.total_labels() as f64 / n as f64
    );

    let mut state = 42u64;
    let pairs: Vec<(u32, u32)> = (0..200_000)
        .map(|_| {
            let r = splitmix64(&mut state);
            (((r >> 32) as u32) % n as u32, (r as u32) % n as u32)
        })
        .collect();

    let t = Instant::now();
    let mut sum = 0u64;
    for &(u, v) in &pairs {
        sum = sum.wrapping_add(black_box(flat.query(u, v)));
    }
    let plain_ns = t.elapsed().as_nanos() as f64 / pairs.len() as f64;
    println!("plain flat query: {plain_ns:.1} ns/query (sum {sum})");

    type JoinFn = dyn Fn(&[LabelEntry], &[LabelEntry]) -> Option<(u32, u64)>;
    let view = flat.as_view();
    let time_join = |name: &str, join: &JoinFn| {
        let t = Instant::now();
        let mut s = 0u64;
        for &(u, v) in &pairs {
            let d = join(view.labels_of(u), view.labels_of(v))
                .map(|(_, d)| d)
                .unwrap_or(INFINITY);
            s = s.wrapping_add(black_box(d));
        }
        println!(
            "  join {name:<12} {:.1} ns/query",
            t.elapsed().as_nanos() as f64 / pairs.len() as f64
        );
    };
    time_join("seed_iters", &|a, b| {
        join_sorted_iters(a.iter().copied(), b.iter().copied())
    });
    time_join("scalar", &kernel::join_scalar);
    time_join("branchless", &kernel::join_branchless);
    time_join("gallop", &kernel::join_gallop);
    time_join("simd", &kernel::join_simd);
    time_join("adaptive", &kernel::join_adaptive);

    for k in [4u32, 8, 16, 32] {
        let cache = HotHubCache::build(&flat.as_index_view(), k);
        let iview = flat.as_index_view();
        let t = Instant::now();
        let mut csum = 0u64;
        for &(u, v) in &pairs {
            csum = csum.wrapping_add(black_box(iview.query_cached(&cache, u, v)));
        }
        let cached_ns = t.elapsed().as_nanos() as f64 / pairs.len() as f64;
        assert_eq!(sum, csum, "cached answers must match");
        println!(
            "  cached k={k:<3} {cached_ns:.1} ns/query ({:+.1}% vs plain), {} KiB",
            100.0 * (cached_ns - plain_ns) / plain_ns,
            cache.memory_bytes() / 1024
        );
    }
}

fn main() {
    measure("ba_2000", &barabasi_albert(2_000, 4, 7));
    measure("ba_20000", &barabasi_albert(20_000, 4, 7));
    measure(
        "grid_64x64",
        &grid_network(
            &GridOptions {
                rows: 64,
                cols: 64,
                ..GridOptions::default()
            },
            7,
        ),
    );
}
