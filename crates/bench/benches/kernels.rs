//! Criterion micro-benchmarks for the hot kernels of hub labeling:
//! PPSD distance queries (the tiered merge-join kernels against the
//! streaming seed join, across the flat / compressed / hot-hub-cached
//! backends), the pruned-Dijkstra SPT kernel, the PLaNT Dijkstra kernel
//! and the label cleaning pass.
//!
//! Query pairs come from a splitmix64 stream: the previous LCG derived
//! `v` from `i >> 8`, which correlates the two endpoints (low-entropy
//! high bits) and made every pair hit the same few label runs. Pairs are
//! precomputed so the generator is outside the timed region.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chl_core::cleaning::clean_labels;
use chl_core::flat::FlatIndex;
use chl_core::kernel::{self, HotHubCached};
use chl_core::labels::{join_sorted_iters, LabelEntry, RootLabelHash};
use chl_core::mapped::MmapIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::persist::{save_with, SaveOptions};
use chl_core::plant::{plant_dijkstra, CommonLabelTable, PlantScratch};
use chl_core::pll::{pll_with_restricted_pruning, sequential_pll};
use chl_core::pruned_dijkstra::{pruned_dijkstra, DijkstraScratch, PruneOptions};
use chl_core::table::ConcurrentLabelTable;
use chl_datasets::{load, DatasetId, Scale};

/// Number of precomputed query pairs (power of two so `i & MASK` cycles).
const PAIRS: usize = 4096;

/// splitmix64: every output bit depends on every state bit, so `u` and `v`
/// drawn from the two halves of one output are decorrelated.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn query_pairs(n: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed;
    (0..PAIRS)
        .map(|_| {
            let r = splitmix64(&mut state);
            (((r >> 32) as u32) % n, (r as u32) % n)
        })
        .collect()
}

fn query_kernels(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let n = ds.graph.num_vertices() as u32;
    let flat = FlatIndex::from_index(&index);
    let runs: Vec<&[LabelEntry]> = (0..n).map(|v| flat.labels_of(v)).collect();
    let pairs = query_pairs(n, 42);

    // The compressed backend streams varint-decoded runs from a saved file;
    // the cached backend answers top-k hubs from the HotHubCache first.
    let compressed_path = std::env::temp_dir().join("chl_bench_kernels_compressed.chl");
    save_with(&flat, &compressed_path, &SaveOptions::compressed())
        .expect("saving the compressed bench index");
    let compressed = MmapIndex::open(&compressed_path).expect("mapping the compressed bench index");
    let cached = HotHubCached::new(FlatIndex::from_index(&index), 16);

    let mut group = c.benchmark_group("query");
    // Raw slice kernels: same runs, different join tier.
    group.bench_function("seed_scalar_iter_join", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(join_sorted_iters(
                runs[u as usize].iter().copied(),
                runs[v as usize].iter().copied(),
            ))
        })
    });
    group.bench_function("scalar_join", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(kernel::join_scalar(runs[u as usize], runs[v as usize]))
        })
    });
    group.bench_function("branchless_join", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(kernel::join_branchless(runs[u as usize], runs[v as usize]))
        })
    });
    group.bench_function("gallop_join", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(kernel::join_gallop(runs[u as usize], runs[v as usize]))
        })
    });
    group.bench_function(format!("simd_join_{}", kernel::simd_backend()), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(kernel::join_simd(runs[u as usize], runs[v as usize]))
        })
    });
    group.bench_function("adaptive_join", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(kernel::join_adaptive(runs[u as usize], runs[v as usize]))
        })
    });
    // Full oracle paths: bounds checks, storage dispatch, tie-break result.
    group.bench_function("pointer_index_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(index.query(u, v))
        })
    });
    group.bench_function("flat_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(flat.query(u, v))
        })
    });
    group.bench_function("compressed_stream_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(compressed.distance(u, v))
        })
    });
    group.bench_function("cached_flat_query_k16", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i & (PAIRS - 1)];
            i += 1;
            black_box(cached.distance(u, v))
        })
    });
    group.bench_function("hash_join_coverage", |b| {
        let root_hash = RootLabelHash::from_entries(index.labels_of(0).entries().iter().copied());
        let mut state = 42u64;
        b.iter(|| {
            let v = (splitmix64(&mut state) as u32) % n;
            black_box(root_hash.covers(index.labels_of(v).entries(), 1_000))
        })
    });
    group.finish();
    drop(compressed);
    let _ = std::fs::remove_file(&compressed_path);

    // Length-skewed joins: a hub-heavy run against a tiny one — the shape
    // galloping exists for (O(small * log large) searches instead of a
    // scan of the large side). Tiny-scale dataset labels top out at ~14
    // entries, so the skewed runs are synthesized: 4096 even hubs on the
    // large side, 4 probes on the small side (two hits, two misses).
    let long: Vec<LabelEntry> = (0..4096u32)
        .map(|i| LabelEntry {
            hub: i * 2,
            dist: u64::from(i) + 1,
        })
        .collect();
    let short: Vec<LabelEntry> = [40u32, 1_001, 4_000, 8_190]
        .into_iter()
        .map(|hub| LabelEntry { hub, dist: 7 })
        .collect();

    let mut skew = c.benchmark_group(format!("query_skew_{}x{}", long.len(), short.len()));
    skew.bench_function("seed_scalar_iter_join", |b| {
        b.iter(|| {
            black_box(join_sorted_iters(
                long.iter().copied(),
                short.iter().copied(),
            ))
        })
    });
    skew.bench_function("scalar_join", |b| {
        b.iter(|| black_box(kernel::join_scalar(&long, &short)))
    });
    skew.bench_function("branchless_join", |b| {
        b.iter(|| black_box(kernel::join_branchless(&long, &short)))
    });
    skew.bench_function("gallop_join", |b| {
        b.iter(|| black_box(kernel::join_gallop(&long, &short)))
    });
    skew.bench_function("adaptive_join", |b| {
        b.iter(|| black_box(kernel::join_adaptive(&long, &short)))
    });
    skew.finish();
}

fn spt_kernels(c: &mut Criterion) {
    let road = load(DatasetId::CAL, Scale::Tiny, 42);
    let n = road.graph.num_vertices();
    let mid_root = road.ranking.vertex_at((n / 2) as u32);

    let mut group = c.benchmark_group("spt_kernel");
    group.bench_function("pruned_dijkstra_mid_rank_root", |b| {
        // Labels of all higher-ranked roots are present, as they would be in
        // a real construction when this root's turn comes.
        let table = ConcurrentLabelTable::new(n);
        let mut scratch = DijkstraScratch::new(n);
        for pos in 0..(n / 2) as u32 {
            pruned_dijkstra(
                &road.graph,
                &road.ranking,
                road.ranking.vertex_at(pos),
                &table,
                PruneOptions::default(),
                &mut scratch,
            );
        }
        b.iter_batched(
            || DijkstraScratch::new(n),
            |mut fresh| {
                black_box(pruned_dijkstra(
                    &road.graph,
                    &road.ranking,
                    mid_root,
                    &table,
                    PruneOptions::default(),
                    &mut fresh,
                ))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("plant_dijkstra_mid_rank_root", |b| {
        let common = CommonLabelTable::empty(n);
        b.iter_batched(
            || PlantScratch::new(n),
            |mut fresh| {
                black_box(plant_dijkstra(
                    &road.graph,
                    &road.ranking,
                    mid_root,
                    true,
                    &common,
                    &mut fresh,
                ))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn cleaning_kernel(c: &mut Criterion) {
    let ds = load(DatasetId::AUT, Scale::Tiny, 42);
    // An inflated labeling (rank queries only) gives the cleaner real work.
    let inflated = pll_with_restricted_pruning(&ds.graph, &ds.ranking, 0).index;
    let sets = inflated.into_label_sets();

    c.bench_function("clean_labels_inflated_labeling", |b| {
        b.iter(|| black_box(clean_labels(&sets, &ds.ranking)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = query_kernels, spt_kernels, cleaning_kernel
}
criterion_main!(kernels);
