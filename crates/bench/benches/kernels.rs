//! Criterion micro-benchmarks for the hot kernels of hub labeling:
//! PPSD distance queries (merge vs. hash join), the pruned-Dijkstra SPT
//! kernel, the PLaNT Dijkstra kernel and the label cleaning pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chl_core::cleaning::clean_labels;
use chl_core::labels::RootLabelHash;
use chl_core::plant::{plant_dijkstra, CommonLabelTable, PlantScratch};
use chl_core::pll::{pll_with_restricted_pruning, sequential_pll};
use chl_core::pruned_dijkstra::{pruned_dijkstra, DijkstraScratch, PruneOptions};
use chl_core::table::ConcurrentLabelTable;
use chl_datasets::{load, DatasetId, Scale};

fn query_kernels(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let n = ds.graph.num_vertices() as u32;

    let mut group = c.benchmark_group("query");
    group.bench_function("merge_join_ppsd", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let u = i % n;
            let v = (i >> 8) % n;
            black_box(index.query(u, v))
        })
    });
    group.bench_function("hash_join_coverage", |b| {
        let root_hash = RootLabelHash::from_entries(index.labels_of(0).entries().iter().copied());
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(40503);
            let v = i % n;
            black_box(root_hash.covers(index.labels_of(v).entries(), 1_000))
        })
    });
    group.finish();
}

fn spt_kernels(c: &mut Criterion) {
    let road = load(DatasetId::CAL, Scale::Tiny, 42);
    let n = road.graph.num_vertices();
    let mid_root = road.ranking.vertex_at((n / 2) as u32);

    let mut group = c.benchmark_group("spt_kernel");
    group.bench_function("pruned_dijkstra_mid_rank_root", |b| {
        // Labels of all higher-ranked roots are present, as they would be in
        // a real construction when this root's turn comes.
        let table = ConcurrentLabelTable::new(n);
        let mut scratch = DijkstraScratch::new(n);
        for pos in 0..(n / 2) as u32 {
            pruned_dijkstra(
                &road.graph,
                &road.ranking,
                road.ranking.vertex_at(pos),
                &table,
                PruneOptions::default(),
                &mut scratch,
            );
        }
        b.iter_batched(
            || DijkstraScratch::new(n),
            |mut fresh| {
                black_box(pruned_dijkstra(
                    &road.graph,
                    &road.ranking,
                    mid_root,
                    &table,
                    PruneOptions::default(),
                    &mut fresh,
                ))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("plant_dijkstra_mid_rank_root", |b| {
        let common = CommonLabelTable::empty(n);
        b.iter_batched(
            || PlantScratch::new(n),
            |mut fresh| {
                black_box(plant_dijkstra(
                    &road.graph,
                    &road.ranking,
                    mid_root,
                    true,
                    &common,
                    &mut fresh,
                ))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn cleaning_kernel(c: &mut Criterion) {
    let ds = load(DatasetId::AUT, Scale::Tiny, 42);
    // An inflated labeling (rank queries only) gives the cleaner real work.
    let inflated = pll_with_restricted_pruning(&ds.graph, &ds.ranking, 0).index;
    let sets = inflated.into_label_sets();

    c.bench_function("clean_labels_inflated_labeling", |b| {
        b.iter(|| black_box(clean_labels(&sets, &ds.ranking)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = query_kernels, spt_kernels, cleaning_kernel
}
criterion_main!(kernels);
