//! Thread-scaling of the batch query path: `DistanceOracle::distances` over
//! a fixed random workload on pools of 1 / 2 / 4 / 8 threads, for both label
//! layouts (contiguous [`FlatIndex`] and pointer-per-vertex
//! [`HubLabelIndex`]).
//!
//! The batch answers are identical at every thread count (chunks are
//! contiguous and reassembled in order — property-tested in
//! `crates/query/tests/proptest_parallel_distances.rs`), so the only thing
//! varying here is wall time. On a ≥4-core machine the multi-threaded rows
//! should scale close to linearly until memory bandwidth saturates; on fewer
//! cores the extra threads only add scheduling noise.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chl_core::flat::FlatIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::pll::sequential_pll;
use chl_datasets::{load, DatasetId, Scale};
use chl_query::workload::random_pairs;
use rayon::ThreadPoolBuilder;

fn batch_query_scaling(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let pairs = random_pairs(ds.graph.num_vertices(), 100_000, 7).pairs;

    let mut group = c.benchmark_group("batch_distances");
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_function(format!("flat/{threads}_threads"), |b| {
            b.iter(|| pool.install(|| black_box(flat.distances(&pairs))))
        });
        group.bench_function(format!("pointer/{threads}_threads"), |b| {
            b.iter(|| pool.install(|| black_box(index.distances(&pairs))))
        });
    }
    group.finish();
}

criterion_group!(benches, batch_query_scaling);
criterion_main!(benches);
