//! Criterion end-to-end construction benchmarks: every labeling constructor
//! on a small road network and a small scale-free network, plus ablations for
//! the design choices called out in DESIGN.md (rank queries on/off, early
//! termination on/off, common-label pruning on/off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chl_cluster::{ClusterSpec, SimulatedCluster};
use chl_core::{
    gll::gll, hybrid::shared_hybrid, lcc::lcc, para_pll::spara_pll, plant::plant_labeling,
    pll::sequential_pll, LabelingConfig,
};
use chl_datasets::{load, Dataset, DatasetId, Scale};
use chl_distributed::{distributed_hybrid, distributed_plant, DistributedConfig};

fn bench_dataset(c: &mut Criterion, ds: &Dataset) {
    let mut group = c.benchmark_group(format!("construct/{}", ds.name()));
    let config = LabelingConfig::default().with_threads(4);

    group.bench_function("seqPLL", |b| {
        b.iter(|| black_box(sequential_pll(&ds.graph, &ds.ranking)))
    });
    group.bench_function("SparaPLL", |b| {
        b.iter(|| black_box(spara_pll(&ds.graph, &ds.ranking, &config)))
    });
    group.bench_function("LCC", |b| {
        b.iter(|| black_box(lcc(&ds.graph, &ds.ranking, &config)))
    });
    group.bench_function("GLL", |b| {
        b.iter(|| black_box(gll(&ds.graph, &ds.ranking, &config)))
    });
    group.bench_function("PLaNT", |b| {
        b.iter(|| black_box(plant_labeling(&ds.graph, &ds.ranking, &config)))
    });
    group.bench_function("Hybrid", |b| {
        b.iter(|| black_box(shared_hybrid(&ds.graph, &ds.ranking, &config)))
    });
    group.finish();
}

fn construction_benchmarks(c: &mut Criterion) {
    let road = load(DatasetId::CAL, Scale::Tiny, 42);
    let social = load(DatasetId::SKIT, Scale::Tiny, 42);
    bench_dataset(c, &road);
    bench_dataset(c, &social);
}

fn ablation_benchmarks(c: &mut Criterion) {
    let social = load(DatasetId::SKIT, Scale::Tiny, 42);
    let mut group = c.benchmark_group("ablation");

    // Early termination in PLaNT.
    for early in [true, false] {
        let config = LabelingConfig {
            early_termination: early,
            ..LabelingConfig::default().with_threads(4)
        };
        group.bench_with_input(
            BenchmarkId::new("plant_early_termination", early),
            &config,
            |b, cfg| b.iter(|| black_box(plant_labeling(&social.graph, &social.ranking, cfg))),
        );
    }

    // Rank queries (LCC) vs none (SparaPLL-style construction + cleaning cost
    // folded in by the LCC timing itself).
    let config = LabelingConfig::default().with_threads(4);
    group.bench_function("construction_with_rank_queries", |b| {
        b.iter(|| black_box(lcc(&social.graph, &social.ranking, &config)))
    });
    group.bench_function("construction_without_rank_queries", |b| {
        b.iter(|| black_box(spara_pll(&social.graph, &social.ranking, &config)))
    });

    // Common Label Table in the distributed hybrid.
    for eta in [0u32, 16] {
        let dconfig = DistributedConfig::default().with_common_hubs(eta);
        group.bench_with_input(
            BenchmarkId::new("hybrid_common_hubs", eta),
            &dconfig,
            |b, cfg| {
                b.iter(|| {
                    let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(4));
                    black_box(distributed_hybrid(
                        &social.graph,
                        &social.ranking,
                        &cluster,
                        cfg,
                    ))
                })
            },
        );
    }

    // Distributed PLaNT as the communication-free reference point.
    group.bench_function("distributed_plant_4_nodes", |b| {
        b.iter(|| {
            let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(4));
            black_box(distributed_plant(
                &social.graph,
                &social.ranking,
                &cluster,
                &DistributedConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = construction;
    config = Criterion::default().sample_size(10);
    targets = construction_benchmarks, ablation_benchmarks
}
criterion_main!(construction);
