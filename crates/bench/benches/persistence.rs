//! Micro-benchmarks for the persistence subsystem: the contiguous
//! [`FlatIndex`] query path against the pointer-per-vertex
//! [`HubLabelIndex`] it was flattened from, the cost of a full
//! serialize → deserialize round trip of the `.chl` byte format, and the
//! cold-serve comparison the zero-copy refactor exists for — time from
//! "bytes/file in hand" to "first query answered" for the copying v1/v2
//! loaders, the borrowed view and the mmap open, plus steady-state query
//! parity between the owned and borrowed kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chl_core::flat::FlatIndex;
use chl_core::mapped::MmapIndex;
use chl_core::persist::{self, AlignedBytes};
use chl_core::pll::sequential_pll;
use chl_datasets::{load, DatasetId, Scale};

fn flat_vs_pointer_queries(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let n = ds.graph.num_vertices() as u32;

    // Identical pseudo-random access pattern for both layouts, so the only
    // difference measured is pointer-chasing vs contiguous slices.
    let mut group = c.benchmark_group("flat_vs_pointer");
    group.bench_function("pointer_hub_label_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let u = i % n;
            let v = (i >> 8) % n;
            black_box(index.query(u, v))
        })
    });
    group.bench_function("flat_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let u = i % n;
            let v = (i >> 8) % n;
            black_box(flat.query(u, v))
        })
    });
    group.finish();
}

fn persistence_round_trip(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let bytes = flat.to_bytes();

    let mut group = c.benchmark_group("persistence");
    group.bench_function("flatten_from_pointer_index", |b| {
        b.iter(|| black_box(FlatIndex::from_index(&index)))
    });
    group.bench_function("serialize_to_bytes", |b| {
        b.iter(|| black_box(flat.to_bytes()))
    });
    group.bench_function("deserialize_and_validate", |b| {
        b.iter(|| black_box(FlatIndex::from_bytes(&bytes).expect("clean bytes")))
    });
    group.bench_function("full_round_trip", |b| {
        b.iter_batched(
            || FlatIndex::from_index(&index),
            |f| FlatIndex::from_bytes(&f.to_bytes()).expect("clean bytes"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Time-to-first-query per serving path: what a process restart costs. The
/// copying loaders pay deserialization + validation + allocation; the
/// zero-copy view pays validation only; the mmap open additionally pays the
/// syscall but no read of the label payload.
fn cold_serve(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let n = ds.graph.num_vertices() as u32;
    let (u, v) = (0u32, n - 1);

    let v1_bytes = persist::to_bytes_v1(&flat);
    let v2_bytes = flat.to_bytes();
    let aligned = AlignedBytes::from_slice(&v2_bytes);
    let path =
        std::env::temp_dir().join(format!("chl-bench-cold-serve-{}.chl", std::process::id()));
    std::fs::write(&path, &v2_bytes).expect("bench scratch file");

    let mut group = c.benchmark_group("cold_serve");
    group.bench_function("copy_load_v1_first_query", |b| {
        b.iter(|| {
            let idx = FlatIndex::from_bytes(&v1_bytes).expect("clean v1 bytes");
            black_box(idx.query(u, v))
        })
    });
    group.bench_function("copy_load_v2_first_query", |b| {
        b.iter(|| {
            let idx = FlatIndex::from_bytes(&v2_bytes).expect("clean v2 bytes");
            black_box(idx.query(u, v))
        })
    });
    group.bench_function("zero_copy_view_first_query", |b| {
        b.iter(|| {
            let view = persist::view_bytes(&aligned).expect("clean v2 bytes");
            black_box(view.query(u, v))
        })
    });
    group.bench_function("mmap_open_first_query", |b| {
        b.iter(|| {
            let idx = MmapIndex::open(&path).expect("clean v2 file");
            black_box(idx.view().query(u, v))
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// Steady-state query cost of the owned index against a borrowed view over
/// the serialized bytes — the two must be indistinguishable, since the owned
/// path forwards through the same kernel.
fn owned_vs_view_steady_state(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let aligned = AlignedBytes::from_slice(&flat.to_bytes());
    let view = persist::view_bytes(&aligned).expect("clean v2 bytes");
    let n = ds.graph.num_vertices() as u32;

    let mut group = c.benchmark_group("owned_vs_view");
    group.bench_function("owned_flat_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            black_box(flat.query(i % n, (i >> 8) % n))
        })
    });
    group.bench_function("borrowed_view", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            black_box(view.query(i % n, (i >> 8) % n))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    flat_vs_pointer_queries,
    persistence_round_trip,
    cold_serve,
    owned_vs_view_steady_state
);
criterion_main!(benches);
