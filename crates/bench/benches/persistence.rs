//! Micro-benchmarks for the persistence subsystem: the contiguous
//! [`FlatIndex`] query path against the pointer-per-vertex
//! [`HubLabelIndex`] it was flattened from, the cost of a full
//! serialize → deserialize round trip of the `.chl` byte format, and the
//! cold-serve comparison the zero-copy refactor exists for — time from
//! "bytes/file in hand" to "first query answered" for the copying v1/v2
//! loaders, the borrowed view and the mmap open, plus steady-state query
//! parity between the owned and borrowed kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chl_core::flat::FlatIndex;
use chl_core::mapped::MmapIndex;
use chl_core::persist::{self, AlignedBytes, SaveOptions};
use chl_core::pll::sequential_pll;
use chl_datasets::{load, DatasetId, Scale};

fn flat_vs_pointer_queries(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let n = ds.graph.num_vertices() as u32;

    // Identical pseudo-random access pattern for both layouts, so the only
    // difference measured is pointer-chasing vs contiguous slices.
    let mut group = c.benchmark_group("flat_vs_pointer");
    group.bench_function("pointer_hub_label_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let u = i % n;
            let v = (i >> 8) % n;
            black_box(index.query(u, v))
        })
    });
    group.bench_function("flat_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let u = i % n;
            let v = (i >> 8) % n;
            black_box(flat.query(u, v))
        })
    });
    group.finish();
}

fn persistence_round_trip(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let bytes = flat.to_bytes();

    let mut group = c.benchmark_group("persistence");
    group.bench_function("flatten_from_pointer_index", |b| {
        b.iter(|| black_box(FlatIndex::from_index(&index)))
    });
    group.bench_function("serialize_to_bytes", |b| {
        b.iter(|| black_box(flat.to_bytes()))
    });
    group.bench_function("deserialize_and_validate", |b| {
        b.iter(|| black_box(FlatIndex::from_bytes(&bytes).expect("clean bytes")))
    });
    group.bench_function("full_round_trip", |b| {
        b.iter_batched(
            || FlatIndex::from_index(&index),
            |f| FlatIndex::from_bytes(&f.to_bytes()).expect("clean bytes"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Time-to-first-query per serving path: what a process restart costs. The
/// copying loaders pay deserialization + validation + allocation; the
/// zero-copy view pays validation only; the mmap open additionally pays the
/// syscall but no read of the label payload.
fn cold_serve(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let n = ds.graph.num_vertices() as u32;
    let (u, v) = (0u32, n - 1);

    let v1_bytes = persist::to_bytes_v1(&flat);
    let v2_bytes = flat.to_bytes();
    let aligned = AlignedBytes::from_slice(&v2_bytes);
    let path =
        std::env::temp_dir().join(format!("chl-bench-cold-serve-{}.chl", std::process::id()));
    std::fs::write(&path, &v2_bytes).expect("bench scratch file");

    let mut group = c.benchmark_group("cold_serve");
    group.bench_function("copy_load_v1_first_query", |b| {
        b.iter(|| {
            let idx = FlatIndex::from_bytes(&v1_bytes).expect("clean v1 bytes");
            black_box(idx.query(u, v))
        })
    });
    group.bench_function("copy_load_v2_first_query", |b| {
        b.iter(|| {
            let idx = FlatIndex::from_bytes(&v2_bytes).expect("clean v2 bytes");
            black_box(idx.query(u, v))
        })
    });
    group.bench_function("zero_copy_view_first_query", |b| {
        b.iter(|| {
            let view = persist::view_bytes(&aligned).expect("clean v2 bytes");
            black_box(view.query(u, v))
        })
    });
    group.bench_function("mmap_open_first_query", |b| {
        b.iter(|| {
            let idx = MmapIndex::open(&path).expect("clean v2 file");
            black_box(idx.view().query(u, v))
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// Steady-state query cost of the owned index against a borrowed view over
/// the serialized bytes — the two must be indistinguishable, since the owned
/// path forwards through the same kernel.
fn owned_vs_view_steady_state(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let aligned = AlignedBytes::from_slice(&flat.to_bytes());
    let view = persist::view_bytes(&aligned).expect("clean v2 bytes");
    let n = ds.graph.num_vertices() as u32;

    let mut group = c.benchmark_group("owned_vs_view");
    group.bench_function("owned_flat_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            black_box(flat.query(i % n, (i >> 8) % n))
        })
    });
    group.bench_function("borrowed_view", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            black_box(view.query(i % n, (i >> 8) % n))
        })
    });
    group.finish();
}

/// Flat vs delta+varint-compressed entries: encoded size (printed once, with
/// the entries-section ratio the format exists for), time-to-first-query on
/// both the copying loader and the zero-copy/streamed view path, and
/// steady-state query latency of the streaming decoder against the flat
/// kernel — the size-vs-latency trade-off `chl build --compress` buys into.
fn compression(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let n = ds.graph.num_vertices() as u32;
    let (u, v) = (0u32, n - 1);

    let flat_bytes = flat.to_bytes();
    let compressed_bytes = persist::to_bytes_with(&flat, &SaveOptions::compressed());
    let flat_aligned = AlignedBytes::from_slice(&flat_bytes);
    let compressed_aligned = AlignedBytes::from_slice(&compressed_bytes);

    // Size is a property, not a timing: report it once alongside the group.
    let flat_header = persist::parse_header(&flat_bytes).expect("clean flat header");
    let comp_header = persist::parse_header(&compressed_bytes).expect("clean compressed header");
    let flat_entries = flat_header.entries_section_len(flat_bytes.len() as u64);
    let comp_entries = comp_header.entries_section_len(compressed_bytes.len() as u64);
    eprintln!(
        "compression/size: file {} -> {} bytes, entries section {} -> {} bytes ({:.2}x)",
        flat_bytes.len(),
        compressed_bytes.len(),
        flat_entries,
        comp_entries,
        flat_entries as f64 / comp_entries.max(1) as f64
    );

    let mut group = c.benchmark_group("compression");
    group.bench_function("encode_flat", |b| b.iter(|| black_box(flat.to_bytes())));
    group.bench_function("encode_compressed", |b| {
        b.iter(|| black_box(persist::to_bytes_with(&flat, &SaveOptions::compressed())))
    });
    // Cold serve: the copying loader pays the full decode on compressed
    // files; the view path pays validation only either way (the streamed
    // decoder defers entry decoding to query time).
    group.bench_function("copy_load_flat_first_query", |b| {
        b.iter(|| {
            let idx = FlatIndex::from_bytes(&flat_bytes).expect("clean flat bytes");
            black_box(idx.query(u, v))
        })
    });
    group.bench_function("copy_load_compressed_first_query", |b| {
        b.iter(|| {
            let idx = FlatIndex::from_bytes(&compressed_bytes).expect("clean compressed bytes");
            black_box(idx.query(u, v))
        })
    });
    group.bench_function("view_flat_first_query", |b| {
        b.iter(|| {
            let view = persist::open_view(&flat_aligned).expect("clean flat bytes");
            black_box(view.query(u, v))
        })
    });
    group.bench_function("view_compressed_first_query", |b| {
        b.iter(|| {
            let view = persist::open_view(&compressed_aligned).expect("clean compressed bytes");
            black_box(view.query(u, v))
        })
    });
    // Steady state: what each query pays for the smaller file.
    let flat_view = persist::open_view(&flat_aligned).expect("clean flat bytes");
    let compressed_view = persist::open_view(&compressed_aligned).expect("clean compressed bytes");
    group.bench_function("steady_state_flat_view", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            black_box(flat_view.query(i % n, (i >> 8) % n))
        })
    });
    group.bench_function("steady_state_compressed_stream", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            black_box(compressed_view.query(i % n, (i >> 8) % n))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    flat_vs_pointer_queries,
    persistence_round_trip,
    cold_serve,
    owned_vs_view_steady_state,
    compression
);
criterion_main!(benches);
