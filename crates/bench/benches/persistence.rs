//! Micro-benchmarks for the persistence subsystem: the contiguous
//! [`FlatIndex`] query path against the pointer-per-vertex
//! [`HubLabelIndex`] it was flattened from, and the cost of a full
//! serialize → deserialize round trip of the `.chl` byte format.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chl_core::flat::FlatIndex;
use chl_core::pll::sequential_pll;
use chl_datasets::{load, DatasetId, Scale};

fn flat_vs_pointer_queries(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let n = ds.graph.num_vertices() as u32;

    // Identical pseudo-random access pattern for both layouts, so the only
    // difference measured is pointer-chasing vs contiguous slices.
    let mut group = c.benchmark_group("flat_vs_pointer");
    group.bench_function("pointer_hub_label_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let u = i % n;
            let v = (i >> 8) % n;
            black_box(index.query(u, v))
        })
    });
    group.bench_function("flat_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let u = i % n;
            let v = (i >> 8) % n;
            black_box(flat.query(u, v))
        })
    });
    group.finish();
}

fn persistence_round_trip(c: &mut Criterion) {
    let ds = load(DatasetId::SKIT, Scale::Tiny, 42);
    let index = sequential_pll(&ds.graph, &ds.ranking).index;
    let flat = FlatIndex::from_index(&index);
    let bytes = flat.to_bytes();

    let mut group = c.benchmark_group("persistence");
    group.bench_function("flatten_from_pointer_index", |b| {
        b.iter(|| black_box(FlatIndex::from_index(&index)))
    });
    group.bench_function("serialize_to_bytes", |b| {
        b.iter(|| black_box(flat.to_bytes()))
    });
    group.bench_function("deserialize_and_validate", |b| {
        b.iter(|| black_box(FlatIndex::from_bytes(&bytes).expect("clean bytes")))
    });
    group.bench_function("full_round_trip", |b| {
        b.iter_batched(
            || FlatIndex::from_index(&index),
            |f| FlatIndex::from_bytes(&f.to_bytes()).expect("clean bytes"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, flat_vs_pointer_queries, persistence_round_trip);
criterion_main!(benches);
