//! End-to-end scatter-gather test harness: a real TCP cluster — three
//! in-process shard servers (each loading one `.chl` v3 shard file) behind
//! a [`Router`] — asserted byte-identical to one unsharded oracle server
//! over the same wire protocol. Covers exact distances over every vertex
//! pair, pipelined frames spanning shards, typed out-of-range and
//! NOT_THIS_SHARD errors, reload fan-out, malformed and oversized frames,
//! and the degradation contract when a backend dies mid-serve: typed
//! SHARD_UNAVAILABLE frames, never a hang or a panic.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use chl_core::flat::FlatIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::paths::attach_parents;
use chl_core::persist::SaveOptions;
use chl_core::pll::sequential_pll;
use chl_graph::generators::{grid_network, GridOptions};
use chl_query::QdolShardMap;
use chl_ranking::degree_ranking;
use chl_serve::protocol::OP_QUERY;
use chl_serve::{
    Client, ClientError, ClusterView, ErrorCode, Router, RouterOptions, ServeOptions, Server,
    SharedIndex, SpawnedRouter, SpawnedServer,
};

/// Builds a small real labeling (6x6 road-like grid, 36 vertices) with
/// path data attached, so the cluster serves PATH frames too; shard files
/// inherit the parents through `restrict_to_shard`.
fn build_index(seed: u64) -> FlatIndex {
    let opts = GridOptions {
        rows: 6,
        cols: 6,
        ..GridOptions::default()
    };
    let graph = grid_network(&opts, seed);
    let ranking = degree_ranking(&graph);
    let flat = FlatIndex::from_index(&sequential_pll(&graph, &ranking).index);
    attach_parents(&graph, flat).expect("corpus graph matches its index")
}

fn temp_path(tag: &str, part: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "chl-serve-router-{}-{:?}-{tag}-{part}.chl",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Three shard servers + the unsharded oracle + a router over all of it.
struct Cluster {
    router: SpawnedRouter,
    backends: Vec<SpawnedServer>,
    oracle: SpawnedServer,
    flat: FlatIndex,
    map: QdolShardMap,
    paths: Vec<PathBuf>,
}

const SHARDS: usize = 3;

fn start_cluster(tag: &str, router_opts: RouterOptions) -> Cluster {
    let flat = build_index(7);
    let map = QdolShardMap::new(SHARDS, flat.num_vertices());
    let mut paths = Vec::new();
    let mut backends = Vec::new();
    for shard_id in 0..SHARDS {
        let path = temp_path(tag, &format!("shard-{shard_id}"));
        let shard = flat
            .restrict_to_shard(map.spec(shard_id))
            .expect("derive shard");
        shard
            .save_with(&path, &SaveOptions::default())
            .expect("save shard");
        let shared = Arc::new(SharedIndex::open(&path, false).expect("open shard"));
        let server =
            Server::bind("127.0.0.1:0", shared, ServeOptions::default()).expect("bind shard");
        backends.push(server.spawn().expect("spawn shard server"));
        paths.push(path);
    }

    let oracle_path = temp_path(tag, "oracle");
    flat.save(&oracle_path).expect("save oracle index");
    let shared = Arc::new(SharedIndex::open(&oracle_path, false).expect("open oracle"));
    let oracle = Server::bind("127.0.0.1:0", shared, ServeOptions::default())
        .expect("bind oracle")
        .spawn()
        .expect("spawn oracle");
    paths.push(oracle_path);

    // Hand the addresses over in REVERSE order: discovery must identify each
    // backend's shard over INFO, not trust the argument order.
    let addrs: Vec<String> = backends
        .iter()
        .rev()
        .map(|b| b.handle().addr().to_string())
        .collect();
    let cluster =
        ClusterView::discover(&addrs, Duration::from_secs(10)).expect("cluster discovery");
    let router = Router::bind("127.0.0.1:0", cluster, router_opts)
        .expect("bind router")
        .spawn()
        .expect("spawn router");

    Cluster {
        router,
        backends,
        oracle,
        flat,
        map,
        paths,
    }
}

impl Cluster {
    fn teardown(self) {
        self.router.shutdown().expect("router shutdown");
        for backend in self.backends {
            backend.shutdown().expect("backend shutdown");
        }
        self.oracle.shutdown().expect("oracle shutdown");
        for path in &self.paths {
            std::fs::remove_file(path).ok();
        }
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client
}

#[test]
fn routed_cluster_answers_every_pair_byte_identically_to_the_oracle() {
    let cluster = start_cluster("differential", RouterOptions::default());
    let mut routed = connect(cluster.router.handle().addr());
    let mut oracle = connect(cluster.oracle.handle().addr());
    let n = cluster.flat.num_vertices() as u32;

    // Every ordered pair — including self queries — in one batch per source
    // vertex, so batches routinely span shards and exercise the fan-out +
    // in-order merge path as well as the single-shard forward path.
    for u in 0..n {
        let pairs: Vec<(u32, u32)> = (0..n).map(|v| (u, v)).collect();
        let via_router = routed.query_batch(&pairs).expect("routed batch");
        let via_oracle = oracle.query_batch(&pairs).expect("oracle batch");
        assert_eq!(via_router, via_oracle, "batch for source {u} diverged");
        let in_memory: Vec<u64> = pairs
            .iter()
            .map(|&(a, b)| cluster.flat.query(a, b))
            .collect();
        assert_eq!(via_router, in_memory, "batch for source {u} vs in-memory");
    }

    // Pipelined frames of varying shapes, sent in one write: responses come
    // back in request order from both tiers.
    let frames: Vec<Vec<(u32, u32)>> = (0..8u32)
        .map(|f| {
            (0..=f)
                .map(|i| ((f * 7 + i) % n, (i * 11 + 3) % n))
                .collect()
        })
        .collect();
    let routed_frames = routed.pipeline(&frames).expect("routed pipeline");
    let oracle_frames = oracle.pipeline(&frames).expect("oracle pipeline");
    assert_eq!(routed_frames, oracle_frames);

    // An empty QUERY frame answers an empty DISTANCES frame on both tiers.
    let empty = routed.pipeline(&[vec![]]).expect("empty frame");
    assert_eq!(empty, oracle.pipeline(&[vec![]]).expect("empty frame"));

    // Out-of-range ids: the router answers locally, but byte-identically to
    // the oracle — same code, same offending-id detail, same message text.
    for &(u, v) in &[(n + 7, 0), (0, n + 7), (n + 1, n + 1), (n, n)] {
        let from_router = routed.query(u, v).expect_err("routed out-of-range");
        let from_oracle = oracle.query(u, v).expect_err("oracle out-of-range");
        match (&from_router, &from_oracle) {
            (
                ClientError::Server {
                    code: rc,
                    detail: rd,
                    message: rm,
                },
                ClientError::Server {
                    code: oc,
                    detail: od,
                    message: om,
                },
            ) => {
                assert_eq!(rc, oc);
                assert_eq!(*rc, ErrorCode::VertexOutOfRange);
                assert_eq!(rd, od);
                assert_eq!(rm, om, "error text diverged for ({u}, {v})");
            }
            other => panic!("expected server errors, got {other:?}"),
        }
    }

    // Aggregated INFO looks like one unsharded server: global vertex count,
    // no shard identity, generation 0.
    let info = routed.info().expect("routed info");
    assert_eq!(info.num_vertices, cluster.flat.num_vertices() as u64);
    assert_eq!(info.shard, None);
    assert_eq!(info.generation, 0);
    // Shard files duplicate labels across the QDOL overlap, so the summed
    // cluster footprint is at least the oracle's label count.
    assert!(info.total_labels >= cluster.flat.total_labels() as u64);

    drop(routed);
    drop(oracle);
    let stats = cluster.router.handle().stats();
    assert!(
        stats.forwarded_frames > 0,
        "no whole-frame forwards: {stats:?}"
    );
    assert!(stats.fanout_frames > 0, "no fan-out merges: {stats:?}");
    assert_eq!(stats.shard_errors, 0);
    cluster.teardown();
}

#[test]
fn routed_path_and_matrix_frames_differential_against_the_oracle() {
    let cluster = start_cluster("paths", RouterOptions::default());
    let mut routed = connect(cluster.router.handle().addr());
    let mut oracle = connect(cluster.oracle.handle().addr());
    let n = cluster.flat.num_vertices() as u32;

    // MATRIX fan-out: blocks that span shards are split per owning shard
    // and merged back byte-identical to the unsharded server — the whole
    // graph as one block, asymmetric shapes, duplicate ids, single cells.
    let shapes: Vec<(Vec<u32>, Vec<u32>)> = vec![
        ((0..n).collect(), (0..n).collect()),
        (vec![0, n - 1, 17], vec![3, 3, 9, 22]),
        (vec![5], (0..n).step_by(3).collect()),
        (vec![n - 1], vec![0]),
    ];
    for (sources, targets) in &shapes {
        let via_router = routed.matrix(sources, targets).expect("routed matrix");
        let via_oracle = oracle.matrix(sources, targets).expect("oracle matrix");
        assert_eq!(via_router, via_oracle, "{sources:?} x {targets:?}");
        assert_eq!(via_router, cluster.flat.matrix(sources, targets));
    }
    // Empty sides flow as data on both tiers.
    assert_eq!(routed.matrix(&[], &[3]).expect("empty"), Vec::<u64>::new());
    assert_eq!(oracle.matrix(&[], &[3]).expect("empty"), Vec::<u64>::new());

    // PATH over every ordered pair. A PATH frame forwards whole to the
    // shard owning the endpoint pair; QDOL guarantees the endpoints but
    // not every interior chain vertex, so the contract is byte-identical
    // walks whenever the shard can answer, and the typed NOT_THIS_SHARD
    // error (naming a genuinely foreign vertex, with the shard prefix)
    // when the chain escapes — never a wrong or partial walk.
    let mut answered = 0usize;
    let mut refused = 0usize;
    for u in 0..n {
        for v in 0..n {
            let expect = oracle.path(u, v).expect("oracle path");
            match routed.path(u, v) {
                Ok(walk) => {
                    assert_eq!(walk, expect, "({u}, {v})");
                    answered += 1;
                }
                Err(ClientError::Server {
                    code,
                    detail,
                    message,
                }) => {
                    assert_eq!(code, ErrorCode::NotThisShard, "({u}, {v}): {message}");
                    let shard = cluster.map.shard_for_query(u, v);
                    assert!(
                        !cluster.map.spec(shard).owns(detail as u32),
                        "({u}, {v}): shard {shard} refused over vertex {detail} it owns"
                    );
                    assert!(
                        message.starts_with(&format!("shard {shard}:")),
                        "({u}, {v}): relayed error must name the shard: {message}"
                    );
                    refused += 1;
                }
                other => panic!("({u}, {v}): expected walk or typed refusal, got {other:?}"),
            }
        }
    }
    // The diagonal always answers ([u] needs no chain), so most pairs do.
    assert!(
        answered >= n as usize,
        "only {answered} pairs answered, {refused} refused"
    );

    // Out-of-range ids answer byte-identical typed errors on both tiers,
    // for PATH and MATRIX alike.
    let routed_err = routed.path(n + 2, 0).expect_err("routed oor path");
    let oracle_err = oracle.path(n + 2, 0).expect_err("oracle oor path");
    match (&routed_err, &oracle_err) {
        (
            ClientError::Server {
                code: rc,
                detail: rd,
                message: rm,
            },
            ClientError::Server {
                code: oc,
                detail: od,
                message: om,
            },
        ) => {
            assert_eq!((rc, rd, rm), (oc, od, om));
            assert_eq!(*rc, ErrorCode::VertexOutOfRange);
        }
        other => panic!("expected server errors, got {other:?}"),
    }
    let routed_err = routed
        .matrix(&[0], &[n + 4])
        .expect_err("routed oor matrix");
    let oracle_err = oracle
        .matrix(&[0], &[n + 4])
        .expect_err("oracle oor matrix");
    match (&routed_err, &oracle_err) {
        (
            ClientError::Server {
                code: rc,
                detail: rd,
                message: rm,
            },
            ClientError::Server {
                code: oc,
                detail: od,
                message: om,
            },
        ) => {
            assert_eq!((rc, rd, rm), (oc, od, om));
            assert_eq!(*rc, ErrorCode::VertexOutOfRange);
        }
        other => panic!("expected server errors, got {other:?}"),
    }

    drop(routed);
    drop(oracle);
    let stats = cluster.router.handle().stats();
    assert!(stats.fanout_frames > 0, "no matrix fan-out: {stats:?}");
    // Relayed typed refusals count in shard_errors (same bookkeeping as
    // QUERY); nothing else may have failed.
    assert_eq!(stats.shard_errors, refused as u64, "only refusals relayed");
    cluster.teardown();
}

#[test]
fn a_shard_served_directly_answers_not_this_shard_for_foreign_vertices() {
    let cluster = start_cluster("foreign", RouterOptions::default());
    let spec0 = cluster.map.spec(0);
    let n = cluster.flat.num_vertices() as u32;
    let owned = *spec0.owned.first().expect("shard 0 owns vertices");
    let foreign = (0..n)
        .find(|&v| !spec0.owns(v))
        .expect("shard 0 does not own everything");

    let mut direct = connect(cluster.backends[0].handle().addr());
    // Both endpoints owned: the shard answers the exact global distance.
    let both_owned = spec0.owned.get(1).copied().unwrap_or(owned);
    assert_eq!(
        direct.query(owned, both_owned).expect("owned query"),
        cluster.flat.query(owned, both_owned)
    );
    // A foreign endpoint gets the typed NOT_THIS_SHARD error naming it —
    // never a silently wrong INFINITY.
    match direct.query(owned, foreign) {
        Err(ClientError::Server { code, detail, .. }) => {
            assert_eq!(code, ErrorCode::NotThisShard);
            assert_eq!(detail, foreign as u64);
        }
        other => panic!("expected NOT_THIS_SHARD, got {other:?}"),
    }
    // Range still outranks ownership: an out-of-range id on a shard answers
    // the same error a whole-index server would.
    match direct.query(owned, n + 5) {
        Err(ClientError::Server { code, detail, .. }) => {
            assert_eq!(code, ErrorCode::VertexOutOfRange);
            assert_eq!(detail, (n + 5) as u64);
        }
        other => panic!("expected out-of-range, got {other:?}"),
    }
    // The shard's own INFO carries its cluster identity.
    let info = direct.info().expect("shard info");
    assert_eq!(info.shard, Some((0, SHARDS as u32)));
    assert_eq!(info.num_vertices, cluster.flat.num_vertices() as u64);

    // The router never surfaces NOT_THIS_SHARD: the same foreign pair routed
    // through the front door answers the exact distance.
    let mut routed = connect(cluster.router.handle().addr());
    assert_eq!(
        routed.query(owned, foreign).expect("routed query"),
        cluster.flat.query(owned, foreign)
    );

    drop(direct);
    drop(routed);
    cluster.teardown();
}

#[test]
fn reload_through_the_router_fans_out_to_every_backend() {
    let cluster = start_cluster("reload", RouterOptions::default());
    let mut routed = connect(cluster.router.handle().addr());

    let generation = routed.reload().expect("routed reload");
    assert_eq!(generation, 1, "every backend should be at generation 1");
    let info = routed.info().expect("info after reload");
    assert_eq!(info.generation, 1);

    // Distances are unchanged after the hot swap.
    let n = cluster.flat.num_vertices() as u32;
    for (u, v) in [(0, n - 1), (3, 17), (5, 5)] {
        assert_eq!(
            routed.query(u, v).expect("query after reload"),
            cluster.flat.query(u, v)
        );
    }

    drop(routed);
    let stats = cluster.router.handle().stats();
    assert_eq!(stats.reloads, 1);
    cluster.teardown();
}

#[test]
fn malformed_and_oversized_frames_get_typed_answers_from_the_router() {
    let opts = RouterOptions {
        max_frame: 64,
        ..RouterOptions::default()
    };
    let cluster = start_cluster("malformed", opts);
    let mut client = connect(cluster.router.handle().addr());

    // Unknown opcode.
    client.send_raw(&[1, 0, 0, 0, 0x7f]).expect("send");
    match client.read_response().expect("response") {
        chl_serve::Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("expected error frame, got {other:?}"),
    }

    // QUERY whose count disagrees with its payload length.
    let mut bad = Vec::new();
    bad.extend_from_slice(&13u32.to_le_bytes());
    bad.push(OP_QUERY);
    bad.extend_from_slice(&2u32.to_le_bytes());
    bad.extend_from_slice(&[0u8; 8]);
    client.send_raw(&bad).expect("send");
    match client.read_response().expect("response") {
        chl_serve::Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // The same connection still routes exact answers afterwards.
    assert_eq!(client.query(0, 5).expect("query"), cluster.flat.query(0, 5));

    // Oversized: typed error, then the router closes the stream.
    client.send_raw(&1_000_000u32.to_le_bytes()).expect("send");
    match client.read_response().expect("error before close") {
        chl_serve::Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected error frame, got {other:?}"),
    }
    match client.read_response() {
        Err(ClientError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected EOF after oversized frame, got {other:?}"),
    }

    // A fresh connection is unaffected.
    let mut fresh = connect(cluster.router.handle().addr());
    assert!(fresh.query(0, 1).is_ok());
    drop(fresh);
    drop(client);
    cluster.teardown();
}

#[test]
fn a_dead_backend_degrades_to_typed_shard_unavailable_not_a_hang() {
    let cluster = start_cluster("shard-loss", RouterOptions::default());
    let n = cluster.flat.num_vertices() as u32;

    // Pick one pair per shard so we can assert both the dead and the
    // surviving placements.
    let pair_on = |shard: usize| -> (u32, u32) {
        for u in 0..n {
            for v in 0..n {
                if cluster.map.shard_for_query(u, v) == shard {
                    return (u, v);
                }
            }
        }
        panic!("no pair placed on shard {shard}");
    };
    let dead_shard = 2;
    let (du, dv) = pair_on(dead_shard);
    let survivors: Vec<(usize, (u32, u32))> = (0..SHARDS)
        .filter(|&s| s != dead_shard)
        .map(|s| (s, pair_on(s)))
        .collect();

    // Warm the router's backend connections, then kill shard 2's process.
    let mut routed = connect(cluster.router.handle().addr());
    assert_eq!(
        routed.query(du, dv).expect("query before loss"),
        cluster.flat.query(du, dv)
    );
    let mut backends = cluster.backends;
    let victim = backends.remove(dead_shard);
    victim.shutdown().expect("kill shard server");

    // The dead placement answers a typed SHARD_UNAVAILABLE frame naming the
    // shard — on the warm connection (whose pooled backend conn just died)
    // and on a fresh one alike.
    let mut fresh = connect(cluster.router.handle().addr());
    for client in [&mut routed, &mut fresh] {
        match client.query(du, dv) {
            Err(ClientError::Server { code, detail, .. }) => {
                assert_eq!(code, ErrorCode::ShardUnavailable);
                assert_eq!(detail, dead_shard as u64);
            }
            other => panic!("expected SHARD_UNAVAILABLE, got {other:?}"),
        }
        // Surviving shards keep answering exact distances on the very same
        // connection: the failure is per-frame, not per-connection.
        for &(_, (su, sv)) in &survivors {
            assert_eq!(
                client.query(su, sv).expect("survivor query"),
                cluster.flat.query(su, sv)
            );
        }
        // A MATRIX block with any cell on the dead shard fails whole — a
        // partial matrix has no wire representation — while a block
        // confined to a survivor still answers exactly.
        match client.matrix(&[du], &[dv]) {
            Err(ClientError::Server { code, detail, .. }) => {
                assert_eq!(code, ErrorCode::ShardUnavailable);
                assert_eq!(detail, dead_shard as u64);
            }
            other => panic!("expected SHARD_UNAVAILABLE matrix, got {other:?}"),
        }
        let (su, sv) = survivors.first().expect("a survivor").1;
        assert_eq!(
            client.matrix(&[su], &[sv]).expect("survivor matrix"),
            cluster.flat.matrix(&[su], &[sv])
        );
    }

    drop(routed);
    drop(fresh);
    let stats = cluster.router.handle().stats();
    assert!(stats.shard_errors > 0, "no shard errors counted: {stats:?}");

    // Teardown without the victim (already shut down).
    cluster.router.shutdown().expect("router shutdown");
    for backend in backends {
        backend.shutdown().expect("backend shutdown");
    }
    cluster.oracle.shutdown().expect("oracle shutdown");
    for path in &cluster.paths {
        std::fs::remove_file(path).ok();
    }
}
