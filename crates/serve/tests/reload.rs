//! Graceful-reload tests: a live server hot-swaps its index file while
//! concurrent clients hammer it. The contract under test, for both the
//! owned and mmapped backends:
//!
//! * zero connection errors during the swap — no client ever sees a reset,
//!   a wedged read, or a malformed frame;
//! * every answer is valid under the old index or the new one (each batch
//!   runs against one consistent generation snapshot);
//! * once the reload is acknowledged and in-flight work drains, fresh
//!   queries answer the new index;
//! * a corrupt replacement file is rejected with a typed `ReloadFailed`
//!   error and the old index keeps serving, untouched.
//!
//! Replacement files are written sibling-then-rename — the atomicity
//! contract `MmapIndex` documents — so the mapped generation keeps its old
//! inode while the path points at the new bytes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chl_core::flat::FlatIndex;
use chl_core::pll::sequential_pll;
use chl_graph::generators::{grid_network, GridOptions};
use chl_ranking::degree_ranking;
use chl_serve::protocol::ErrorCode;
use chl_serve::{Client, ClientError, ServeOptions, Server, SharedIndex, SpawnedServer};

/// Builds a 6x6 grid labeling; different seeds give different edge weights
/// (and therefore different distances) over the same vertex set.
fn build_index(seed: u64) -> FlatIndex {
    let opts = GridOptions {
        rows: 6,
        cols: 6,
        ..GridOptions::default()
    };
    let graph = grid_network(&opts, seed);
    let ranking = degree_ranking(&graph);
    FlatIndex::from_index(&sequential_pll(&graph, &ranking).index)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "chl-serve-reload-{}-{:?}-{tag}.chl",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Atomically replaces `path` with `bytes`: sibling temp file + rename, the
/// replacement discipline the mmap backend's docs require.
fn replace_file(path: &std::path::Path, bytes: &[u8]) {
    let tmp = path.with_extension("chl.tmp");
    std::fs::write(&tmp, bytes).expect("write replacement");
    std::fs::rename(&tmp, path).expect("rename replacement into place");
}

fn start_server(tag: &str, flat: &FlatIndex, mmap: bool) -> (SpawnedServer, std::path::PathBuf) {
    let path = temp_path(tag);
    flat.save(&path).expect("save index");
    let shared = Arc::new(SharedIndex::open(&path, mmap).expect("open index"));
    let server = Server::bind("127.0.0.1:0", shared, ServeOptions::default())
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server");
    (server, path)
}

fn connect(server: &SpawnedServer) -> Client {
    let mut client = Client::connect(server.handle().addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client
}

#[test]
fn hot_swap_under_concurrent_load_never_drops_a_connection() {
    for mmap in [false, true] {
        let old = build_index(11);
        let new = build_index(9203);
        let n = old.num_vertices() as u32;
        assert_eq!(new.num_vertices() as u32, n);
        // The swap must be observable: at least one pair answers differently.
        let probe: Vec<(u32, u32)> = (0..n).map(|u| (u, (u * 7 + 3) % n)).collect();
        assert!(
            probe
                .iter()
                .any(|&(u, v)| old.query(u, v) != new.query(u, v)),
            "seeds produced identical distance maps; the test would be vacuous"
        );

        let (server, path) = start_server(&format!("swap-m{}", mmap as u8), &old, mmap);
        let stop = Arc::new(AtomicBool::new(false));

        let worker_errors: Vec<String> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..3usize {
                let stop = Arc::clone(&stop);
                let server = &server;
                let (old, new, probe) = (&old, &new, &probe);
                handles.push(scope.spawn(move || -> Result<u64, String> {
                    let mut client = connect(server);
                    let mut answered = 0u64;
                    // Stagger the rotation per worker.
                    let mut at = worker;
                    // ORDERING: plain stop flag; no data is published through it.
                    while !stop.load(Ordering::Relaxed) {
                        let window: Vec<(u32, u32)> =
                            probe.iter().copied().cycle().skip(at).take(5).collect();
                        let served = client
                            .query_batch(&window)
                            .map_err(|e| format!("worker {worker}: {e}"))?;
                        for (&(u, v), &d) in window.iter().zip(&served) {
                            let (a, b) = (old.query(u, v), new.query(u, v));
                            if d != a && d != b {
                                return Err(format!(
                                    "worker {worker}: ({u}, {v}) answered {d}, \
                                     valid under neither old ({a}) nor new ({b})"
                                ));
                            }
                        }
                        answered += served.len() as u64;
                        at = (at + 1) % probe.len();
                    }
                    Ok(answered)
                }));
            }

            // Let the workers get going, then swap the file and reload —
            // twice, so the second swap also exercises a non-zero starting
            // generation.
            let mut control = connect(&server);
            let mut errors = Vec::new();
            for round in 1..=2u64 {
                std::thread::sleep(Duration::from_millis(30));
                replace_file(&path, &new.to_bytes());
                match control.reload() {
                    Ok(generation) => {
                        if generation != round {
                            errors.push(format!(
                                "reload round {round} answered generation {generation}"
                            ));
                        }
                    }
                    Err(e) => errors.push(format!("reload round {round} failed: {e}")),
                }
            }
            std::thread::sleep(Duration::from_millis(30));
            stop.store(true, Ordering::Relaxed);

            for handle in handles {
                match handle.join() {
                    Ok(Ok(answered)) => {
                        if answered == 0 {
                            errors.push("a worker never got a query through".into());
                        }
                    }
                    Ok(Err(e)) => errors.push(e),
                    Err(_) => errors.push("a worker thread panicked".into()),
                }
            }
            errors
        });
        assert!(worker_errors.is_empty(), "mmap={mmap}: {worker_errors:?}");

        // The drained server now answers the new index exactly.
        let mut client = connect(&server);
        for &(u, v) in &probe {
            assert_eq!(client.query(u, v).expect("query"), new.query(u, v));
        }
        let info = client.info().expect("info");
        assert_eq!(info.generation, 2);
        drop(client);

        let stats = server.shutdown().expect("shutdown");
        assert_eq!(stats.reloads, 2, "mmap={mmap}: {stats:?}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn corrupt_replacement_is_rejected_and_the_old_index_keeps_serving() {
    for mmap in [false, true] {
        let old = build_index(11);
        let n = old.num_vertices() as u32;
        let (server, path) = start_server(&format!("corrupt-m{}", mmap as u8), &old, mmap);
        let mut client = connect(&server);

        let baseline: Vec<u64> = (0..n)
            .map(|u| client.query(u, n - 1 - u).expect("query"))
            .collect();

        // Truncated garbage lands at the index path (atomically, so even the
        // attempt respects the rename contract).
        replace_file(&path, b"CHL file? not even close");
        match client.reload() {
            Err(ClientError::Server { code, message, .. }) => {
                assert_eq!(code, ErrorCode::ReloadFailed);
                assert!(!message.is_empty(), "reload error lost its loader message");
            }
            other => panic!("mmap={mmap}: expected ReloadFailed, got {other:?}"),
        }

        // Same generation, same answers: the swap never happened.
        assert_eq!(client.info().expect("info").generation, 0);
        for (u, expect) in baseline.iter().enumerate() {
            let u = u as u32;
            assert_eq!(client.query(u, n - 1 - u).expect("query"), *expect);
        }

        // A single-byte flip deep in an otherwise well-formed file is
        // equally rejected (validation is full, not header-only).
        let mut bytes = old.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        replace_file(&path, &bytes);
        assert!(matches!(
            client.reload(),
            Err(ClientError::Server {
                code: ErrorCode::ReloadFailed,
                ..
            })
        ));
        assert_eq!(client.info().expect("info").generation, 0);

        // Restoring a clean file makes the next reload succeed.
        replace_file(&path, &old.to_bytes());
        assert_eq!(client.reload().expect("clean reload"), 1);
        assert_eq!(client.query(0, n - 1).expect("query"), old.query(0, n - 1));

        drop(client);
        let stats = server.shutdown().expect("shutdown");
        assert_eq!(stats.reloads, 1, "only the clean swap counts: {stats:?}");
        std::fs::remove_file(&path).ok();
    }
}
