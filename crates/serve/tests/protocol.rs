//! Deterministic protocol test harness: an in-process server on an
//! ephemeral `127.0.0.1:0` port, driven by the minimal [`Client`], asserting
//! that everything served over the socket is byte-identical to what the
//! in-memory [`FlatIndex`] answers — and that every way a client can
//! misbehave (malformed frames, oversized frames, stale vertex ids, abrupt
//! disconnects) gets a typed answer or a clean connection close, never a
//! wedged or crashed server.

use std::sync::Arc;
use std::time::Duration;

use chl_core::flat::FlatIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::paths::{attach_parents, PathOracle};
use chl_core::pll::sequential_pll;
use chl_graph::generators::{grid_network, GridOptions};
use chl_graph::types::INFINITY;
use chl_ranking::degree_ranking;
use chl_serve::protocol::{
    encode_request, ErrorCode, Request, Response, OP_MATRIX, OP_PATH, OP_QUERY,
};
use chl_serve::{Client, ClientError, ServeOptions, Server, SharedIndex, SpawnedServer};

/// Builds a small real labeling (6x6 road-like grid, 36 vertices).
fn build_index(seed: u64) -> FlatIndex {
    let opts = GridOptions {
        rows: 6,
        cols: 6,
        ..GridOptions::default()
    };
    let graph = grid_network(&opts, seed);
    let ranking = degree_ranking(&graph);
    FlatIndex::from_index(&sequential_pll(&graph, &ranking).index)
}

/// Same corpus with per-entry parent records, so PATH frames can answer.
fn build_paths_index(seed: u64) -> FlatIndex {
    let opts = GridOptions {
        rows: 6,
        cols: 6,
        ..GridOptions::default()
    };
    let graph = grid_network(&opts, seed);
    let ranking = degree_ranking(&graph);
    let flat = FlatIndex::from_index(&sequential_pll(&graph, &ranking).index);
    attach_parents(&graph, flat).expect("corpus graph matches its index")
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "chl-serve-protocol-{}-{:?}-{tag}.chl",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Starts an in-process server over a fresh index file; returns the spawned
/// server, the in-memory reference index and the file path.
fn start_server(tag: &str, opts: ServeOptions) -> (SpawnedServer, FlatIndex, std::path::PathBuf) {
    let flat = build_index(7);
    let path = temp_path(tag);
    flat.save(&path).expect("save index");
    let shared = Arc::new(SharedIndex::open(&path, false).expect("open index"));
    let server = Server::bind("127.0.0.1:0", shared, opts).expect("bind ephemeral port");
    let spawned = server.spawn().expect("spawn server");
    (spawned, flat, path)
}

/// Like [`start_server`] but the saved file carries the path section.
fn start_paths_server(
    tag: &str,
    opts: ServeOptions,
) -> (SpawnedServer, FlatIndex, std::path::PathBuf) {
    let flat = build_paths_index(7);
    let path = temp_path(tag);
    flat.save(&path).expect("save index");
    let shared = Arc::new(SharedIndex::open(&path, false).expect("open index"));
    let server = Server::bind("127.0.0.1:0", shared, opts).expect("bind ephemeral port");
    let spawned = server.spawn().expect("spawn server");
    (spawned, flat, path)
}

fn connect(server: &SpawnedServer) -> Client {
    let mut client = Client::connect(server.handle().addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client
}

#[test]
fn single_query_matches_the_in_memory_index() {
    let (server, flat, path) = start_server("single", ServeOptions::default());
    let mut client = connect(&server);
    let n = flat.num_vertices() as u32;
    for (u, v) in [(0, n - 1), (3, 17), (5, 5), (n - 1, 0)] {
        assert_eq!(client.query(u, v).expect("query"), flat.query(u, v));
    }
    // Self-query and a disconnected-style pair still flow as data.
    assert_eq!(client.query(0, 0).expect("query"), 0);
    drop(client);
    let stats = server.shutdown().expect("shutdown");
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.error_frames, 0);
    std::fs::remove_file(path).ok();
}

#[test]
fn pipelined_frames_are_coalesced_into_one_batch_and_stay_byte_identical() {
    let (server, flat, path) = start_server("pipeline", ServeOptions::default());
    let mut client = connect(&server);
    let n = flat.num_vertices() as u32;

    // Six frames of varying size, sent in ONE write.
    let frames: Vec<Vec<(u32, u32)>> = (0..6u32)
        .map(|f| {
            (0..=f)
                .map(|i| ((f * 5 + i) % n, (i * 11 + 3) % n))
                .collect()
        })
        .collect();
    let responses = client.pipeline(&frames).expect("pipeline");
    assert_eq!(responses.len(), frames.len());
    for (frame, response) in frames.iter().zip(&responses) {
        let expected: Vec<u64> = frame.iter().map(|&(u, v)| flat.query(u, v)).collect();
        assert_eq!(response.as_ref().expect("distances"), &expected);
    }

    drop(client);
    let stats = server.shutdown().expect("shutdown");
    // The headline property of the serving tier: pipelined QUERY frames
    // were answered by fewer oracle batches than frames (coalescing), and
    // at least one batch covered several frames.
    assert_eq!(
        stats.queries,
        frames.iter().map(Vec::len).sum::<usize>() as u64
    );
    assert!(
        stats.max_coalesced >= 2,
        "no coalescing observed: {stats:?}"
    );
    assert!(
        stats.batch_calls < frames.len() as u64 + 1,
        "one oracle call per frame means batching never engaged: {stats:?}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn malformed_frames_answer_typed_errors_and_the_connection_survives() {
    let (server, flat, path) = start_server("malformed", ServeOptions::default());
    let mut client = connect(&server);

    // Unknown opcode.
    client.send_raw(&[1, 0, 0, 0, 0x7f]).expect("send");
    match client.read_response().expect("response") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("expected error frame, got {other:?}"),
    }

    // QUERY whose count disagrees with its payload length.
    let mut bad = Vec::new();
    bad.extend_from_slice(&13u32.to_le_bytes()); // 1 opcode + 4 count + 8 = one pair
    bad.push(OP_QUERY);
    bad.extend_from_slice(&2u32.to_le_bytes()); // ...but claims two pairs
    bad.extend_from_slice(&[0u8; 8]);
    client.send_raw(&bad).expect("send");
    match client.read_response().expect("response") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // Empty payload (no opcode byte).
    client.send_raw(&0u32.to_le_bytes()).expect("send");
    match client.read_response().expect("response") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // The same connection still serves correct answers afterwards.
    assert_eq!(client.query(0, 5).expect("query"), flat.query(0, 5));

    drop(client);
    let stats = server.shutdown().expect("shutdown");
    assert_eq!(stats.error_frames, 3);
    std::fs::remove_file(path).ok();
}

#[test]
fn oversized_frames_answer_a_typed_error_then_close() {
    let opts = ServeOptions {
        max_frame: 64,
        ..ServeOptions::default()
    };
    let (server, _flat, path) = start_server("oversized", opts);
    let mut client = connect(&server);

    // Declare a payload far over the cap; the body need not even arrive.
    client.send_raw(&1_000_000u32.to_le_bytes()).expect("send");
    match client.read_response().expect("error frame before close") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected error frame, got {other:?}"),
    }
    // The server closed the stream: the next read reports EOF.
    match client.read_response() {
        Err(ClientError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
        }
        other => panic!("expected EOF after oversized frame, got {other:?}"),
    }

    // A fresh connection is unaffected.
    let mut fresh = connect(&server);
    assert!(fresh.query(0, 1).is_ok());

    drop(fresh);
    server.shutdown().expect("shutdown");
    std::fs::remove_file(path).ok();
}

#[test]
fn out_of_range_ids_fail_their_frame_only_and_never_drop_the_connection() {
    let (server, flat, path) = start_server("range", ServeOptions::default());
    let mut client = connect(&server);
    let n = flat.num_vertices() as u32;

    // Three pipelined frames: valid, out-of-range, valid. The middle one
    // answers a typed error naming the offending id; its neighbors answer
    // exact distances.
    let frames = vec![vec![(0, 1), (2, 3)], vec![(1, 2), (n + 7, 0)], vec![(4, 5)]];
    let responses = client.pipeline(&frames).expect("pipeline");
    assert_eq!(
        responses
            .first()
            .expect("frame 0")
            .as_ref()
            .expect("distances"),
        &vec![flat.query(0, 1), flat.query(2, 3)]
    );
    match responses.get(1).expect("frame 1") {
        Err((code, detail)) => {
            assert_eq!(*code, ErrorCode::VertexOutOfRange);
            assert_eq!(*detail, (n + 7) as u64);
        }
        other => panic!("expected out-of-range error, got {other:?}"),
    }
    assert_eq!(
        responses
            .get(2)
            .expect("frame 2")
            .as_ref()
            .expect("distances"),
        &vec![flat.query(4, 5)]
    );

    // Self-query on an out-of-range id is equally an error frame (the
    // oracle would answer INFINITY; the protocol is stricter and names it).
    match client.query(n + 1, n + 1) {
        Err(ClientError::Server { code, detail, .. }) => {
            assert_eq!(code, ErrorCode::VertexOutOfRange);
            assert_eq!(detail, (n + 1) as u64);
        }
        other => panic!("expected server error, got {other:?}"),
    }
    // In-memory reference for the same stale id: INFINITY, not a panic.
    assert_eq!(flat.query(n + 1, n + 1), INFINITY);

    // Connection still alive.
    assert_eq!(client.query(0, 2).expect("query"), flat.query(0, 2));

    drop(client);
    server.shutdown().expect("shutdown");
    std::fs::remove_file(path).ok();
}

#[test]
fn abrupt_client_disconnects_leave_the_server_serving() {
    let (server, flat, path) = start_server("abrupt", ServeOptions::default());

    // Client 1: connects, sends half a frame, vanishes.
    let mut half = connect(&server);
    let mut wire = Vec::new();
    encode_request(&Request::Query(vec![(0, 1), (2, 3)]), &mut wire);
    half.send_raw(&wire[..wire.len() / 2]).expect("send half");
    drop(half); // TCP close with a dangling partial frame

    // Client 2: connects, sends magic + nothing, half-closes.
    let mut silent = connect(&server);
    silent.shutdown_write().expect("half-close");
    drop(silent);

    // Client 3 still gets exact answers from the same server.
    let mut fresh = connect(&server);
    for (u, v) in [(0, 9), (17, 2), (35, 0)] {
        assert_eq!(fresh.query(u, v).expect("query"), flat.query(u, v));
    }

    drop(fresh);
    let stats = server.shutdown().expect("shutdown");
    assert_eq!(stats.connections, 3);
    std::fs::remove_file(path).ok();
}

#[test]
fn info_reports_the_served_index_and_http_answers_curl() {
    let (server, flat, path) = start_server("http", ServeOptions::default());

    let mut client = connect(&server);
    let info = client.info().expect("info");
    assert_eq!(info.num_vertices, flat.num_vertices() as u64);
    assert_eq!(info.total_labels, flat.total_labels() as u64);
    assert_eq!(info.generation, 0);
    drop(client);

    // Plain HTTP/1.1 on the same port (what curl would send).
    use std::io::{Read, Write};
    let addr = server.handle().addr();
    let http_get = |target: &str| -> (String, String) {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("request");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("response");
        let (head, body) = text.split_once("\r\n\r\n").expect("header block");
        (head.to_string(), body.to_string())
    };

    let (head, body) = http_get("/distance?s=0&t=9");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(
        body.trim().parse::<u64>().expect("distance"),
        flat.query(0, 9)
    );

    let (head, body) = http_get("/info");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        body.contains(&format!("vertices {}", flat.num_vertices())),
        "{body}"
    );

    let (head, body) = http_get("/distance?s=0&t=99999");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("out of range"), "{body}");

    let (head, _) = http_get("/distance?s=0");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");

    let (head, _) = http_get("/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    let (head, body) = http_get("/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    let stats = server.shutdown().expect("shutdown");
    assert_eq!(stats.http_requests, 6);
    std::fs::remove_file(path).ok();
}

#[test]
fn path_and_matrix_frames_match_the_in_memory_index() {
    let (server, flat, path) = start_paths_server("paths", ServeOptions::default());
    let mut client = connect(&server);
    let n = flat.num_vertices() as u32;

    // PATH: every served walk is byte-identical to the in-memory oracle's,
    // including the one-vertex diagonal walk.
    for (u, v) in [(0, n - 1), (3, 17), (5, 5), (n - 1, 0), (12, 12)] {
        let expect = flat.path(u, v).expect("answers").unwrap_or_default();
        assert_eq!(client.path(u, v).expect("path"), expect, "({u}, {v})");
    }

    // MATRIX: served blocks — including duplicate ids and asymmetric
    // shapes — match the pivoted in-memory kernel exactly.
    for (sources, targets) in [
        (vec![0u32, 1, 2], vec![n - 1, n - 2]),
        (vec![5, 5, 5], vec![5, 6]),
        (vec![0], (0..n).collect::<Vec<u32>>()),
    ] {
        assert_eq!(
            client.matrix(&sources, &targets).expect("matrix"),
            flat.matrix(&sources, &targets)
        );
    }

    drop(client);
    let stats = server.shutdown().expect("shutdown");
    assert_eq!(stats.error_frames, 0);
    // MATRIX cells count as queries; 5 PATH frames count one each.
    assert_eq!(stats.queries, 5 + 6 + 6 + n as u64);
    std::fs::remove_file(path).ok();
}

#[test]
fn path_without_path_section_answers_the_typed_error_and_survives() {
    // The plain server's file has no path section: PATH frames must answer
    // ErrorCode::NoPathData — not close, not guess — and MATRIX (which
    // needs no parents) keeps working on the same connection.
    let (server, flat, path) = start_server("nopaths", ServeOptions::default());
    let mut client = connect(&server);
    match client.path(0, 5) {
        Err(ClientError::Server { code, message, .. }) => {
            assert_eq!(code, ErrorCode::NoPathData);
            assert!(message.contains("no path data"), "{message}");
        }
        other => panic!("expected NoPathData, got {other:?}"),
    }
    assert_eq!(
        client.matrix(&[0, 1], &[2, 3]).expect("matrix"),
        flat.matrix(&[0, 1], &[2, 3])
    );
    assert_eq!(client.query(0, 5).expect("query"), flat.query(0, 5));
    drop(client);
    let stats = server.shutdown().expect("shutdown");
    assert_eq!(stats.error_frames, 1);
    std::fs::remove_file(path).ok();
}

#[test]
fn malformed_and_out_of_range_path_matrix_frames_fail_typed() {
    let (server, flat, path) = start_paths_server("pm-malformed", ServeOptions::default());
    let mut client = connect(&server);
    let n = flat.num_vertices() as u32;

    // PATH frame with a truncated second endpoint.
    let mut bad = Vec::new();
    bad.extend_from_slice(&7u32.to_le_bytes());
    bad.push(OP_PATH);
    bad.extend_from_slice(&0u32.to_le_bytes());
    bad.extend_from_slice(&[9, 0]); // two bytes of v
    client.send_raw(&bad).expect("send");
    match client.read_response().expect("response") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // MATRIX frame whose counts disagree with the payload length.
    let mut bad = Vec::new();
    bad.extend_from_slice(&17u32.to_le_bytes()); // 1 + 8 + 8 = one id per side
    bad.push(OP_MATRIX);
    bad.extend_from_slice(&2u32.to_le_bytes()); // ...but claims two sources
    bad.extend_from_slice(&1u32.to_le_bytes());
    bad.extend_from_slice(&[0u8; 8]);
    client.send_raw(&bad).expect("send");
    match client.read_response().expect("response") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // Out-of-range ids answer VertexOutOfRange naming the id, for both ops.
    match client.path(n + 3, 0) {
        Err(ClientError::Server { code, detail, .. }) => {
            assert_eq!(code, ErrorCode::VertexOutOfRange);
            assert_eq!(detail, (n + 3) as u64);
        }
        other => panic!("expected out-of-range, got {other:?}"),
    }
    match client.matrix(&[0, 1], &[2, n + 9]) {
        Err(ClientError::Server { code, detail, .. }) => {
            assert_eq!(code, ErrorCode::VertexOutOfRange);
            assert_eq!(detail, (n + 9) as u64);
        }
        other => panic!("expected out-of-range, got {other:?}"),
    }

    // Same connection, still exact.
    assert_eq!(
        client.path(0, n - 1).expect("path"),
        flat.path(0, n - 1).expect("answers").unwrap_or_default()
    );
    drop(client);
    let stats = server.shutdown().expect("shutdown");
    assert_eq!(stats.error_frames, 4);
    std::fs::remove_file(path).ok();
}

#[test]
fn oversized_path_and_matrix_responses_fail_typed_without_closing() {
    // Response-side framing is never lost: a PATH/MATRIX *answer* that
    // would exceed max_frame fails as a typed Oversized error and the
    // connection keeps serving (unlike an oversized *request*, which
    // closes after the error because request framing is gone).
    let opts = ServeOptions {
        max_frame: 32,
        ..ServeOptions::default()
    };
    let (server, flat, path) = start_paths_server("pm-oversized", opts);
    let mut client = connect(&server);
    let n = flat.num_vertices() as u32;

    // The corner-to-corner grid walk needs 1 + 4 + 4*11 = 49 > 32 bytes.
    let long_walk = flat.path(0, n - 1).expect("answers").expect("connected");
    assert!(
        1 + 4 + 4 * long_walk.len() > 32,
        "corpus walk is long enough"
    );
    match client.path(0, n - 1) {
        Err(ClientError::Server { code, detail, .. }) => {
            assert_eq!(code, ErrorCode::Oversized);
            assert_eq!(detail, long_walk.len() as u64);
        }
        other => panic!("expected oversized, got {other:?}"),
    }

    // A 2x4 block answers 1 + 4 + 8*8 = 69 > 32 bytes; its request (33
    // bytes > 32) would be refused first, so probe with 1x4 = 25-byte
    // request whose 37-byte answer is the oversized side.
    match client.matrix(&[0], &[1, 2, 3, 4]) {
        Err(ClientError::Server { code, detail, .. }) => {
            assert_eq!(code, ErrorCode::Oversized);
            assert_eq!(detail, 4);
        }
        other => panic!("expected oversized, got {other:?}"),
    }

    // Both failures left the connection serving: short answers still flow.
    assert_eq!(client.path(0, 0).expect("path"), vec![0]);
    assert_eq!(
        client.matrix(&[0], &[1]).expect("matrix"),
        flat.matrix(&[0], &[1])
    );
    drop(client);
    server.shutdown().expect("shutdown");
    std::fs::remove_file(path).ok();
}

#[test]
fn protocol_shutdown_frame_stops_the_server_gracefully() {
    let (server, flat, path) = start_server("shutdown", ServeOptions::default());
    let mut client = connect(&server);
    assert_eq!(client.query(1, 2).expect("query"), flat.query(1, 2));
    client.shutdown_server().expect("shutdown ack");
    // run() exits on its own — no handle signal involved.
    let stats = server.join().expect("server exits");
    assert!(stats.queries >= 1);
    std::fs::remove_file(path).ok();
}
