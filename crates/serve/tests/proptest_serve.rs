//! Property-based tests for the serving tier: for arbitrary graphs and
//! arbitrary query workloads, a live socket conversation with the server
//! answers exactly what the sequential in-memory index answers — over every
//! persisted backend (flat file copy-loaded, compressed file copy-loaded,
//! flat file mmapped, compressed file mmapped) — including self-queries,
//! and with out-of-range ids answering a typed error frame that names the
//! first offending id (where the in-memory oracle answers `INFINITY`).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use chl_core::flat::FlatIndex;
use chl_core::persist::SaveOptions;
use chl_core::pll::sequential_pll;
use chl_graph::types::INFINITY;
use chl_graph::{CsrGraph, GraphBuilder};
use chl_ranking::degree_ranking;
use chl_serve::protocol::ErrorCode;
use chl_serve::{Client, ServeOptions, Server, SharedIndex};

/// Vertex-count ceiling for generated graphs; workload ids draw from a
/// slightly larger range so every case can exercise out-of-range frames.
const MAX_N: u32 = 20;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..MAX_N as usize,
        proptest::collection::vec((0u32..MAX_N, 0u32..MAX_N, 1u32..50), 1..60),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("positive weights")
        })
}

/// Random query pairs, deliberately over-ranged: ids in `0..MAX_N + 3` while
/// graphs have at most `MAX_N - 1` vertices, so workloads mix valid pairs,
/// self-queries and stale ids in one stream.
fn arb_workload() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..MAX_N + 3, 0u32..MAX_N + 3), 1..40)
}

fn scratch_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "chl-serve-proptest-{}-{:?}-{tag}.chl",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, bytes).expect("write scratch index");
    path
}

/// Every persisted serving backend: (compressed entries?, mmap loader?).
const BACKENDS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_answers_equal_the_sequential_map_on_every_backend(
        g in arb_graph(),
        pairs in arb_workload(),
    ) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = FlatIndex::from_index(&index);
        let n = flat.num_vertices() as u32;

        // Force the interesting degenerate shapes into every workload:
        // in-range self-queries (distance 0) and an out-of-range self-query
        // (INFINITY in memory, a typed error over the wire).
        let mut pairs = pairs;
        pairs.push((0, 0));
        pairs.push((n - 1, n - 1));
        pairs.push((n + 1, n + 1));

        for (compressed, mmap) in BACKENDS {
            let options = if compressed {
                SaveOptions::compressed()
            } else {
                SaveOptions::default()
            };
            let tag = format!("backend-c{}-m{}", compressed as u8, mmap as u8);
            let path = scratch_file(&tag, &flat.to_bytes_with(&options));

            let shared = Arc::new(
                SharedIndex::open(&path, mmap).expect("open served index"),
            );
            let server = Server::bind("127.0.0.1:0", shared, ServeOptions::default())
                .expect("bind ephemeral port")
                .spawn()
                .expect("spawn server");

            let mut client = Client::connect(server.handle().addr()).expect("connect");
            client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");

            // One frame per pair, all pipelined in a single write: each
            // frame independently answers its distance or its typed error.
            let frames: Vec<Vec<(u32, u32)>> =
                pairs.iter().map(|&p| vec![p]).collect();
            let responses = client.pipeline(&frames).expect("pipeline");
            prop_assert_eq!(responses.len(), pairs.len());
            for (&(u, v), response) in pairs.iter().zip(&responses) {
                if u < n && v < n {
                    let expect = index.query(u, v);
                    match response {
                        Ok(ds) => prop_assert_eq!(
                            ds.as_slice(),
                            &[expect][..],
                            "({}, {}) over compressed={} mmap={}",
                            u, v, compressed, mmap
                        ),
                        Err(e) => prop_assert!(
                            false,
                            "in-range ({u}, {v}) answered error {e:?} over \
                             compressed={compressed} mmap={mmap}"
                        ),
                    }
                } else {
                    // The sequential map answers INFINITY; the protocol is
                    // stricter and names the first offending id.
                    prop_assert_eq!(flat.query(u, v), INFINITY);
                    let offending = if u < n { v } else { u };
                    match response {
                        Err((code, detail)) => {
                            prop_assert_eq!(*code, ErrorCode::VertexOutOfRange);
                            prop_assert_eq!(*detail, offending as u64);
                        }
                        Ok(ds) => prop_assert!(
                            false,
                            "out-of-range ({u}, {v}) answered data {ds:?} over \
                             compressed={compressed} mmap={mmap}"
                        ),
                    }
                }
            }

            // The in-range subset again as ONE multi-pair frame: the batched
            // path answers the same bytes as the frame-per-pair path.
            let valid: Vec<(u32, u32)> = pairs
                .iter()
                .copied()
                .filter(|&(u, v)| u < n && v < n)
                .collect();
            if !valid.is_empty() {
                let served = client.query_batch(&valid).expect("batch");
                let expected: Vec<u64> =
                    valid.iter().map(|&(u, v)| index.query(u, v)).collect();
                prop_assert_eq!(served, expected);
            }

            drop(client);
            let stats = server.shutdown().expect("shutdown");
            prop_assert_eq!(stats.connections, 1);
            std::fs::remove_file(&path).ok();
        }
    }
}
