//! Property-based tests for the serving tier: for arbitrary graphs and
//! arbitrary query workloads, a live socket conversation with the server
//! answers exactly what the sequential in-memory index answers — over every
//! persisted backend (flat file copy-loaded, compressed file copy-loaded,
//! flat file mmapped, compressed file mmapped) — including self-queries,
//! and with out-of-range ids answering a typed error frame that names the
//! first offending id (where the in-memory oracle answers `INFINITY`).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use chl_core::flat::FlatIndex;
use chl_core::persist::SaveOptions;
use chl_core::pll::sequential_pll;
use chl_graph::types::INFINITY;
use chl_graph::{CsrGraph, GraphBuilder};
use chl_ranking::degree_ranking;
use chl_serve::protocol::ErrorCode;
use chl_serve::{BenchSummary, Client, ServeOptions, Server, SharedIndex};

/// Vertex-count ceiling for generated graphs; workload ids draw from a
/// slightly larger range so every case can exercise out-of-range frames.
const MAX_N: u32 = 20;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..MAX_N as usize,
        proptest::collection::vec((0u32..MAX_N, 0u32..MAX_N, 1u32..50), 1..60),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("positive weights")
        })
}

/// Random query pairs, deliberately over-ranged: ids in `0..MAX_N + 3` while
/// graphs have at most `MAX_N - 1` vertices, so workloads mix valid pairs,
/// self-queries and stale ids in one stream.
fn arb_workload() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..MAX_N + 3, 0u32..MAX_N + 3), 1..40)
}

fn scratch_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "chl-serve-proptest-{}-{:?}-{tag}.chl",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, bytes).expect("write scratch index");
    path
}

/// Every persisted serving backend: (compressed entries?, mmap loader?).
const BACKENDS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_answers_equal_the_sequential_map_on_every_backend(
        g in arb_graph(),
        pairs in arb_workload(),
    ) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = FlatIndex::from_index(&index);
        let n = flat.num_vertices() as u32;

        // Force the interesting degenerate shapes into every workload:
        // in-range self-queries (distance 0) and an out-of-range self-query
        // (INFINITY in memory, a typed error over the wire).
        let mut pairs = pairs;
        pairs.push((0, 0));
        pairs.push((n - 1, n - 1));
        pairs.push((n + 1, n + 1));

        for (compressed, mmap) in BACKENDS {
            let options = if compressed {
                SaveOptions::compressed()
            } else {
                SaveOptions::default()
            };
            let tag = format!("backend-c{}-m{}", compressed as u8, mmap as u8);
            let path = scratch_file(&tag, &flat.to_bytes_with(&options));

            let shared = Arc::new(
                SharedIndex::open(&path, mmap).expect("open served index"),
            );
            let server = Server::bind("127.0.0.1:0", shared, ServeOptions::default())
                .expect("bind ephemeral port")
                .spawn()
                .expect("spawn server");

            let mut client = Client::connect(server.handle().addr()).expect("connect");
            client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");

            // One frame per pair, all pipelined in a single write: each
            // frame independently answers its distance or its typed error.
            let frames: Vec<Vec<(u32, u32)>> =
                pairs.iter().map(|&p| vec![p]).collect();
            let responses = client.pipeline(&frames).expect("pipeline");
            prop_assert_eq!(responses.len(), pairs.len());
            for (&(u, v), response) in pairs.iter().zip(&responses) {
                if u < n && v < n {
                    let expect = index.query(u, v);
                    match response {
                        Ok(ds) => prop_assert_eq!(
                            ds.as_slice(),
                            &[expect][..],
                            "({}, {}) over compressed={} mmap={}",
                            u, v, compressed, mmap
                        ),
                        Err(e) => prop_assert!(
                            false,
                            "in-range ({u}, {v}) answered error {e:?} over \
                             compressed={compressed} mmap={mmap}"
                        ),
                    }
                } else {
                    // The sequential map answers INFINITY; the protocol is
                    // stricter and names the first offending id.
                    prop_assert_eq!(flat.query(u, v), INFINITY);
                    let offending = if u < n { v } else { u };
                    match response {
                        Err((code, detail)) => {
                            prop_assert_eq!(*code, ErrorCode::VertexOutOfRange);
                            prop_assert_eq!(*detail, offending as u64);
                        }
                        Ok(ds) => prop_assert!(
                            false,
                            "out-of-range ({u}, {v}) answered data {ds:?} over \
                             compressed={compressed} mmap={mmap}"
                        ),
                    }
                }
            }

            // The in-range subset again as ONE multi-pair frame: the batched
            // path answers the same bytes as the frame-per-pair path.
            let valid: Vec<(u32, u32)> = pairs
                .iter()
                .copied()
                .filter(|&(u, v)| u < n && v < n)
                .collect();
            if !valid.is_empty() {
                let served = client.query_batch(&valid).expect("batch");
                let expected: Vec<u64> =
                    valid.iter().map(|&(u, v)| index.query(u, v)).collect();
                prop_assert_eq!(served, expected);
            }

            drop(client);
            let stats = server.shutdown().expect("shutdown");
            prop_assert_eq!(stats.connections, 1);
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Nearest-rank selection computed by a histogram walk instead of indexing
/// into a sorted vector: the smallest sample value whose cumulative count
/// reaches `ceil(q * len)`. An independent oracle for
/// [`BenchSummary::latency_percentile`].
fn nearest_rank_by_histogram(samples: &[u64], q: f64) -> u64 {
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    let mut histogram = std::collections::BTreeMap::<u64, usize>::new();
    for &s in samples {
        *histogram.entry(s).or_insert(0) += 1;
    }
    let mut seen = 0usize;
    for (value, count) in histogram {
        seen += count;
        if seen >= rank {
            return value;
        }
    }
    0 // unreachable for non-empty samples: the loop covers every rank
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `run_bench` merges each connection's latency samples into one sorted
    /// vector and reports nearest-rank percentiles over the merge. Merging
    /// must lose nothing: for every quantile, the merged report equals the
    /// nearest-rank percentile over the plain concatenation of all
    /// per-connection samples (computed here by an independent histogram
    /// walk), regardless of how the samples were split across connections.
    #[test]
    fn merged_percentiles_equal_nearest_rank_over_concatenated_samples(
        per_connection in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 1..40),
            1..6,
        ),
        extra_q_millis in 1u64..=1000,
    ) {
        let extra_q = extra_q_millis as f64 / 1000.0;
        // The same merge `run_bench` performs: extend, then one sort.
        let mut merged: Vec<u64> = Vec::new();
        for conn in &per_connection {
            merged.extend_from_slice(conn);
        }
        let concatenated = merged.clone();
        merged.sort_unstable();
        let summary = BenchSummary {
            connections: per_connection.len(),
            pipeline: 1,
            batch: 1,
            elapsed: Duration::from_secs(1),
            requests: merged.len() as u64,
            queries: merged.len() as u64,
            errors: 0,
            latencies_sorted_ns: merged,
        };

        for q in [0.50, 0.99, 0.999, extra_q] {
            let reported = summary.latency_percentile(q).as_nanos() as u64;
            let expected = nearest_rank_by_histogram(&concatenated, q);
            prop_assert_eq!(
                reported, expected,
                "q={} over {} samples in {} connections",
                q, concatenated.len(), per_connection.len()
            );
        }
        // The max is the p100 and the p50 can never exceed the p999.
        prop_assert_eq!(
            summary.latency_max(),
            summary.latency_percentile(1.0)
        );
        prop_assert!(summary.latency_percentile(0.5) <= summary.latency_percentile(0.999));
    }
}
