//! A minimal blocking client for the binary protocol: the load generator's
//! engine and the protocol test harness's probe.
//!
//! [`Client`] owns one connection. Every request method sends a frame and
//! reads exactly one response frame; [`Client::pipeline`] sends many QUERY
//! frames in one write before reading any response, which is what triggers
//! the server's batch coalescing. Server-side typed error frames surface as
//! [`ClientError::Server`] with their [`ErrorCode`] intact, so tests can
//! assert on exact failure modes.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use chl_graph::types::{Distance, VertexId};

use crate::protocol::{
    decode_response, encode_request, ErrorCode, FrameBuffer, Request, Response, ServerInfo,
    WireError, DEFAULT_MAX_FRAME, MAGIC,
};

/// Everything that can go wrong on the client side of a conversation.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, premature close).
    Io(std::io::Error),
    /// The server (or a middlebox) broke the wire format.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The typed failure.
        code: ErrorCode,
        /// Code-specific detail (offending vertex id for out-of-range).
        detail: u64,
        /// Human-readable context from the server.
        message: String,
    },
    /// The server answered with a frame of the wrong kind for the request.
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server {
                code,
                detail,
                message,
            } => write!(f, "server error ({code}, detail {detail}): {message}"),
            ClientError::UnexpectedResponse => write!(f, "unexpected response frame kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One blocking protocol connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    fb: FrameBuffer,
}

impl Client {
    /// Connects and sends the binary-protocol preamble.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&MAGIC)?;
        Ok(Client {
            stream,
            fb: FrameBuffer::new(DEFAULT_MAX_FRAME),
        })
    }

    /// Sets a read timeout for responses (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends raw bytes as-is — the harness's tool for malformed frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Half-closes the write side so the server sees EOF after the bytes
    /// already sent (used to simulate abrupt clients deterministically).
    pub fn shutdown_write(&mut self) -> Result<(), ClientError> {
        self.stream.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }

    /// Reads the next response frame, blocking per the configured timeout.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.fb.next_payload() {
                Ok(Some(payload)) => return Ok(decode_response(&payload)?),
                Ok(None) => {}
                Err(wire) => return Err(ClientError::Wire(wire)),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    )))
                }
                Ok(n) => self.fb.extend(chunk.get(..n).unwrap_or_default()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Sends one QUERY frame without reading its response — the open-window
    /// half of a pipelined loop. Pair with [`Client::read_distances`].
    pub fn send_query(&mut self, pairs: &[(VertexId, VertexId)]) -> Result<(), ClientError> {
        let mut wire = Vec::new();
        encode_request(&Request::Query(pairs.to_vec()), &mut wire);
        self.stream.write_all(&wire)?;
        Ok(())
    }

    /// Reads one QUERY response: the distances, or the frame's typed server
    /// error as [`ClientError::Server`].
    pub fn read_distances(&mut self) -> Result<Vec<Distance>, ClientError> {
        self.expect_distances()
    }

    fn expect_distances(&mut self) -> Result<Vec<Distance>, ClientError> {
        match self.read_response()? {
            Response::Distances(ds) => Ok(ds),
            Response::Error {
                code,
                detail,
                message,
            } => Err(ClientError::Server {
                code,
                detail,
                message,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// One QUERY frame with one pair; returns its distance.
    pub fn query(&mut self, u: VertexId, v: VertexId) -> Result<Distance, ClientError> {
        let ds = self.query_batch(&[(u, v)])?;
        ds.first().copied().ok_or(ClientError::UnexpectedResponse)
    }

    /// One QUERY frame with many pairs; distances come back in order.
    pub fn query_batch(
        &mut self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<Distance>, ClientError> {
        let mut wire = Vec::new();
        encode_request(&Request::Query(pairs.to_vec()), &mut wire);
        self.stream.write_all(&wire)?;
        self.expect_distances()
    }

    /// Sends every frame in one write (triggering server-side coalescing),
    /// then reads one response per frame, in order. Each response is either
    /// that frame's distances or that frame's typed server error.
    #[allow(clippy::type_complexity)]
    pub fn pipeline(
        &mut self,
        frames: &[Vec<(VertexId, VertexId)>],
    ) -> Result<Vec<Result<Vec<Distance>, (ErrorCode, u64)>>, ClientError> {
        let mut wire = Vec::new();
        for pairs in frames {
            encode_request(&Request::Query(pairs.clone()), &mut wire);
        }
        self.stream.write_all(&wire)?;
        let mut out = Vec::with_capacity(frames.len());
        for _ in frames {
            match self.read_response()? {
                Response::Distances(ds) => out.push(Ok(ds)),
                Response::Error { code, detail, .. } => out.push(Err((code, detail))),
                _ => return Err(ClientError::UnexpectedResponse),
            }
        }
        Ok(out)
    }

    /// One PATH frame: the reconstructed vertex walk `u → v`, empty when
    /// the endpoints are disconnected. Servers without path data answer
    /// [`ErrorCode::NoPathData`], surfaced as [`ClientError::Server`].
    pub fn path(&mut self, u: VertexId, v: VertexId) -> Result<Vec<VertexId>, ClientError> {
        let mut wire = Vec::new();
        encode_request(&Request::Path(u, v), &mut wire);
        self.stream.write_all(&wire)?;
        match self.read_response()? {
            Response::Path(vertices) => Ok(vertices),
            Response::Error {
                code,
                detail,
                message,
            } => Err(ClientError::Server {
                code,
                detail,
                message,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// One MATRIX frame: the `sources × targets` distance block, row-major.
    pub fn matrix(
        &mut self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<Vec<Distance>, ClientError> {
        let mut wire = Vec::new();
        encode_request(
            &Request::Matrix {
                sources: sources.to_vec(),
                targets: targets.to_vec(),
            },
            &mut wire,
        );
        self.stream.write_all(&wire)?;
        match self.read_response()? {
            Response::Matrix(ds) => Ok(ds),
            Response::Error {
                code,
                detail,
                message,
            } => Err(ClientError::Server {
                code,
                detail,
                message,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Asks for index/server metadata.
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        let mut wire = Vec::new();
        encode_request(&Request::Info, &mut wire);
        self.stream.write_all(&wire)?;
        match self.read_response()? {
            Response::Info(info) => Ok(info),
            Response::Error {
                code,
                detail,
                message,
            } => Err(ClientError::Server {
                code,
                detail,
                message,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Asks the server to revalidate and hot-swap its index file; returns
    /// the new generation on success.
    pub fn reload(&mut self) -> Result<u64, ClientError> {
        let mut wire = Vec::new();
        encode_request(&Request::Reload, &mut wire);
        self.stream.write_all(&wire)?;
        match self.read_response()? {
            Response::Ok { generation } => Ok(generation),
            Response::Error {
                code,
                detail,
                message,
            } => Err(ClientError::Server {
                code,
                detail,
                message,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Asks the server to shut down gracefully; returns once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let mut wire = Vec::new();
        encode_request(&Request::Shutdown, &mut wire);
        self.stream.write_all(&wire)?;
        match self.read_response()? {
            Response::Ok { .. } => Ok(()),
            Response::Error {
                code,
                detail,
                message,
            } => Err(ClientError::Server {
                code,
                detail,
                message,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
