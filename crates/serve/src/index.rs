//! The served index: one loaded `.chl` file behind an atomically swappable
//! handle, so reloads never drop in-flight requests.
//!
//! [`SharedIndex`] owns the path it was opened from plus the currently
//! serving [`LoadedIndex`] wrapped in `RwLock<Arc<..>>`. Request handlers
//! take a [`SharedIndex::snapshot`] (one `Arc` clone under a read lock —
//! nanoseconds) per batch and answer from it; [`SharedIndex::reload`]
//! revalidates the file from scratch and swaps the `Arc` under the write
//! lock. Handlers holding the old snapshot keep serving the old index until
//! their batch completes, at which point the last `Arc` drops it — the
//! graceful-reload semantics the protocol's RELOAD frame exposes. A reload
//! that fails validation (corrupt or truncated replacement file) leaves the
//! serving index untouched and reports the loader's typed error.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chl_core::flat::FlatIndex;
use chl_core::mapped::MmapIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::persist::{PersistError, ShardSpec};
use chl_graph::types::VertexId;

use crate::protocol::ServerInfo;

/// One fully validated, immutable index serving generation.
///
/// Both backends answer through the same [`DistanceOracle`] surface; the
/// enum only exists so the server can name its backend and report accurate
/// INFO flags.
#[derive(Debug)]
pub enum LoadedIndex {
    /// Copy-loaded, heap-owned index (works for v1 and v2 files).
    Owned(FlatIndex),
    /// Zero-copy mapped index (v2 files; buffered fallback off-Unix or with
    /// the `mmap` feature disabled).
    Mapped(MmapIndex),
}

impl LoadedIndex {
    /// Opens and fully validates `path` with the requested backend.
    pub fn open(path: &Path, mmap: bool) -> Result<Self, PersistError> {
        if mmap {
            MmapIndex::open(path).map(LoadedIndex::Mapped)
        } else {
            FlatIndex::load(path).map(LoadedIndex::Owned)
        }
    }

    /// The query surface of this generation.
    pub fn oracle(&self) -> &dyn DistanceOracle {
        match self {
            LoadedIndex::Owned(index) => index,
            LoadedIndex::Mapped(index) => index,
        }
    }

    /// Vertices covered (valid ids are `0..n`).
    pub fn num_vertices(&self) -> usize {
        match self {
            LoadedIndex::Owned(index) => index.num_vertices(),
            LoadedIndex::Mapped(index) => index.num_vertices(),
        }
    }

    /// Total label entries stored.
    pub fn total_labels(&self) -> usize {
        match self {
            LoadedIndex::Owned(index) => index.total_labels(),
            LoadedIndex::Mapped(index) => index.total_labels(),
        }
    }

    /// Human-readable backend name for logs and stats.
    pub fn backend_name(&self) -> &'static str {
        match self {
            LoadedIndex::Owned(_) => "owned (copy-load)",
            LoadedIndex::Mapped(m) => match (m.is_mapped(), m.is_compressed()) {
                (true, false) => "mmap (zero-copy view)",
                (true, true) => "mmap (streamed varint decode)",
                (false, false) => "mmap fallback (aligned buffered read)",
                (false, true) => "mmap fallback (buffered streamed decode)",
            },
        }
    }

    fn is_compressed(&self) -> bool {
        match self {
            // A copy-loaded index is decoded at load time; it serves raw
            // entries regardless of the file's encoding.
            LoadedIndex::Owned(_) => false,
            LoadedIndex::Mapped(m) => m.is_compressed(),
        }
    }

    fn is_mapped(&self) -> bool {
        match self {
            LoadedIndex::Owned(_) => false,
            LoadedIndex::Mapped(m) => m.is_mapped(),
        }
    }

    /// The shard identity when the loaded file is one QDOL shard of a
    /// sharded index; `None` for a whole index. Both backends cache the
    /// spec at load, so this never re-walks the file.
    pub fn shard(&self) -> Option<&ShardSpec> {
        match self {
            LoadedIndex::Owned(index) => index.shard(),
            LoadedIndex::Mapped(index) => index.shard(),
        }
    }

    /// Shard-honesty check for one query: the first **in-range** endpoint
    /// this shard does not own, or `None` when the query is answerable here
    /// (including on a whole index, and including out-of-range ids, which
    /// are data — unreachable — on every server).
    pub fn foreign_endpoint(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        let shard = self.shard()?;
        let n = self.num_vertices();
        let foreign = |id: VertexId| (id as usize) < n && !shard.owns(id);
        if foreign(u) {
            Some(u)
        } else if foreign(v) {
            Some(v)
        } else {
            None
        }
    }
}

/// The hot-swappable index handle shared by every connection handler.
#[derive(Debug)]
pub struct SharedIndex {
    path: PathBuf,
    mmap: bool,
    current: parking_lot::RwLock<Arc<LoadedIndex>>,
    generation: AtomicU64,
}

impl SharedIndex {
    /// Opens `path` with the requested backend as generation 0.
    pub fn open<P: AsRef<Path>>(path: P, mmap: bool) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let loaded = LoadedIndex::open(&path, mmap)?;
        Ok(SharedIndex {
            path,
            mmap,
            current: parking_lot::RwLock::new(Arc::new(loaded)),
            generation: AtomicU64::new(0),
        })
    }

    /// Wraps an already loaded index (tests, in-process serving). Reload
    /// still goes through `path`.
    pub fn from_loaded<P: AsRef<Path>>(path: P, mmap: bool, loaded: LoadedIndex) -> Self {
        SharedIndex {
            path: path.as_ref().to_path_buf(),
            mmap,
            current: parking_lot::RwLock::new(Arc::new(loaded)),
            generation: AtomicU64::new(0),
        }
    }

    /// The index file reloads re-read.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether reloads use the mapped backend.
    pub fn uses_mmap(&self) -> bool {
        self.mmap
    }

    /// The currently serving generation. Cheap: one `Arc` clone under a read
    /// lock. Callers answer a whole batch from one snapshot so a concurrent
    /// reload can never change answers mid-batch.
    pub fn snapshot(&self) -> Arc<LoadedIndex> {
        Arc::clone(&self.current.read())
    }

    /// Reload generation counter: 0 until the first successful
    /// [`SharedIndex::reload`], then incremented per swap.
    pub fn generation(&self) -> u64 {
        // ORDERING: the generation is a monotonically increasing stats
        // counter; readers only need *a* recent value, and the index swap
        // itself synchronizes through the RwLock.
        self.generation.load(Ordering::Relaxed)
    }

    /// Revalidates the file and atomically swaps it in, returning the new
    /// generation. On any load error the old index keeps serving and the
    /// typed error is returned. In-flight snapshots are unaffected either
    /// way: they hold their own `Arc` until their batch completes.
    pub fn reload(&self) -> Result<u64, PersistError> {
        // Load outside the write lock: validation is the expensive part and
        // must not stall readers.
        let fresh = Arc::new(LoadedIndex::open(&self.path, self.mmap)?);
        let mut current = self.current.write();
        *current = fresh;
        // ORDERING: monotonic stats counter; the swap above is what readers
        // synchronize on (via the RwLock), not this value.
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(generation)
    }

    /// INFO-frame metadata for the current generation.
    pub fn info(&self) -> ServerInfo {
        let snapshot = self.snapshot();
        ServerInfo {
            num_vertices: snapshot.num_vertices() as u64,
            total_labels: snapshot.total_labels() as u64,
            generation: self.generation(),
            compressed: snapshot.is_compressed(),
            mapped: snapshot.is_mapped(),
            shard: snapshot.shard().map(|s| (s.shard_id, s.shard_count)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_core::index::HubLabelIndex;
    use chl_ranking::Ranking;

    fn tiny_flat() -> FlatIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        FlatIndex::from_index(&HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        ))
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "chl-serve-index-test-{}-{:?}-{tag}.chl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn open_snapshot_and_reload_roll_the_generation() {
        let flat = tiny_flat();
        let path = temp_path("reload");
        flat.save(&path).unwrap();

        for mmap in [false, true] {
            let shared = SharedIndex::open(&path, mmap).unwrap();
            assert_eq!(shared.generation(), 0);
            assert_eq!(shared.uses_mmap(), mmap);
            let before = shared.snapshot();
            assert_eq!(before.num_vertices(), 3);
            assert_eq!(before.oracle().distance(0, 2), 2);
            assert!(!before.backend_name().is_empty());

            assert_eq!(shared.reload().unwrap(), 1);
            assert_eq!(shared.generation(), 1);
            // The old snapshot still answers after the swap.
            assert_eq!(before.oracle().distance(0, 2), 2);
            assert_eq!(shared.info().generation, 1);
            assert_eq!(shared.info().num_vertices, 3);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_reload_keeps_the_old_index() {
        let flat = tiny_flat();
        let path = temp_path("corrupt");
        flat.save(&path).unwrap();
        let shared = SharedIndex::open(&path, false).unwrap();

        std::fs::write(&path, b"not a chl file").unwrap();
        assert!(shared.reload().is_err());
        assert_eq!(shared.generation(), 0);
        assert_eq!(shared.snapshot().oracle().distance(0, 2), 2);

        std::fs::remove_file(&path).unwrap();
        assert!(matches!(shared.reload(), Err(PersistError::Io(_))));
    }
}
