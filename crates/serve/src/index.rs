//! The served index: one loaded `.chl` file behind an atomically swappable
//! handle, so reloads never drop in-flight requests.
//!
//! [`SharedIndex`] owns the path it was opened from plus the currently
//! serving [`LoadedIndex`] wrapped in `RwLock<Arc<..>>`. Request handlers
//! take a [`SharedIndex::snapshot`] (one `Arc` clone under a read lock —
//! nanoseconds) per batch and answer from it; [`SharedIndex::reload`]
//! revalidates the file from scratch and swaps the `Arc` under the write
//! lock. Handlers holding the old snapshot keep serving the old index until
//! their batch completes, at which point the last `Arc` drops it — the
//! graceful-reload semantics the protocol's RELOAD frame exposes. A reload
//! that fails validation (corrupt or truncated replacement file) leaves the
//! serving index untouched and reports the loader's typed error.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chl_core::flat::FlatIndex;
use chl_core::kernel::HotHubCache;
use chl_core::mapped::MmapIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::paths::{PathError, PathOracle};
use chl_core::persist::{PersistError, ShardSpec};
use chl_graph::types::{Distance, VertexId};

use crate::protocol::ServerInfo;

/// The two load backends a generation can serve from.
#[derive(Debug)]
enum Backend {
    /// Copy-loaded, heap-owned index (works for v1 and v2 files).
    Owned(FlatIndex),
    /// Zero-copy mapped index (v2 files; buffered fallback off-Unix or with
    /// the `mmap` feature disabled).
    Mapped(MmapIndex),
}

/// One fully validated, immutable index serving generation: a load backend
/// plus an optional top-`k` [`HotHubCache`] built from the same snapshot.
///
/// Both backends answer through the same [`DistanceOracle`] surface — the
/// generation itself implements the trait, consulting the cache first when
/// one is configured. Because the cache is part of the generation, a
/// `RELOAD` swap atomically replaces index *and* cache together: a stale
/// cache can never outlive the snapshot it was built from.
#[derive(Debug)]
pub struct LoadedIndex {
    backend: Backend,
    cache: Option<HotHubCache>,
}

impl LoadedIndex {
    /// Opens and fully validates `path` with the requested backend, no
    /// hot-hub cache.
    pub fn open(path: &Path, mmap: bool) -> Result<Self, PersistError> {
        LoadedIndex::open_with(path, mmap, 0)
    }

    /// Opens `path` and, when `hot_hubs > 0`, builds the top-`hot_hubs`
    /// distance-row cache from the freshly validated index.
    pub fn open_with(path: &Path, mmap: bool, hot_hubs: u32) -> Result<Self, PersistError> {
        let backend = if mmap {
            MmapIndex::open(path).map(Backend::Mapped)?
        } else {
            FlatIndex::load(path).map(Backend::Owned)?
        };
        let cache = (hot_hubs > 0).then(|| HotHubCache::build(&backend.view(), hot_hubs));
        Ok(LoadedIndex { backend, cache })
    }

    /// Wraps an owned index built in-process (tests, embedded serving).
    pub fn from_owned(index: FlatIndex, hot_hubs: u32) -> Self {
        let cache = (hot_hubs > 0).then(|| HotHubCache::build(&index.as_index_view(), hot_hubs));
        LoadedIndex {
            backend: Backend::Owned(index),
            cache,
        }
    }

    /// The query surface of this generation (the generation itself: the
    /// cache-aware [`DistanceOracle`] impl below).
    pub fn oracle(&self) -> &dyn DistanceOracle {
        self
    }

    /// The hot-hub cache `k` this generation serves with (0 = no cache).
    pub fn hot_hubs(&self) -> u32 {
        self.cache.as_ref().map_or(0, HotHubCache::top_k)
    }

    /// Heap bytes held by the hot-hub cache rows (0 = no cache).
    pub fn cache_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, HotHubCache::memory_bytes)
    }

    /// Vertices covered (valid ids are `0..n`).
    pub fn num_vertices(&self) -> usize {
        match &self.backend {
            Backend::Owned(index) => index.num_vertices(),
            Backend::Mapped(index) => index.num_vertices(),
        }
    }

    /// Total label entries stored.
    pub fn total_labels(&self) -> usize {
        match &self.backend {
            Backend::Owned(index) => index.total_labels(),
            Backend::Mapped(index) => index.total_labels(),
        }
    }

    /// Human-readable backend name for logs and stats.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Owned(_) => "owned (copy-load)",
            Backend::Mapped(m) => match (m.is_mapped(), m.is_compressed()) {
                (true, false) => "mmap (zero-copy view)",
                (true, true) => "mmap (streamed varint decode)",
                (false, false) => "mmap fallback (aligned buffered read)",
                (false, true) => "mmap fallback (buffered streamed decode)",
            },
        }
    }

    fn is_compressed(&self) -> bool {
        match &self.backend {
            // A copy-loaded index is decoded at load time; it serves raw
            // entries regardless of the file's encoding.
            Backend::Owned(_) => false,
            Backend::Mapped(m) => m.is_compressed(),
        }
    }

    fn is_mapped(&self) -> bool {
        match &self.backend {
            Backend::Owned(_) => false,
            Backend::Mapped(m) => m.is_mapped(),
        }
    }

    /// The shard identity when the loaded file is one QDOL shard of a
    /// sharded index; `None` for a whole index. Both backends cache the
    /// spec at load, so this never re-walks the file.
    pub fn shard(&self) -> Option<&ShardSpec> {
        match &self.backend {
            Backend::Owned(index) => index.shard(),
            Backend::Mapped(index) => index.shard(),
        }
    }

    /// `true` when the loaded file carries a path section, i.e. PATH frames
    /// can be answered from this generation.
    pub fn has_path_data(&self) -> bool {
        match &self.backend {
            Backend::Owned(index) => index.has_path_data(),
            Backend::Mapped(index) => index.has_path_data(),
        }
    }

    /// Reconstructs one shortest path from this generation's parent records
    /// (`Ok(None)` = disconnected). Same semantics as the in-process
    /// [`PathOracle::path`] on the underlying backend.
    pub fn path(&self, u: VertexId, v: VertexId) -> Result<Option<Vec<VertexId>>, PathError> {
        self.backend.view().path(u, v)
    }

    /// Shard-honesty check for one query: the first **in-range** endpoint
    /// this shard does not own, or `None` when the query is answerable here
    /// (including on a whole index, and including out-of-range ids, which
    /// are data — unreachable — on every server).
    pub fn foreign_endpoint(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        let shard = self.shard()?;
        let n = self.num_vertices();
        let foreign = |id: VertexId| (id as usize) < n && !shard.owns(id);
        if foreign(u) {
            Some(u)
        } else if foreign(v) {
            Some(v)
        } else {
            None
        }
    }
}

impl Backend {
    /// Borrowed runtime-dispatched view of the loaded index.
    fn view(&self) -> chl_core::flat::IndexView<'_> {
        match self {
            Backend::Owned(index) => index.as_index_view(),
            Backend::Mapped(index) => index.view(),
        }
    }
}

impl DistanceOracle for LoadedIndex {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        match &self.cache {
            Some(cache) => self.backend.view().query_cached(cache, u, v),
            None => self.backend.view().query(u, v),
        }
    }

    fn num_vertices(&self) -> usize {
        LoadedIndex::num_vertices(self)
    }

    fn memory_bytes(&self) -> usize {
        let backend = match &self.backend {
            Backend::Owned(index) => index.memory_bytes(),
            Backend::Mapped(index) => index.memory_bytes(),
        };
        backend + self.cache_bytes()
    }

    /// Distance blocks go through the hub-pivoted kernel on the view — the
    /// hot-hub cache only accelerates point queries, and answers are
    /// byte-identical either way (the matrix contract).
    fn matrix(&self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Distance> {
        self.backend.view().matrix(sources, targets)
    }
}

/// The hot-swappable index handle shared by every connection handler.
#[derive(Debug)]
pub struct SharedIndex {
    path: PathBuf,
    mmap: bool,
    hot_hubs: u32,
    current: parking_lot::RwLock<Arc<LoadedIndex>>,
    generation: AtomicU64,
}

impl SharedIndex {
    /// Opens `path` with the requested backend as generation 0.
    pub fn open<P: AsRef<Path>>(path: P, mmap: bool) -> Result<Self, PersistError> {
        SharedIndex::open_with(path, mmap, 0)
    }

    /// Opens `path` with the requested backend and hot-hub cache size as
    /// generation 0; every reload rebuilds the cache from the fresh file.
    pub fn open_with<P: AsRef<Path>>(
        path: P,
        mmap: bool,
        hot_hubs: u32,
    ) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let loaded = LoadedIndex::open_with(&path, mmap, hot_hubs)?;
        Ok(SharedIndex {
            path,
            mmap,
            hot_hubs,
            current: parking_lot::RwLock::new(Arc::new(loaded)),
            generation: AtomicU64::new(0),
        })
    }

    /// Wraps an already loaded index (tests, in-process serving). Reload
    /// still goes through `path`, preserving the generation's hot-hub
    /// cache configuration.
    pub fn from_loaded<P: AsRef<Path>>(path: P, mmap: bool, loaded: LoadedIndex) -> Self {
        SharedIndex {
            path: path.as_ref().to_path_buf(),
            mmap,
            hot_hubs: loaded.hot_hubs(),
            current: parking_lot::RwLock::new(Arc::new(loaded)),
            generation: AtomicU64::new(0),
        }
    }

    /// The index file reloads re-read.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether reloads use the mapped backend.
    pub fn uses_mmap(&self) -> bool {
        self.mmap
    }

    /// The currently serving generation. Cheap: one `Arc` clone under a read
    /// lock. Callers answer a whole batch from one snapshot so a concurrent
    /// reload can never change answers mid-batch.
    pub fn snapshot(&self) -> Arc<LoadedIndex> {
        Arc::clone(&self.current.read())
    }

    /// Reload generation counter: 0 until the first successful
    /// [`SharedIndex::reload`], then incremented per swap.
    pub fn generation(&self) -> u64 {
        // ORDERING: the generation is a monotonically increasing stats
        // counter; readers only need *a* recent value, and the index swap
        // itself synchronizes through the RwLock.
        self.generation.load(Ordering::Relaxed)
    }

    /// Revalidates the file and atomically swaps it in, returning the new
    /// generation. On any load error the old index keeps serving and the
    /// typed error is returned. In-flight snapshots are unaffected either
    /// way: they hold their own `Arc` until their batch completes.
    pub fn reload(&self) -> Result<u64, PersistError> {
        // Load outside the write lock: validation (and the hot-hub cache
        // rebuild) is the expensive part and must not stall readers. The
        // cache travels inside the generation, so the swap below replaces
        // both together — the RELOAD coherence guarantee.
        let fresh = Arc::new(LoadedIndex::open_with(
            &self.path,
            self.mmap,
            self.hot_hubs,
        )?);
        let mut current = self.current.write();
        *current = fresh;
        // ORDERING: monotonic stats counter; the swap above is what readers
        // synchronize on (via the RwLock), not this value.
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(generation)
    }

    /// INFO-frame metadata for the current generation.
    pub fn info(&self) -> ServerInfo {
        let snapshot = self.snapshot();
        ServerInfo {
            num_vertices: snapshot.num_vertices() as u64,
            total_labels: snapshot.total_labels() as u64,
            generation: self.generation(),
            compressed: snapshot.is_compressed(),
            mapped: snapshot.is_mapped(),
            shard: snapshot.shard().map(|s| (s.shard_id, s.shard_count)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_core::index::HubLabelIndex;
    use chl_ranking::Ranking;

    fn tiny_flat() -> FlatIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        FlatIndex::from_index(&HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        ))
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "chl-serve-index-test-{}-{:?}-{tag}.chl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn open_snapshot_and_reload_roll_the_generation() {
        let flat = tiny_flat();
        let path = temp_path("reload");
        flat.save(&path).unwrap();

        for mmap in [false, true] {
            let shared = SharedIndex::open(&path, mmap).unwrap();
            assert_eq!(shared.generation(), 0);
            assert_eq!(shared.uses_mmap(), mmap);
            let before = shared.snapshot();
            assert_eq!(before.num_vertices(), 3);
            assert_eq!(before.oracle().distance(0, 2), 2);
            assert!(!before.backend_name().is_empty());

            assert_eq!(shared.reload().unwrap(), 1);
            assert_eq!(shared.generation(), 1);
            // The old snapshot still answers after the swap.
            assert_eq!(before.oracle().distance(0, 2), 2);
            assert_eq!(shared.info().generation, 1);
            assert_eq!(shared.info().num_vertices, 3);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hot_hub_cache_matches_plain_answers_and_survives_reload() {
        let flat = tiny_flat();
        let path = temp_path("hot-hubs");
        flat.save(&path).unwrap();
        for mmap in [false, true] {
            let shared = SharedIndex::open_with(&path, mmap, 2).unwrap();
            let snap = shared.snapshot();
            assert_eq!(snap.hot_hubs(), 2);
            assert!(snap.cache_bytes() > 0);
            for u in 0..4 {
                for v in 0..4 {
                    assert_eq!(snap.oracle().distance(u, v), flat.query(u, v), "({u},{v})");
                }
            }
            // A reload rebuilds the cache with the configured k: the fresh
            // generation answers identically and still reports the cache.
            assert_eq!(shared.reload().unwrap(), 1);
            let snap = shared.snapshot();
            assert_eq!(snap.hot_hubs(), 2);
            assert_eq!(snap.oracle().distance(0, 2), 2);
        }
        // In-process construction keeps the cache configuration too.
        let shared = SharedIndex::from_loaded(&path, false, LoadedIndex::from_owned(flat, 3));
        assert_eq!(shared.snapshot().hot_hubs(), 3);
        shared.reload().unwrap();
        assert_eq!(shared.snapshot().hot_hubs(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_reload_keeps_the_old_index() {
        let flat = tiny_flat();
        let path = temp_path("corrupt");
        flat.save(&path).unwrap();
        let shared = SharedIndex::open(&path, false).unwrap();

        std::fs::write(&path, b"not a chl file").unwrap();
        assert!(shared.reload().is_err());
        assert_eq!(shared.generation(), 0);
        assert_eq!(shared.snapshot().oracle().distance(0, 2), 2);

        std::fs::remove_file(&path).unwrap();
        assert!(matches!(shared.reload(), Err(PersistError::Io(_))));
    }
}
