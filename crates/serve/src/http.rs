//! Minimal HTTP/1.1 adapter so `curl` can hit a running server without a
//! protocol client.
//!
//! A connection whose first bytes are not the binary [`MAGIC`] preamble
//! lands here. One request is parsed (header block capped at 8 KiB), one
//! plain-text response is written, and the connection closes — no
//! keep-alive, no chunking, nothing beyond what the three routes need:
//!
//! ```text
//! GET /distance?s=0&t=42   200 "17\n" | 200 "unreachable\n" | 400 (bad/missing ids)
//! GET /info                200 one "key value" line per field
//! GET /healthz             200 "ok\n"
//! ```
//!
//! The batching-and-latency path is the binary protocol; this adapter is a
//! debugging porthole and answers one query per TCP connection by design.
//!
//! [`MAGIC`]: crate::protocol::MAGIC

use std::io::{Read, Write};
use std::net::TcpStream;

use chl_graph::types::{VertexId, INFINITY};

use crate::index::SharedIndex;
use crate::server::ServerState;

/// Cap on the request head (request line + headers).
const MAX_HEAD: usize = 8 * 1024;

/// Serves one HTTP exchange on a connection whose initial bytes (already
/// read while sniffing the preamble) are in `head_start`.
pub(crate) fn serve_http(
    mut stream: TcpStream,
    head_start: &[u8],
    shared: &SharedIndex,
    state: &ServerState,
) -> std::io::Result<()> {
    let mut head = head_start.to_vec();
    let mut chunk = [0u8; 1024];
    while !head_complete(&head) {
        if head.len() > MAX_HEAD {
            return respond(&mut stream, 431, "request header block too large\n");
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // client left mid-request
            Ok(n) => head.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.is_shutdown() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    let text = String::from_utf8_lossy(&head);
    let request_line = text.lines().next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(&mut stream, 400, "malformed request line\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "only GET is supported\n");
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => respond(&mut stream, 200, "ok\n"),
        "/info" => {
            let info = shared.info();
            let body = format!(
                "vertices {}\nlabels {}\ngeneration {}\ncompressed {}\nmapped {}\nbackend {}\n",
                info.num_vertices,
                info.total_labels,
                info.generation,
                info.compressed,
                info.mapped,
                shared.snapshot().backend_name(),
            );
            respond(&mut stream, 200, &body)
        }
        "/distance" => {
            let (s, t) = match (param(query, "s"), param(query, "t")) {
                (Some(s), Some(t)) => (s, t),
                _ => return respond(&mut stream, 400, "need numeric query parameters s and t\n"),
            };
            let snapshot = shared.snapshot();
            let n = snapshot.num_vertices();
            if s as usize >= n || t as usize >= n {
                let bad = if (s as usize) < n { t } else { s };
                let body = format!("vertex id {bad} out of range for {n} vertices\n");
                return respond(&mut stream, 400, &body);
            }
            let d = snapshot.oracle().distance(s, t);
            let body = if d == INFINITY {
                "unreachable\n".to_string()
            } else {
                format!("{d}\n")
            };
            respond(&mut stream, 200, &body)
        }
        _ => respond(&mut stream, 404, "no such route\n"),
    }
}

/// `true` once the header block terminator has arrived.
fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

/// Extracts a `u32` query parameter by name from `a=1&b=2` syntax.
fn param(query: &str, name: &str) -> Option<VertexId> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        if k == name {
            v.parse::<VertexId>().ok()
        } else {
            None
        }
    })
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parameters_parse_strictly() {
        assert_eq!(param("s=3&t=9", "s"), Some(3));
        assert_eq!(param("s=3&t=9", "t"), Some(9));
        assert_eq!(param("s=3&t=9", "u"), None);
        assert_eq!(param("s=x", "s"), None);
        assert_eq!(param("", "s"), None);
        assert_eq!(param("s", "s"), None);
    }

    #[test]
    fn head_terminator_detection() {
        assert!(head_complete(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(head_complete(b"GET / HTTP/1.0\n\n"));
        assert!(!head_complete(b"GET / HTTP/1.1\r\n"));
    }
}
