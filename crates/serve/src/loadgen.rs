//! The load generator behind `chl bench-serve`: N concurrent closed-loop
//! client connections, fixed duration, throughput + tail latencies.
//!
//! Each connection keeps a window of [`BenchOptions::pipeline`] QUERY frames
//! in flight ([`BenchOptions::batch`] pairs per frame, drawn round-robin
//! from a per-connection seeded pool): it reads one response, records that
//! frame's send→receive latency, and immediately sends a replacement frame
//! until the deadline passes, then drains the window. Percentiles are
//! nearest-rank over the merged per-frame latencies of every connection, so
//! the p999 of a 4-connection run reflects the single slowest requests
//! anywhere — the serving-latency scoreboard every later hot-path PR is
//! measured against.
//!
//! The generator only ever sends in-range ids (it sizes its workload from
//! the server's INFO frame), so any error frame counts as a bench `error` —
//! a healthy run reports zero.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use chl_query::workload::random_pairs;

use crate::client::{Client, ClientError};

/// Tunables for one bench run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Concurrent client connections (each on its own thread).
    pub connections: usize,
    /// How long to keep the window full before draining.
    pub duration: Duration,
    /// QUERY frames kept in flight per connection.
    pub pipeline: usize,
    /// Pairs per QUERY frame.
    pub batch: usize,
    /// Base seed; connection `i` draws its workload from `seed + i`.
    pub seed: u64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            connections: 4,
            duration: Duration::from_secs(2),
            pipeline: 8,
            batch: 1,
            seed: 42,
        }
    }
}

/// Size of each connection's pre-generated pair pool (cycled round-robin,
/// so the bench never stalls on workload generation mid-measurement).
const POOL_PAIRS: usize = 1 << 14;

/// What one bench run measured.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    /// Connections that ran.
    pub connections: usize,
    /// Frames in flight per connection.
    pub pipeline: usize,
    /// Pairs per frame.
    pub batch: usize,
    /// Wall-clock time of the whole run (connect to last drain).
    pub elapsed: Duration,
    /// QUERY frames answered.
    pub requests: u64,
    /// Individual distances received.
    pub queries: u64,
    /// Error frames received (0 in a healthy run).
    pub errors: u64,
    /// Per-frame send→receive latencies, sorted ascending, in nanoseconds.
    pub latencies_sorted_ns: Vec<u64>,
}

impl BenchSummary {
    /// Distances per second over the whole run.
    pub fn throughput_qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Nearest-rank latency percentile, `q` in `(0, 1]`.
    pub fn latency_percentile(&self, q: f64) -> Duration {
        let sorted = &self.latencies_sorted_ns;
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Duration::from_nanos(sorted.get(rank - 1).copied().unwrap_or(0))
    }

    /// Mean per-frame latency.
    pub fn latency_mean(&self) -> Duration {
        if self.latencies_sorted_ns.is_empty() {
            return Duration::ZERO;
        }
        let total: u128 = self.latencies_sorted_ns.iter().map(|&n| n as u128).sum();
        Duration::from_nanos((total / self.latencies_sorted_ns.len() as u128) as u64)
    }

    /// Slowest observed frame.
    pub fn latency_max(&self) -> Duration {
        Duration::from_nanos(self.latencies_sorted_ns.last().copied().unwrap_or(0))
    }

    /// Renders the stable `key:   value` report `chl bench-serve` prints
    /// (and the lifecycle tests parse).
    pub fn render(&self) -> String {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        format!(
            "connections:    {}\n\
             pipeline:       {} in-flight x {} pairs/frame\n\
             duration:       {:.2?}\n\
             requests:       {}\n\
             queries:        {}\n\
             errors:         {}\n\
             throughput:     {:.0} queries/s\n\
             latency mean:   {:.3} us\n\
             latency p50:    {:.3} us\n\
             latency p99:    {:.3} us\n\
             latency p999:   {:.3} us\n\
             latency max:    {:.3} us",
            self.connections,
            self.pipeline,
            self.batch,
            self.elapsed,
            self.requests,
            self.queries,
            self.errors,
            self.throughput_qps(),
            us(self.latency_mean()),
            us(self.latency_percentile(0.50)),
            us(self.latency_percentile(0.99)),
            us(self.latency_percentile(0.999)),
            us(self.latency_max()),
        )
    }

    /// Renders the same figures as [`render`](Self::render) as a single
    /// JSON object on one line, for `chl bench-serve --json` and the
    /// snapshot script (`scripts/bench_snapshot.sh`). Latencies are in
    /// microseconds, matching the text report.
    pub fn render_json(&self) -> String {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        format!(
            "{{\"connections\":{},\"pipeline\":{},\"batch\":{},\
             \"elapsed_ms\":{:.3},\"requests\":{},\"queries\":{},\
             \"errors\":{},\"throughput_qps\":{:.0},\
             \"latency_us\":{{\"mean\":{:.3},\"p50\":{:.3},\"p99\":{:.3},\
             \"p999\":{:.3},\"max\":{:.3}}}}}",
            self.connections,
            self.pipeline,
            self.batch,
            self.elapsed.as_secs_f64() * 1e3,
            self.requests,
            self.queries,
            self.errors,
            self.throughput_qps(),
            us(self.latency_mean()),
            us(self.latency_percentile(0.50)),
            us(self.latency_percentile(0.99)),
            us(self.latency_percentile(0.999)),
            us(self.latency_max()),
        )
    }
}

/// What one connection thread measured.
struct ConnResult {
    latencies_ns: Vec<u64>,
    requests: u64,
    queries: u64,
    errors: u64,
}

/// Runs the full bench against a serving address.
pub fn run_bench(addr: SocketAddr, opts: &BenchOptions) -> Result<BenchSummary, ClientError> {
    let connections = opts.connections.max(1);
    let pipeline = opts.pipeline.max(1);
    let batch = opts.batch.max(1);

    let start = Instant::now();
    let deadline = start + opts.duration;
    let results: Vec<Result<ConnResult, ClientError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for i in 0..connections {
            let seed = opts.seed.wrapping_add(i as u64);
            handles
                .push(scope.spawn(move || connection_loop(addr, pipeline, batch, seed, deadline)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(ClientError::Io(std::io::Error::other(
                    "bench connection thread panicked",
                ))),
            })
            .collect()
    });
    let elapsed = start.elapsed();

    let mut latencies = Vec::new();
    let mut requests = 0u64;
    let mut queries = 0u64;
    let mut errors = 0u64;
    for result in results {
        let conn = result?;
        latencies.extend(conn.latencies_ns);
        requests += conn.requests;
        queries += conn.queries;
        errors += conn.errors;
    }
    latencies.sort_unstable();

    Ok(BenchSummary {
        connections,
        pipeline,
        batch,
        elapsed,
        requests,
        queries,
        errors,
        latencies_sorted_ns: latencies,
    })
}

fn connection_loop(
    addr: SocketAddr,
    pipeline: usize,
    batch: usize,
    seed: u64,
    deadline: Instant,
) -> Result<ConnResult, ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(Some(Duration::from_secs(10)))?;
    let info = client.info()?;
    let n = info.num_vertices as usize;
    if n == 0 {
        return Err(ClientError::Io(std::io::Error::other(
            "served index has no vertices to query",
        )));
    }

    let pool = random_pairs(n, POOL_PAIRS.max(batch), seed).pairs;
    let mut cursor = 0usize;
    let mut next_frame = || {
        let mut pairs = Vec::with_capacity(batch);
        for _ in 0..batch {
            // Round-robin over the pool; the pool is sized >= batch.
            pairs.push(pool.get(cursor).copied().unwrap_or((0, 0)));
            cursor = (cursor + 1) % pool.len().max(1);
        }
        pairs
    };

    let mut result = ConnResult {
        latencies_ns: Vec::new(),
        requests: 0,
        queries: 0,
        errors: 0,
    };
    let mut inflight: VecDeque<Instant> = VecDeque::with_capacity(pipeline);

    // Prime the window.
    for _ in 0..pipeline {
        let pairs = next_frame();
        client.send_query(&pairs)?;
        inflight.push_back(Instant::now());
    }

    // Steady state: one response in, one replacement out.
    while let Some(sent_at) = inflight.pop_front() {
        match client.read_distances() {
            Ok(ds) => {
                result
                    .latencies_ns
                    .push(sent_at.elapsed().as_nanos() as u64);
                result.requests += 1;
                result.queries += ds.len() as u64;
            }
            Err(ClientError::Server { .. }) => {
                result.errors += 1;
            }
            Err(other) => return Err(other),
        }
        if Instant::now() < deadline {
            let pairs = next_frame();
            client.send_query(&pairs)?;
            inflight.push_back(Instant::now());
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(latencies_ns: Vec<u64>) -> BenchSummary {
        let mut latencies_sorted_ns = latencies_ns;
        latencies_sorted_ns.sort_unstable();
        BenchSummary {
            connections: 2,
            pipeline: 4,
            batch: 1,
            elapsed: Duration::from_secs(1),
            requests: latencies_sorted_ns.len() as u64,
            queries: latencies_sorted_ns.len() as u64,
            errors: 0,
            latencies_sorted_ns,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank_and_stay_ordered() {
        let s = summary((1..=1000).collect());
        assert_eq!(s.latency_percentile(0.50), Duration::from_nanos(500));
        assert_eq!(s.latency_percentile(0.99), Duration::from_nanos(990));
        assert_eq!(s.latency_percentile(0.999), Duration::from_nanos(999));
        assert_eq!(s.latency_max(), Duration::from_nanos(1000));
        assert!(s.latency_percentile(0.50) <= s.latency_percentile(0.999));
        assert_eq!(s.throughput_qps().round() as u64, 1000);
    }

    #[test]
    fn empty_run_reports_zeroes_not_panics() {
        let s = summary(Vec::new());
        assert_eq!(s.latency_percentile(0.5), Duration::ZERO);
        assert_eq!(s.latency_mean(), Duration::ZERO);
        assert_eq!(s.latency_max(), Duration::ZERO);
    }

    #[test]
    fn render_contains_the_parseable_keys() {
        let text = summary(vec![10, 20, 30]).render();
        for key in [
            "connections:",
            "throughput:",
            "latency p50:",
            "latency p99:",
            "latency p999:",
            "errors:",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
    }
}
