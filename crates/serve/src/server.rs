//! The serving loop: one acceptor thread, a fixed worker pool, per-connection
//! request batching.
//!
//! ```text
//!            ┌───────────┐   mpsc    ┌──────────────┐
//!  accept()──►  acceptor  ├──────────►  worker 0..N  │ one connection per
//!            │ (nonblock) │           │ (blocking IO) │ worker at a time
//!            └───────────┘           └──────┬───────┘
//!                                           │ coalesces every QUERY frame
//!                                           ▼ available in one read
//!                              DistanceOracle::distances(batch)
//!                                 over SharedIndex::snapshot()
//! ```
//!
//! Each worker drains whatever complete frames one `read` produced, answers
//! every contiguous run of QUERY frames with a **single** batched
//! [`DistanceOracle::distances`] call (which fans out on the rayon pool),
//! and writes the responses back in request order with one `write`. A
//! pipelining client therefore gets batching for free; a one-at-a-time
//! client gets single-query latency. Control frames (INFO / RELOAD /
//! SHUTDOWN) are answered in order between batches.
//!
//! Shutdown is protocol-driven (no signals): a SHUTDOWN frame — or
//! [`ServerHandle::signal_shutdown`] from the owning process — stops the
//! acceptor, after which workers finish the frames already read on their
//! current connections and exit. Reload never stops anything: handlers
//! answer each batch from the [`SharedIndex`] snapshot they took for it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use chl_core::oracle::DistanceOracle;
use chl_core::paths::PathError;
use chl_graph::types::{Distance, VertexId};

use crate::http;
use crate::index::SharedIndex;
use crate::protocol::{
    decode_request, encode_response, ErrorCode, FrameBuffer, Request, Response, WireError,
    DEFAULT_MAX_FRAME, MAGIC,
};

/// How often the nonblocking acceptor polls for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Read timeout on connections; each expiry re-checks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// Upper bound on one blocked response write before the connection is
/// declared dead (a client that stopped reading must not pin a worker).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Per-read chunk size: large enough to swallow a deep pipeline in one read.
const READ_CHUNK: usize = 64 * 1024;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads handling connections (the batched query fan-out
    /// additionally uses the process-wide rayon pool). At least 1.
    pub threads: usize,
    /// Cap on one frame's payload length in bytes.
    pub max_frame: u32,
    /// Cap on pairs per [`DistanceOracle::distances`] call; larger coalesced
    /// batches are answered in chunks of this size.
    pub max_batch: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 4,
            max_frame: DEFAULT_MAX_FRAME,
            max_batch: 1 << 16,
        }
    }
}

/// Monotonic serving counters, updated lock-free by every worker.
///
/// All loads/stores are `Relaxed`: these are statistics — each counter is
/// independently monotonic and nothing synchronizes through them.
#[derive(Debug, Default)]
pub struct ServeStats {
    connections: AtomicU64,
    http_requests: AtomicU64,
    frames: AtomicU64,
    queries: AtomicU64,
    batch_calls: AtomicU64,
    max_coalesced: AtomicU64,
    error_frames: AtomicU64,
    reloads: AtomicU64,
}

/// One coherent-enough copy of the counters (see [`ServeStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted (binary and HTTP alike).
    pub connections: u64,
    /// HTTP requests served by the adapter.
    pub http_requests: u64,
    /// Binary request frames decoded.
    pub frames: u64,
    /// Individual distance queries answered.
    pub queries: u64,
    /// `DistanceOracle::distances` invocations (batches).
    pub batch_calls: u64,
    /// Largest number of pipelined QUERY frames coalesced into one batch.
    pub max_coalesced: u64,
    /// Typed error frames sent.
    pub error_frames: u64,
    /// Successful index reloads.
    pub reloads: u64,
}

impl ServeStats {
    fn add(counter: &AtomicU64, n: u64) {
        // ORDERING: independent monotonic statistics counter; no other
        // memory is published through it (see the type-level comment).
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn raise_max(counter: &AtomicU64, candidate: u64) {
        // ORDERING: running-maximum statistics counter; no other memory is
        // published through it (see the type-level comment).
        counter.fetch_max(candidate, Ordering::Relaxed);
    }

    /// Copies every counter. Individually exact; mutually unordered.
    pub fn snapshot(&self) -> StatsSnapshot {
        // ORDERING: statistics reads; each counter is individually exact
        // and nothing synchronizes through them (see the type-level
        // comment).
        let get = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        StatsSnapshot {
            connections: get(&self.connections),
            http_requests: get(&self.http_requests),
            frames: get(&self.frames),
            queries: get(&self.queries),
            batch_calls: get(&self.batch_calls),
            max_coalesced: get(&self.max_coalesced),
            error_frames: get(&self.error_frames),
            reloads: get(&self.reloads),
        }
    }
}

/// State shared by the acceptor, the workers and external handles.
#[derive(Debug)]
pub struct ServerState {
    shutdown: AtomicBool,
    stats: ServeStats,
}

impl ServerState {
    /// `true` once shutdown was requested (protocol frame or handle).
    pub fn is_shutdown(&self) -> bool {
        // ORDERING: a latch flag polled by acceptor and workers; the only
        // consequence of a stale read is one extra poll interval.
        self.shutdown.load(Ordering::Relaxed)
    }

    fn request_shutdown(&self) {
        // ORDERING: see is_shutdown — monotonic latch, no data published.
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A cloneable remote control for a bound server: shutdown + stats.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The address the server actually listens on (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop: the acceptor closes, workers finish the
    /// frames already read on their current connections and exit.
    pub fn signal_shutdown(&self) {
        self.state.request_shutdown();
    }

    /// `true` once shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.is_shutdown()
    }

    /// Current serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.state.stats.snapshot()
    }
}

/// A bound-but-not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<SharedIndex>,
    opts: ServeOptions,
    state: Arc<ServerState>,
    addr: SocketAddr,
}

/// A server running on its own thread, as spawned by [`Server::spawn`].
#[derive(Debug)]
pub struct SpawnedServer {
    handle: ServerHandle,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedServer {
    /// The remote control (addr, shutdown, stats).
    pub fn handle(&self) -> &ServerHandle {
        &self.handle
    }

    /// Signals shutdown and waits for the serving thread to exit, returning
    /// the final counters.
    pub fn shutdown(self) -> std::io::Result<StatsSnapshot> {
        self.handle.signal_shutdown();
        self.join()
    }

    /// Waits for the server to exit on its own (e.g. a protocol SHUTDOWN
    /// frame), returning the final counters.
    pub fn join(self) -> std::io::Result<StatsSnapshot> {
        match self.join.join() {
            Ok(result) => result.map(|()| self.handle.stats()),
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over a shared index.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        shared: Arc<SharedIndex>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared,
            opts: ServeOptions {
                threads: opts.threads.max(1),
                max_frame: opts.max_frame,
                max_batch: opts.max_batch.max(1),
            },
            state: Arc::new(ServerState {
                shutdown: AtomicBool::new(false),
                stats: ServeStats::default(),
            }),
            addr,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port picked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads while [`Server::run`]
    /// blocks this one.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            state: Arc::clone(&self.state),
        }
    }

    /// Runs acceptor + workers on the calling thread until shutdown is
    /// requested, then drains and joins the workers.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            shared,
            opts,
            state,
            addr: _,
        } = self;
        listener.set_nonblocking(true)?;

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(opts.threads);
        for i in 0..opts.threads {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            let state = Arc::clone(&state);
            let opts = opts.clone();
            let worker = std::thread::Builder::new()
                .name(format!("chl-serve-{i}"))
                .spawn(move || worker_loop(&rx, &shared, &opts, &state))?;
            workers.push(worker);
        }

        while !state.is_shutdown() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    ServeStats::add(&state.stats.connections, 1);
                    if tx.send(stream).is_err() {
                        break; // all workers gone (cannot happen before shutdown)
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (e.g. fd pressure): back off
                    // instead of spinning or dying.
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }

        // Closing the channel wakes idle workers; busy ones notice the flag
        // at their next read-timeout tick.
        drop(tx);
        for worker in workers {
            // A worker panic is a bug, but the acceptor still reports an
            // orderly error instead of propagating the panic.
            if worker.join().is_err() {
                return Err(std::io::Error::other("serve worker panicked"));
            }
        }
        Ok(())
    }

    /// Moves the server onto a background thread; the returned handle
    /// controls and observes it.
    pub fn spawn(self) -> std::io::Result<SpawnedServer> {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("chl-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(SpawnedServer { handle, join })
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    shared: &SharedIndex,
    opts: &ServeOptions,
    state: &ServerState,
) {
    loop {
        // Holding the lock only for the recv keeps the other workers free to
        // pick up connections while this one serves.
        let next = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                // A worker panicked while holding the lock; the receiver
                // itself is still sound.
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv_timeout(READ_POLL)
        };
        match next {
            Ok(stream) => {
                // Connection-level IO errors (abrupt client disconnects,
                // resets) end that connection only, never the worker.
                let _ = serve_connection(stream, shared, opts, state);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if state.is_shutdown() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Outcome of processing one flush of frames. (Framing-loss closes return
/// directly from the read loop; they never reach frame processing.)
enum Disposition {
    /// Keep reading from this connection.
    Continue,
    /// Close and stop the whole server (SHUTDOWN frame acknowledged).
    ShutdownServer,
}

fn serve_connection(
    mut stream: TcpStream,
    shared: &SharedIndex,
    opts: &ServeOptions,
    state: &ServerState,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;

    // Preamble: 4 bytes decide binary protocol vs the HTTP adapter.
    let mut head = Vec::with_capacity(4);
    let mut chunk = vec![0u8; READ_CHUNK];
    while head.len() < 4 {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // silent connect-and-close
            Ok(n) => head.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if would_block(&e) => {
                if state.is_shutdown() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if head.get(..4) != Some(MAGIC.as_slice()) {
        ServeStats::add(&state.stats.http_requests, 1);
        return http::serve_http(stream, &head, shared, state);
    }

    let mut fb = FrameBuffer::new(opts.max_frame);
    fb.extend(head.get(4..).unwrap_or_default());
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    loop {
        // Drain every complete frame the buffer holds right now.
        loop {
            match fb.next_payload() {
                Ok(Some(payload)) => payloads.push(payload),
                Ok(None) => break,
                Err(wire) => {
                    // Oversized declared length: answer typed, then close —
                    // the stream cannot be re-synchronized.
                    let mut out = Vec::new();
                    if !payloads.is_empty() {
                        process_frames(&payloads, shared, opts, state, &mut out);
                        payloads.clear();
                    }
                    encode_response(&wire_error_response(&wire), &mut out);
                    ServeStats::add(&state.stats.error_frames, 1);
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
            }
        }
        if !payloads.is_empty() {
            let mut out = Vec::new();
            let disposition = process_frames(&payloads, shared, opts, state, &mut out);
            payloads.clear();
            stream.write_all(&out)?;
            match disposition {
                Disposition::Continue => {}
                Disposition::ShutdownServer => {
                    state.request_shutdown();
                    return Ok(());
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => fb.extend(chunk.get(..n).unwrap_or_default()),
            Err(e) if would_block(&e) => {
                if state.is_shutdown() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn wire_error_response(wire: &WireError) -> Response {
    let code = match wire {
        WireError::Oversized { .. } => ErrorCode::Oversized,
        WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
        WireError::Truncated | WireError::TrailingBytes => ErrorCode::Malformed,
    };
    Response::Error {
        code,
        detail: 0,
        message: wire.to_string(),
    }
}

/// Answers every frame of one flush in order, coalescing contiguous QUERY
/// runs into batched oracle calls. Responses are appended to `out`.
fn process_frames(
    payloads: &[Vec<u8>],
    shared: &SharedIndex,
    opts: &ServeOptions,
    state: &ServerState,
    out: &mut Vec<u8>,
) -> Disposition {
    ServeStats::add(&state.stats.frames, payloads.len() as u64);
    let mut iter = payloads.iter().peekable();
    while let Some(payload) = iter.next() {
        let request = decode_request(payload);
        match request {
            Ok(Request::Query(first)) => {
                // Collect the contiguous run of QUERY frames starting here.
                let mut run: Vec<Vec<(VertexId, VertexId)>> = vec![first];
                while let Some(next) = iter.peek() {
                    match decode_request(next) {
                        Ok(Request::Query(pairs)) => {
                            run.push(pairs);
                            iter.next();
                        }
                        _ => break,
                    }
                }
                answer_query_run(&run, shared, opts, state, out);
            }
            Ok(Request::Path(u, v)) => {
                answer_path(u, v, shared, opts, state, out);
            }
            Ok(Request::Matrix { sources, targets }) => {
                answer_matrix(&sources, &targets, shared, opts, state, out);
            }
            Ok(Request::Info) => {
                encode_response(&Response::Info(shared.info()), out);
            }
            Ok(Request::Reload) => match shared.reload() {
                Ok(generation) => {
                    ServeStats::add(&state.stats.reloads, 1);
                    encode_response(&Response::Ok { generation }, out);
                }
                Err(e) => {
                    ServeStats::add(&state.stats.error_frames, 1);
                    encode_response(
                        &Response::Error {
                            code: ErrorCode::ReloadFailed,
                            detail: 0,
                            message: e.to_string(),
                        },
                        out,
                    );
                }
            },
            Ok(Request::Shutdown) => {
                encode_response(
                    &Response::Ok {
                        generation: shared.generation(),
                    },
                    out,
                );
                return Disposition::ShutdownServer;
            }
            Err(wire) => {
                ServeStats::add(&state.stats.error_frames, 1);
                encode_response(&wire_error_response(&wire), out);
            }
        }
    }
    Disposition::Continue
}

/// Why one frame of a run fails instead of contributing to the batch.
enum FrameError {
    /// An endpoint is outside `0..n`.
    OutOfRange(VertexId),
    /// An in-range endpoint is owned by another shard (shard files only).
    Foreign(VertexId),
}

/// Answers one coalesced run of QUERY frames: every answerable frame's pairs
/// go into one batched `distances` call (chunked at `max_batch`); frames
/// naming an out-of-range id — or, on a shard file, an id owned by another
/// shard — answer a typed error frame instead, without failing their
/// neighbors. Range is checked before ownership, so out-of-range frames get
/// byte-identical answers from a shard and from a whole-index server.
fn answer_query_run(
    run: &[Vec<(VertexId, VertexId)>],
    shared: &SharedIndex,
    opts: &ServeOptions,
    state: &ServerState,
    out: &mut Vec<u8>,
) {
    // One snapshot for the whole run: a concurrent reload never changes
    // answers mid-batch, and in-flight batches keep the old generation
    // alive until they finish.
    let snapshot = shared.snapshot();
    let oracle = snapshot.oracle();
    let n = oracle.num_vertices();
    let shard = snapshot.shard();

    // Frame dispositions: Ok(range into the batch) or the typed failure.
    let mut batch: Vec<(VertexId, VertexId)> = Vec::new();
    let mut frames: Vec<Result<std::ops::Range<usize>, FrameError>> = Vec::with_capacity(run.len());
    for pairs in run {
        let bad = pairs
            .iter()
            .find(|&&(u, v)| u as usize >= n || v as usize >= n)
            .map(|&(u, v)| if (u as usize) < n { v } else { u });
        if let Some(id) = bad {
            frames.push(Err(FrameError::OutOfRange(id)));
            continue;
        }
        if let Some(spec) = shard {
            // Every id is in range here, so ownership is the only question.
            let foreign = pairs.iter().find_map(|&(u, v)| {
                if !spec.owns(u) {
                    Some(u)
                } else if !spec.owns(v) {
                    Some(v)
                } else {
                    None
                }
            });
            if let Some(id) = foreign {
                frames.push(Err(FrameError::Foreign(id)));
                continue;
            }
        }
        let start = batch.len();
        batch.extend_from_slice(pairs);
        frames.push(Ok(start..batch.len()));
    }

    let answers = batched_distances(oracle, &batch, opts.max_batch, state);
    ServeStats::raise_max(&state.stats.max_coalesced, run.len() as u64);
    ServeStats::add(&state.stats.queries, batch.len() as u64);

    for frame in frames {
        match frame {
            Ok(range) => {
                let ds = answers.get(range).unwrap_or_default();
                encode_response(&Response::Distances(ds.to_vec()), out);
            }
            Err(FrameError::OutOfRange(id)) => {
                ServeStats::add(&state.stats.error_frames, 1);
                encode_response(
                    &Response::Error {
                        code: ErrorCode::VertexOutOfRange,
                        detail: id as u64,
                        message: format!("vertex id {id} out of range for {n} vertices"),
                    },
                    out,
                );
            }
            Err(FrameError::Foreign(id)) => {
                ServeStats::add(&state.stats.error_frames, 1);
                let (sid, cnt) = shard.map(|s| (s.shard_id, s.shard_count)).unwrap_or((0, 0));
                encode_response(
                    &Response::Error {
                        code: ErrorCode::NotThisShard,
                        detail: id as u64,
                        message: format!(
                            "vertex id {id} is owned by another shard (this is shard {sid} of {cnt})"
                        ),
                    },
                    out,
                );
            }
        }
    }
}

/// Emits one typed error frame, counted in the stats.
fn error_frame(
    code: ErrorCode,
    detail: u64,
    message: String,
    state: &ServerState,
    out: &mut Vec<u8>,
) {
    ServeStats::add(&state.stats.error_frames, 1);
    encode_response(
        &Response::Error {
            code,
            detail,
            message,
        },
        out,
    );
}

fn not_this_shard_frame(
    id: VertexId,
    shard: Option<&chl_core::persist::ShardSpec>,
    state: &ServerState,
    out: &mut Vec<u8>,
) {
    let (sid, cnt) = shard.map(|s| (s.shard_id, s.shard_count)).unwrap_or((0, 0));
    error_frame(
        ErrorCode::NotThisShard,
        id as u64,
        format!("vertex id {id} is owned by another shard (this is shard {sid} of {cnt})"),
        state,
        out,
    );
}

/// Answers one PATH frame. Range is checked before shard ownership — the
/// QUERY discipline — then the generation's parent records reconstruct the
/// walk. A path too long for the frame cap answers a typed Oversized error
/// and the connection keeps serving: unlike an oversized *request*, framing
/// is never lost on the response side.
fn answer_path(
    u: VertexId,
    v: VertexId,
    shared: &SharedIndex,
    opts: &ServeOptions,
    state: &ServerState,
    out: &mut Vec<u8>,
) {
    let snapshot = shared.snapshot();
    let n = snapshot.num_vertices();
    if let Some(id) = [u, v].into_iter().find(|&id| id as usize >= n) {
        return error_frame(
            ErrorCode::VertexOutOfRange,
            id as u64,
            format!("vertex id {id} out of range for {n} vertices"),
            state,
            out,
        );
    }
    if let Some(id) = snapshot.foreign_endpoint(u, v) {
        return not_this_shard_frame(id, snapshot.shard(), state, out);
    }
    match snapshot.path(u, v) {
        Ok(hops) => {
            let vertices = hops.unwrap_or_default();
            let payload = 1 + 4 + 4 * vertices.len();
            if payload > opts.max_frame as usize {
                return error_frame(
                    ErrorCode::Oversized,
                    vertices.len() as u64,
                    format!(
                        "path of {} vertices exceeds the {}-byte frame cap",
                        vertices.len(),
                        opts.max_frame
                    ),
                    state,
                    out,
                );
            }
            ServeStats::add(&state.stats.queries, 1);
            encode_response(&Response::Path(vertices), out);
        }
        // An interior chain vertex owned elsewhere (possible on shard files
        // even when both endpoints are owned here).
        Err(PathError::NotThisShard { vertex }) => {
            not_this_shard_frame(vertex, snapshot.shard(), state, out);
        }
        // No path section, or parent records that cannot witness the pair:
        // distances still serve, reconstruction does not.
        Err(e) => error_frame(ErrorCode::NoPathData, 0, e.to_string(), state, out),
    }
}

/// Answers one MATRIX frame through the hub-pivoted block kernel. Range is
/// checked over sources then targets (first offender wins), then shard
/// ownership; a block too large for the frame cap answers a typed Oversized
/// error without closing the connection.
fn answer_matrix(
    sources: &[VertexId],
    targets: &[VertexId],
    shared: &SharedIndex,
    opts: &ServeOptions,
    state: &ServerState,
    out: &mut Vec<u8>,
) {
    let snapshot = shared.snapshot();
    let oracle = snapshot.oracle();
    let n = oracle.num_vertices();
    if let Some(&id) = sources.iter().chain(targets).find(|&&id| id as usize >= n) {
        return error_frame(
            ErrorCode::VertexOutOfRange,
            id as u64,
            format!("vertex id {id} out of range for {n} vertices"),
            state,
            out,
        );
    }
    if let Some(spec) = snapshot.shard() {
        if let Some(&id) = sources.iter().chain(targets).find(|&&id| !spec.owns(id)) {
            return not_this_shard_frame(id, snapshot.shard(), state, out);
        }
    }
    let cells = sources.len() * targets.len();
    let payload = 1 + 4 + 8 * cells;
    if payload > opts.max_frame as usize {
        return error_frame(
            ErrorCode::Oversized,
            cells as u64,
            format!(
                "matrix of {cells} cells exceeds the {}-byte frame cap",
                opts.max_frame
            ),
            state,
            out,
        );
    }
    ServeStats::add(&state.stats.queries, cells as u64);
    ServeStats::add(&state.stats.batch_calls, 1);
    encode_response(&Response::Matrix(oracle.matrix(sources, targets)), out);
}

/// One `distances` call per `max_batch` pairs, counted in the stats.
fn batched_distances(
    oracle: &dyn DistanceOracle,
    pairs: &[(VertexId, VertexId)],
    max_batch: usize,
    state: &ServerState,
) -> Vec<Distance> {
    if pairs.is_empty() {
        return Vec::new();
    }
    let mut answers = Vec::with_capacity(pairs.len());
    for chunk in pairs.chunks(max_batch.max(1)) {
        ServeStats::add(&state.stats.batch_calls, 1);
        answers.extend(oracle.distances(chunk));
    }
    answers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_and_clamp() {
        let opts = ServeOptions::default();
        assert!(opts.threads >= 1);
        assert!(opts.max_batch >= 1);
        assert_eq!(opts.max_frame, DEFAULT_MAX_FRAME);
    }

    #[test]
    fn stats_snapshot_reports_counters() {
        let stats = ServeStats::default();
        ServeStats::add(&stats.queries, 3);
        ServeStats::raise_max(&stats.max_coalesced, 5);
        ServeStats::raise_max(&stats.max_coalesced, 2);
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.max_coalesced, 5);
        assert_eq!(snap.connections, 0);
    }
}
