//! `chl-serve`: the long-running serving tier for `.chl` indexes.
//!
//! The rest of the workspace builds and persists hub labelings; this crate
//! keeps one loaded and answers queries over TCP until told to stop —
//! turning the one-shot `chl query` process launch into a measurable
//! service. Four pieces:
//!
//! * [`protocol`] — the length-prefixed binary wire format (typed error
//!   frames, pipelining-friendly in-order responses) plus the preamble that
//!   routes non-protocol connections to a minimal HTTP `GET` adapter
//!   ([`http`], curl-ability only).
//! * [`index`] — [`SharedIndex`]: the loaded [`FlatIndex`] / [`MmapIndex`]
//!   behind `RwLock<Arc<..>>`, with validate-then-swap reloads that never
//!   drop in-flight requests and never replace a serving index with a
//!   corrupt file.
//! * [`server`] — acceptor + worker pool; each worker coalesces the QUERY
//!   frames a connection pipelined into one batched
//!   [`DistanceOracle::distances`] call over the current snapshot.
//! * [`router`] — the `chl route` scatter-gather tier in front of a cluster
//!   of shard servers (one `.chl` v3 shard file each): same client protocol
//!   on both sides, per-query QDOL placement, typed per-frame degradation
//!   when a backend dies.
//! * [`client`] / [`loadgen`] — a blocking protocol client and the
//!   `chl bench-serve` engine reporting throughput and p50/p99/p999.
//!
//! ```no_run
//! use std::sync::Arc;
//! use chl_serve::{SharedIndex, ServeOptions, Server};
//!
//! let shared = Arc::new(SharedIndex::open("graph.chl", /* mmap */ true)?);
//! let server = Server::bind("127.0.0.1:0", shared, ServeOptions::default())?;
//! println!("listening on {}", server.local_addr());
//! server.run()?; // blocks until a SHUTDOWN frame (or handle signal)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`FlatIndex`]: chl_core::flat::FlatIndex
//! [`MmapIndex`]: chl_core::mapped::MmapIndex
//! [`DistanceOracle::distances`]: chl_core::oracle::DistanceOracle::distances

#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod index;
pub mod loadgen;
pub mod protocol;
pub mod router;
pub mod server;

pub use client::{Client, ClientError};
pub use index::{LoadedIndex, SharedIndex};
pub use loadgen::{run_bench, BenchOptions, BenchSummary};
pub use protocol::{ErrorCode, Request, Response, ServerInfo};
pub use router::{
    ClusterView, Router, RouterError, RouterHandle, RouterOptions, RouterStatsSnapshot,
    SpawnedRouter,
};
pub use server::{ServeOptions, Server, ServerHandle, SpawnedServer, StatsSnapshot};
