//! The `chl serve` wire protocol: little-endian, length-prefixed frames.
//!
//! A connection opens with a 4-byte preamble. [`MAGIC`] (`CHL1`) selects the
//! binary protocol below; anything else is handed to the HTTP/1.1 adapter
//! (`GET /distance?s=..&t=..` for curl-ability, see [`crate::http`]). After
//! the preamble both directions speak the same framing:
//!
//! ```text
//! frame   := len:u32le payload[len]          (len <= the server's max_frame)
//! payload := opcode:u8 body
//!
//! requests                                   responses
//!   0x01 QUERY  count:u32le (u:u32le v:u32le)*   0x81 DISTANCES count:u32le (d:u64le)*
//!   0x02 INFO   (empty)                          0x82 INFO   vertices:u64le labels:u64le
//!   0x03 RELOAD (empty)                                      generation:u64le flags:u8
//!   0x04 SHUTDOWN (empty)                                    [shard_id:u32le shard_count:u32le]
//!   0x05 PATH   u:u32le v:u32le                  0x83 OK     generation:u64le
//!   0x06 MATRIX s:u32le t:u32le (src:u32le)*     0x84 PATH   count:u32le (vertex:u32le)*
//!               (tgt:u32le)*                     0x85 MATRIX count:u32le (d:u64le)*
//!                                                0xEE ERROR  code:u16le detail:u64le msg:utf8
//! ```
//!
//! A PATH response with `count == 0` means the endpoints are disconnected —
//! an answer, not an error (a server without path data answers
//! [`ErrorCode::NoPathData`] instead). A MATRIX response carries the
//! `s_count × t_count` block row-major, exactly the in-process
//! [`DistanceOracle::matrix`](chl_core::oracle::DistanceOracle::matrix)
//! contract over the wire.
//!
//! The INFO shard tail is present exactly when the `flags` byte has
//! [`INFO_FLAG_SHARDED`] set — a server loading one `.chl` v3 shard file
//! announces which shard it is; whole-index servers (and pre-shard peers)
//! emit the original 25-byte body unchanged.
//!
//! Requests are answered **in order**, one response frame per request frame,
//! so clients may pipeline freely — the server coalesces every QUERY frame
//! available in one read into a single batched
//! [`DistanceOracle::distances`](chl_core::oracle::DistanceOracle::distances)
//! call. Anything the server cannot serve is a typed [`ErrorCode`] frame,
//! never a silently dropped connection: an out-of-range vertex id fails its
//! frame with [`ErrorCode::VertexOutOfRange`] and the offending id in
//! `detail` (the connection keeps serving), while an oversized declared
//! length answers [`ErrorCode::Oversized`] and then closes, because the
//! stream can no longer be re-synchronized.
//!
//! Everything in this module is deliberately allocation-light and
//! panic-free: it runs on the request path of every connection.

use chl_graph::types::{Distance, VertexId};

/// Connection preamble selecting the binary protocol.
pub const MAGIC: [u8; 4] = *b"CHL1";

/// Default cap on one frame's payload length, in bytes (1 MiB ≈ 131k query
/// pairs). The server refuses larger declared lengths before buffering them.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Request opcode: batched distance queries.
pub const OP_QUERY: u8 = 0x01;
/// Request opcode: index/server metadata.
pub const OP_INFO: u8 = 0x02;
/// Request opcode: revalidate and hot-swap the index file.
pub const OP_RELOAD: u8 = 0x03;
/// Request opcode: graceful server shutdown.
pub const OP_SHUTDOWN: u8 = 0x04;
/// Request opcode: reconstruct one shortest path (`u:u32le v:u32le`).
pub const OP_PATH: u8 = 0x05;
/// Request opcode: a `sources × targets` distance block.
pub const OP_MATRIX: u8 = 0x06;

/// Response opcode: one distance per queried pair, in request order.
pub const OP_DISTANCES: u8 = 0x81;
/// Response opcode: metadata answer to [`OP_INFO`].
pub const OP_INFO_RESP: u8 = 0x82;
/// Response opcode: success answer to [`OP_RELOAD`] / [`OP_SHUTDOWN`].
pub const OP_OK: u8 = 0x83;
/// Response opcode: the vertex sequence answering an [`OP_PATH`] request;
/// an empty sequence means the endpoints are disconnected.
pub const OP_PATH_RESP: u8 = 0x84;
/// Response opcode: the row-major distance block answering [`OP_MATRIX`].
pub const OP_MATRIX_RESP: u8 = 0x85;
/// Response opcode: typed error frame.
pub const OP_ERROR: u8 = 0xEE;

/// Bit set in the INFO response `flags` byte when the entries section is
/// delta+varint compressed.
pub const INFO_FLAG_COMPRESSED: u8 = 0b01;
/// Bit set in the INFO response `flags` byte when the index is served from a
/// real file mapping (not the buffered fallback).
pub const INFO_FLAG_MAPPED: u8 = 0b10;
/// Bit set in the INFO response `flags` byte when the served index is one
/// QDOL shard of a sharded index; the body then carries the shard tail.
pub const INFO_FLAG_SHARDED: u8 = 0b100;

/// Typed failure reported in an [`OP_ERROR`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload did not decode as its opcode's body (wrong length, count
    /// mismatch, empty payload).
    Malformed,
    /// The declared frame length exceeds the server's cap; the connection is
    /// closed after this frame because framing cannot be recovered.
    Oversized,
    /// A query named a vertex id outside `0..num_vertices`; `detail` carries
    /// the first offending id. The whole containing frame fails.
    VertexOutOfRange,
    /// The index file could not be reloaded; the previous index keeps
    /// serving. The message carries the loader's typed error text.
    ReloadFailed,
    /// The request opcode is not one this server understands.
    UnknownOpcode,
    /// This server holds one shard of a sharded index and a queried vertex
    /// is owned by another shard; `detail` carries the first foreign id.
    /// Clients talking to `chl route` never see this — the router places
    /// each query on an owning shard.
    NotThisShard,
    /// The shard that owns a query is not reachable right now (its backend
    /// connection failed); `detail` carries the shard id. Only the frames
    /// placed on the dead shard fail — the rest of a batch keeps answering.
    ShardUnavailable,
    /// A PATH request reached an index whose `.chl` file carries no path
    /// section (built without `--paths`), or whose parent records could not
    /// witness the queried pair. Distances still serve; rebuild with
    /// `chl build --paths` for reconstruction.
    NoPathData,
}

impl ErrorCode {
    /// Wire value of the code.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Oversized => 2,
            ErrorCode::VertexOutOfRange => 3,
            ErrorCode::ReloadFailed => 4,
            ErrorCode::UnknownOpcode => 5,
            ErrorCode::NotThisShard => 6,
            ErrorCode::ShardUnavailable => 7,
            ErrorCode::NoPathData => 8,
        }
    }

    /// Decodes a wire value, `None` for codes this build does not know.
    pub fn from_u16(raw: u16) -> Option<ErrorCode> {
        match raw {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::Oversized),
            3 => Some(ErrorCode::VertexOutOfRange),
            4 => Some(ErrorCode::ReloadFailed),
            5 => Some(ErrorCode::UnknownOpcode),
            6 => Some(ErrorCode::NotThisShard),
            7 => Some(ErrorCode::ShardUnavailable),
            8 => Some(ErrorCode::NoPathData),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::Oversized => "oversized frame",
            ErrorCode::VertexOutOfRange => "vertex id out of range",
            ErrorCode::ReloadFailed => "index reload failed",
            ErrorCode::UnknownOpcode => "unknown opcode",
            ErrorCode::NotThisShard => "vertex owned by another shard",
            ErrorCode::ShardUnavailable => "owning shard unavailable",
            ErrorCode::NoPathData => "index carries no path data",
        };
        f.write_str(name)
    }
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Batched distance queries, answered in order by one DISTANCES frame.
    Query(Vec<(VertexId, VertexId)>),
    /// Ask for index/server metadata.
    Info,
    /// Revalidate the index file and swap it in without dropping requests.
    Reload,
    /// Stop accepting connections and exit once in-flight work drains.
    Shutdown,
    /// Reconstruct one shortest path `u → v`, answered by one PATH frame.
    Path(VertexId, VertexId),
    /// A `sources × targets` distance block, answered row-major by one
    /// MATRIX frame.
    Matrix {
        /// Row ids, one row per occurrence.
        sources: Vec<VertexId>,
        /// Column ids, one column per occurrence.
        targets: Vec<VertexId>,
    },
}

/// Index/server metadata carried by an [`OP_INFO_RESP`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Vertices covered by the currently served index (valid ids are `0..n`).
    pub num_vertices: u64,
    /// Total label entries in the index.
    pub total_labels: u64,
    /// Reload generation: 0 for the index the server started with,
    /// incremented by every successful reload.
    pub generation: u64,
    /// `true` when the entries section is delta+varint compressed.
    pub compressed: bool,
    /// `true` when served from a real file mapping.
    pub mapped: bool,
    /// `(shard_id, shard_count)` when the served index is one QDOL shard of
    /// a sharded index; `None` for a whole index.
    pub shard: Option<(u32, u32)>,
}

/// One decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Distances for one QUERY frame, in request order.
    Distances(Vec<Distance>),
    /// Metadata answer.
    Info(ServerInfo),
    /// Success acknowledgment carrying the current reload generation.
    Ok {
        /// Reload generation after the acknowledged operation.
        generation: u64,
    },
    /// The vertex sequence answering one PATH request: `path[0] == u`,
    /// `path[last] == v`, consecutive vertices adjacent in the graph. Empty
    /// when the endpoints are disconnected (an answer, not an error).
    Path(Vec<VertexId>),
    /// The row-major distance block answering one MATRIX request.
    Matrix(Vec<Distance>),
    /// Typed failure; see [`ErrorCode`].
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Code-specific detail (the offending vertex id for
        /// [`ErrorCode::VertexOutOfRange`], otherwise 0).
        detail: u64,
        /// Human-readable context, possibly empty.
        message: String,
    },
}

/// A framing or decoding failure — the peer broke the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before its opcode's body was complete.
    Truncated,
    /// The payload carried bytes past its opcode's body.
    TrailingBytes,
    /// The frame declared a payload longer than the negotiated cap.
    Oversized {
        /// Declared payload length.
        declared: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::TrailingBytes => write!(f, "frame payload has trailing bytes"),
            WireError::Oversized { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Little-endian cursor helpers (panic-free: every read is checked).
// ---------------------------------------------------------------------------

fn take_u8(b: &[u8]) -> Result<(u8, &[u8]), WireError> {
    match b.split_first() {
        Some((v, rest)) => Ok((*v, rest)),
        None => Err(WireError::Truncated),
    }
}

fn take_u16(b: &[u8]) -> Result<(u16, &[u8]), WireError> {
    match b.split_first_chunk::<2>() {
        Some((v, rest)) => Ok((u16::from_le_bytes(*v), rest)),
        None => Err(WireError::Truncated),
    }
}

fn take_u32(b: &[u8]) -> Result<(u32, &[u8]), WireError> {
    match b.split_first_chunk::<4>() {
        Some((v, rest)) => Ok((u32::from_le_bytes(*v), rest)),
        None => Err(WireError::Truncated),
    }
}

fn take_u64(b: &[u8]) -> Result<(u64, &[u8]), WireError> {
    match b.split_first_chunk::<8>() {
        Some((v, rest)) => Ok((u64::from_le_bytes(*v), rest)),
        None => Err(WireError::Truncated),
    }
}

fn take_u32s(mut b: &[u8], count: u32) -> Result<(Vec<u32>, &[u8]), WireError> {
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (v, rest) = take_u32(b)?;
        out.push(v);
        b = rest;
    }
    Ok((out, b))
}

fn expect_empty(b: &[u8]) -> Result<(), WireError> {
    if b.is_empty() {
        Ok(())
    } else {
        Err(WireError::TrailingBytes)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends one framed request to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Query(pairs) => {
            let len = 1 + 4 + 8 * pairs.len();
            out.reserve(4 + len);
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.push(OP_QUERY);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for &(u, v) in pairs {
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Request::Info => encode_empty(OP_INFO, out),
        Request::Reload => encode_empty(OP_RELOAD, out),
        Request::Shutdown => encode_empty(OP_SHUTDOWN, out),
        Request::Path(u, v) => {
            out.extend_from_slice(&9u32.to_le_bytes());
            out.push(OP_PATH);
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::Matrix { sources, targets } => {
            let len = 1 + 8 + 4 * (sources.len() + targets.len());
            out.reserve(4 + len);
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.push(OP_MATRIX);
            out.extend_from_slice(&(sources.len() as u32).to_le_bytes());
            out.extend_from_slice(&(targets.len() as u32).to_le_bytes());
            for id in sources.iter().chain(targets) {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
}

fn encode_empty(opcode: u8, out: &mut Vec<u8>) {
    out.extend_from_slice(&1u32.to_le_bytes());
    out.push(opcode);
}

/// Appends one framed response to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Distances(ds) => {
            let len = 1 + 4 + 8 * ds.len();
            out.reserve(4 + len);
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.push(OP_DISTANCES);
            out.extend_from_slice(&(ds.len() as u32).to_le_bytes());
            for d in ds {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        Response::Info(info) => {
            let len = 1 + 8 + 8 + 8 + 1 + if info.shard.is_some() { 8 } else { 0 };
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.push(OP_INFO_RESP);
            out.extend_from_slice(&info.num_vertices.to_le_bytes());
            out.extend_from_slice(&info.total_labels.to_le_bytes());
            out.extend_from_slice(&info.generation.to_le_bytes());
            let mut flags = 0u8;
            if info.compressed {
                flags |= INFO_FLAG_COMPRESSED;
            }
            if info.mapped {
                flags |= INFO_FLAG_MAPPED;
            }
            if info.shard.is_some() {
                flags |= INFO_FLAG_SHARDED;
            }
            out.push(flags);
            if let Some((shard_id, shard_count)) = info.shard {
                out.extend_from_slice(&shard_id.to_le_bytes());
                out.extend_from_slice(&shard_count.to_le_bytes());
            }
        }
        Response::Ok { generation } => {
            out.extend_from_slice(&9u32.to_le_bytes());
            out.push(OP_OK);
            out.extend_from_slice(&generation.to_le_bytes());
        }
        Response::Path(vertices) => {
            let len = 1 + 4 + 4 * vertices.len();
            out.reserve(4 + len);
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.push(OP_PATH_RESP);
            out.extend_from_slice(&(vertices.len() as u32).to_le_bytes());
            for id in vertices {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        Response::Matrix(ds) => {
            let len = 1 + 4 + 8 * ds.len();
            out.reserve(4 + len);
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.push(OP_MATRIX_RESP);
            out.extend_from_slice(&(ds.len() as u32).to_le_bytes());
            for d in ds {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        Response::Error {
            code,
            detail,
            message,
        } => {
            let len = 1 + 2 + 8 + message.len();
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.push(OP_ERROR);
            out.extend_from_slice(&code.as_u16().to_le_bytes());
            out.extend_from_slice(&detail.to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decodes one request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let (opcode, body) = take_u8(payload)?;
    match opcode {
        OP_QUERY => {
            let (count, mut rest) = take_u32(body)?;
            // The count must agree exactly with the payload length: a frame
            // that lies about its pair count is malformed, not partially
            // served.
            if rest.len() != 8 * count as usize {
                return Err(if rest.len() < 8 * count as usize {
                    WireError::Truncated
                } else {
                    WireError::TrailingBytes
                });
            }
            let mut pairs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (u, r) = take_u32(rest)?;
                let (v, r) = take_u32(r)?;
                pairs.push((u, v));
                rest = r;
            }
            Ok(Request::Query(pairs))
        }
        OP_INFO => expect_empty(body).map(|()| Request::Info),
        OP_RELOAD => expect_empty(body).map(|()| Request::Reload),
        OP_SHUTDOWN => expect_empty(body).map(|()| Request::Shutdown),
        OP_PATH => {
            let (u, rest) = take_u32(body)?;
            let (v, rest) = take_u32(rest)?;
            expect_empty(rest)?;
            Ok(Request::Path(u, v))
        }
        OP_MATRIX => {
            let (s_count, rest) = take_u32(body)?;
            let (t_count, rest) = take_u32(rest)?;
            // Both counts must agree exactly with the payload length, same
            // discipline as QUERY.
            let want = 4 * (s_count as usize + t_count as usize);
            if rest.len() != want {
                return Err(if rest.len() < want {
                    WireError::Truncated
                } else {
                    WireError::TrailingBytes
                });
            }
            let (sources, rest) = take_u32s(rest, s_count)?;
            let (targets, rest) = take_u32s(rest, t_count)?;
            expect_empty(rest)?;
            Ok(Request::Matrix { sources, targets })
        }
        other => Err(WireError::UnknownOpcode(other)),
    }
}

/// Decodes one response payload (the bytes after the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let (opcode, body) = take_u8(payload)?;
    match opcode {
        OP_DISTANCES => {
            let (count, mut rest) = take_u32(body)?;
            if rest.len() != 8 * count as usize {
                return Err(WireError::Truncated);
            }
            let mut ds = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (d, r) = take_u64(rest)?;
                ds.push(d);
                rest = r;
            }
            Ok(Response::Distances(ds))
        }
        OP_INFO_RESP => {
            let (num_vertices, rest) = take_u64(body)?;
            let (total_labels, rest) = take_u64(rest)?;
            let (generation, rest) = take_u64(rest)?;
            let (flags, rest) = take_u8(rest)?;
            let (shard, rest) = if flags & INFO_FLAG_SHARDED != 0 {
                let (shard_id, rest) = take_u32(rest)?;
                let (shard_count, rest) = take_u32(rest)?;
                (Some((shard_id, shard_count)), rest)
            } else {
                (None, rest)
            };
            expect_empty(rest)?;
            Ok(Response::Info(ServerInfo {
                num_vertices,
                total_labels,
                generation,
                compressed: flags & INFO_FLAG_COMPRESSED != 0,
                mapped: flags & INFO_FLAG_MAPPED != 0,
                shard,
            }))
        }
        OP_OK => {
            let (generation, rest) = take_u64(body)?;
            expect_empty(rest)?;
            Ok(Response::Ok { generation })
        }
        OP_PATH_RESP => {
            let (count, rest) = take_u32(body)?;
            if rest.len() != 4 * count as usize {
                return Err(WireError::Truncated);
            }
            let (vertices, rest) = take_u32s(rest, count)?;
            expect_empty(rest)?;
            Ok(Response::Path(vertices))
        }
        OP_MATRIX_RESP => {
            let (count, mut rest) = take_u32(body)?;
            if rest.len() != 8 * count as usize {
                return Err(WireError::Truncated);
            }
            let mut ds = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (d, r) = take_u64(rest)?;
                ds.push(d);
                rest = r;
            }
            Ok(Response::Matrix(ds))
        }
        OP_ERROR => {
            let (raw_code, rest) = take_u16(body)?;
            let (detail, rest) = take_u64(rest)?;
            let code = ErrorCode::from_u16(raw_code).ok_or(WireError::Truncated)?;
            Ok(Response::Error {
                code,
                detail,
                message: String::from_utf8_lossy(rest).into_owned(),
            })
        }
        other => Err(WireError::UnknownOpcode(other)),
    }
}

// ---------------------------------------------------------------------------
// Incremental framing
// ---------------------------------------------------------------------------

/// Accumulates raw stream bytes and yields complete frame payloads.
///
/// The buffer enforces the frame-length cap *before* buffering a payload, so
/// a peer declaring a multi-gigabyte frame costs nothing but the 4-byte
/// prefix. Consumed bytes are compacted lazily to keep `extend` amortized
/// O(bytes).
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    max_frame: u32,
}

impl FrameBuffer {
    /// Creates a buffer enforcing the given payload-length cap.
    pub fn new(max_frame: u32) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Appends freshly read stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact once the consumed prefix dominates, amortizing the copy.
        if self.start > 0 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame payload, `Ok(None)` when more bytes
    /// are needed, or [`WireError::Oversized`] when the declared length
    /// exceeds the cap (the stream is unrecoverable after that).
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let pending = match self.buf.get(self.start..) {
            Some(p) => p,
            None => return Ok(None),
        };
        let Some((len_bytes, rest)) = pending.split_first_chunk::<4>() else {
            return Ok(None);
        };
        let declared = u32::from_le_bytes(*len_bytes);
        if declared > self.max_frame {
            return Err(WireError::Oversized {
                declared,
                max: self.max_frame,
            });
        }
        let Some(payload) = rest.get(..declared as usize) else {
            return Ok(None);
        };
        let payload = payload.to_vec();
        self.start += 4 + declared as usize;
        Ok(Some(payload))
    }

    /// Number of buffered bytes not yet consumed (diagnostics only).
    pub fn pending_len(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Query(vec![(0, 1), (7, 7), (u32::MAX, 0)]),
            Request::Query(Vec::new()),
            Request::Info,
            Request::Reload,
            Request::Shutdown,
            Request::Path(3, 9),
            Request::Path(0, 0),
            Request::Matrix {
                sources: vec![0, 1, 2],
                targets: vec![5, 6],
            },
            Request::Matrix {
                sources: Vec::new(),
                targets: Vec::new(),
            },
        ] {
            let mut wire = Vec::new();
            encode_request(&req, &mut wire);
            let mut fb = FrameBuffer::new(DEFAULT_MAX_FRAME);
            fb.extend(&wire);
            let payload = fb.next_payload().unwrap().expect("one whole frame");
            assert_eq!(decode_request(&payload).unwrap(), req);
            assert!(fb.next_payload().unwrap().is_none());
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Distances(vec![0, 17, u64::MAX]),
            Response::Info(ServerInfo {
                num_vertices: 9,
                total_labels: 40,
                generation: 3,
                compressed: true,
                mapped: false,
                shard: None,
            }),
            Response::Info(ServerInfo {
                num_vertices: 9,
                total_labels: 13,
                generation: 0,
                compressed: false,
                mapped: true,
                shard: Some((1, 3)),
            }),
            Response::Ok { generation: 2 },
            Response::Path(vec![0, 4, 2, 7]),
            Response::Path(Vec::new()),
            Response::Matrix(vec![0, 3, u64::MAX, 12]),
            Response::Matrix(Vec::new()),
            Response::Error {
                code: ErrorCode::VertexOutOfRange,
                detail: 99,
                message: "vertex id 99 out of range".into(),
            },
            Response::Error {
                code: ErrorCode::NoPathData,
                detail: 0,
                message: String::new(),
            },
        ] {
            let mut wire = Vec::new();
            encode_response(&resp, &mut wire);
            let mut fb = FrameBuffer::new(DEFAULT_MAX_FRAME);
            fb.extend(&wire);
            let payload = fb.next_payload().unwrap().expect("one whole frame");
            assert_eq!(decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn info_payload_lengths_are_pinned_for_compat() {
        // Pre-shard peers rely on the unsharded body staying exactly its
        // original 25 bytes; the shard tail adds exactly 8.
        let info = |shard| ServerInfo {
            num_vertices: 1,
            total_labels: 2,
            generation: 3,
            compressed: false,
            mapped: false,
            shard,
        };
        let mut wire = Vec::new();
        encode_response(&Response::Info(info(None)), &mut wire);
        assert_eq!(u32::from_le_bytes(wire[..4].try_into().unwrap()), 1 + 25);
        let mut wire = Vec::new();
        encode_response(&Response::Info(info(Some((0, 2)))), &mut wire);
        assert_eq!(u32::from_le_bytes(wire[..4].try_into().unwrap()), 1 + 33);
        // A sharded flag with a truncated tail is a typed wire error.
        let payload = &wire[4..4 + 30];
        assert_eq!(decode_response(payload), Err(WireError::Truncated));
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let mut wire = Vec::new();
        encode_request(&Request::Query(vec![(1, 2), (3, 4)]), &mut wire);
        encode_request(&Request::Info, &mut wire);
        let mut fb = FrameBuffer::new(DEFAULT_MAX_FRAME);
        let mut seen = Vec::new();
        for b in &wire {
            fb.extend(std::slice::from_ref(b));
            while let Some(p) = fb.next_payload().unwrap() {
                seen.push(decode_request(&p).unwrap());
            }
        }
        assert_eq!(
            seen,
            vec![Request::Query(vec![(1, 2), (3, 4)]), Request::Info]
        );
        assert_eq!(fb.pending_len(), 0);
    }

    #[test]
    fn oversized_declared_length_is_refused_before_buffering() {
        let mut fb = FrameBuffer::new(16);
        fb.extend(&17u32.to_le_bytes());
        assert_eq!(
            fb.next_payload(),
            Err(WireError::Oversized {
                declared: 17,
                max: 16
            })
        );
    }

    #[test]
    fn malformed_payloads_decode_to_typed_errors() {
        assert_eq!(decode_request(&[]), Err(WireError::Truncated));
        assert_eq!(decode_request(&[0x7f]), Err(WireError::UnknownOpcode(0x7f)));
        // QUERY declaring 2 pairs but carrying bytes for 1.
        let mut bad = vec![OP_QUERY];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; 8]);
        assert_eq!(decode_request(&bad), Err(WireError::Truncated));
        // INFO with a body.
        assert_eq!(decode_request(&[OP_INFO, 0]), Err(WireError::TrailingBytes));
        // Response with a count lying about its length.
        let mut bad = vec![OP_DISTANCES];
        bad.extend_from_slice(&3u32.to_le_bytes());
        assert_eq!(decode_response(&bad), Err(WireError::Truncated));
        // PATH with a short body, and with trailing bytes.
        let mut bad = vec![OP_PATH];
        bad.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(decode_request(&bad), Err(WireError::Truncated));
        bad.extend_from_slice(&[0u8; 5]);
        assert_eq!(decode_request(&bad), Err(WireError::TrailingBytes));
        // MATRIX whose counts lie about the payload length, both ways.
        let mut bad = vec![OP_MATRIX];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; 8]);
        assert_eq!(decode_request(&bad), Err(WireError::Truncated));
        bad.extend_from_slice(&[0u8; 8]);
        assert_eq!(decode_request(&bad), Err(WireError::TrailingBytes));
        // PATH response with a count lying about its length.
        let mut bad = vec![OP_PATH_RESP];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; 4]);
        assert_eq!(decode_response(&bad), Err(WireError::Truncated));
        // MATRIX response likewise.
        let mut bad = vec![OP_MATRIX_RESP];
        bad.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(decode_response(&bad), Err(WireError::Truncated));
    }

    #[test]
    fn error_codes_round_trip_and_display() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Oversized,
            ErrorCode::VertexOutOfRange,
            ErrorCode::ReloadFailed,
            ErrorCode::UnknownOpcode,
            ErrorCode::NotThisShard,
            ErrorCode::ShardUnavailable,
            ErrorCode::NoPathData,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }
}
