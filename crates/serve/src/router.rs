//! The scatter-gather routing tier: one `chl route` process in front of a
//! cluster of `chl serve --shard` processes, speaking the same client
//! protocol on both sides.
//!
//! ```text
//!                       ┌──────────────┐  CHL1   ┌─────────────────────┐
//!  clients ── CHL1 ────►│  chl route    ├────────►│ chl serve --shard 0 │
//!  (unchanged protocol) │  QdolShardMap ├────────►│ chl serve --shard 1 │
//!                       │  placement    ├────────►│ chl serve --shard 2 │
//!                       └──────────────┘         └─────────────────────┘
//! ```
//!
//! Startup ([`ClusterView::discover`]) sends INFO to every backend, checks
//! the answers describe one coherent sharded index — same global vertex
//! count, same shard count, every shard id present exactly once — and
//! rebuilds the QDOL placement from nothing but `(shard_count,
//! num_vertices)`: [`QdolShardMap`] is fully determined by those two
//! numbers, so the router and `chl build --shards` can never disagree about
//! who owns a query.
//!
//! Per QUERY frame the router places every pair on an owning shard. A frame
//! whose pairs all land on one shard is forwarded verbatim; only a frame
//! that genuinely spans shards fans out, and the partial answers are merged
//! back into request order. Within one flush, all sub-frames bound for the
//! same backend are pipelined in a single write, so the backend's own
//! coalescing still batches them. Out-of-range ids are rejected by the
//! router itself with the exact error frame a whole-index server sends, and
//! a dead backend degrades **per frame** into a typed
//! [`ErrorCode::ShardUnavailable`] error (detail = shard id) after one
//! reconnect attempt — never a hang, never a dropped client connection.
//!
//! Control frames: INFO aggregates the cluster into an unsharded-looking
//! answer (global vertex count, summed label bytes — labels on partition
//! overlaps are counted once per owning shard — and the minimum backend
//! generation); RELOAD fans out to every shard in shard order and reports
//! the first failure (reloads are not atomic across shards); SHUTDOWN stops
//! the router only, never the backends.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use chl_graph::types::{Distance, VertexId};
use chl_query::QdolShardMap;

use crate::client::{Client, ClientError};
use crate::protocol::{
    decode_request, encode_response, ErrorCode, FrameBuffer, Request, Response, ServerInfo,
    WireError, DEFAULT_MAX_FRAME, MAGIC,
};

/// How often the nonblocking acceptor polls for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Read timeout on client connections; each expiry re-checks shutdown.
const READ_POLL: Duration = Duration::from_millis(50);
/// Upper bound on one blocked client write before the connection is dead.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Per-read chunk size, matching the shard servers.
const READ_CHUNK: usize = 64 * 1024;

/// Tunables for one router instance.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Worker threads handling client connections; each worker keeps its own
    /// pool of backend connections. At least 1.
    pub threads: usize,
    /// Cap on one client frame's payload length in bytes.
    pub max_frame: u32,
    /// Read timeout on backend conversations: a backend that stops answering
    /// within this window counts as unavailable for the frames placed on it.
    pub backend_timeout: Duration,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            threads: 4,
            max_frame: DEFAULT_MAX_FRAME,
            backend_timeout: Duration::from_secs(5),
        }
    }
}

/// Why the router could not stand up in front of the given backends.
#[derive(Debug)]
pub enum RouterError {
    /// A backend could not be reached or did not answer INFO.
    Backend {
        /// The backend address as given.
        addr: String,
        /// The client-side failure.
        error: ClientError,
    },
    /// A backend serves a whole index, not a shard.
    NotSharded {
        /// The backend address as given.
        addr: String,
    },
    /// The backends do not describe one coherent sharded index.
    Inconsistent(String),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Backend { addr, error } => {
                write!(f, "backend {addr}: {error}")
            }
            RouterError::NotSharded { addr } => {
                write!(
                    f,
                    "backend {addr} serves a whole index, not a shard \
                     (chl route expects every backend to be `chl serve` over \
                     one `.chl` v3 shard file)"
                )
            }
            RouterError::Inconsistent(msg) => write!(f, "inconsistent cluster: {msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// The validated cluster the router fronts: one backend address per shard id
/// plus the placement map rebuilt from `(shard_count, num_vertices)`.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// `addr_of_shard[shard_id]` — the backend serving that shard.
    addr_of_shard: Vec<String>,
    map: QdolShardMap,
}

impl ClusterView {
    /// Connects to every backend, asks INFO, and validates the answers into
    /// a coherent cluster view. The discovery connections are dropped —
    /// serving uses per-worker pools with their own reconnect handling.
    pub fn discover(
        addrs: &[String],
        backend_timeout: Duration,
    ) -> Result<ClusterView, RouterError> {
        let mut infos = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let info = (|| {
                let mut client = Client::connect(addr)?;
                client.set_timeout(Some(backend_timeout))?;
                client.info()
            })()
            .map_err(|error| RouterError::Backend {
                addr: addr.clone(),
                error,
            })?;
            infos.push(info);
        }
        ClusterView::from_infos(addrs, &infos)
    }

    /// Pure validation half of [`ClusterView::discover`]: checks the INFO
    /// answers describe one sharded index and builds the placement map.
    pub fn from_infos(addrs: &[String], infos: &[ServerInfo]) -> Result<ClusterView, RouterError> {
        if addrs.is_empty() {
            return Err(RouterError::Inconsistent(
                "no backend addresses given".to_string(),
            ));
        }
        if addrs.len() != infos.len() {
            return Err(RouterError::Inconsistent(format!(
                "{} addresses but {} INFO answers",
                addrs.len(),
                infos.len()
            )));
        }
        let expected_count = addrs.len() as u32;
        let mut slots: Vec<Option<String>> = vec![None; addrs.len()];
        let mut num_vertices: Option<u64> = None;
        for (addr, info) in addrs.iter().zip(infos) {
            let (shard_id, shard_count) = info
                .shard
                .ok_or_else(|| RouterError::NotSharded { addr: addr.clone() })?;
            if shard_count != expected_count {
                return Err(RouterError::Inconsistent(format!(
                    "backend {addr} announces shard {shard_id} of {shard_count}, \
                     but {expected_count} backends were given"
                )));
            }
            if shard_id >= expected_count {
                return Err(RouterError::Inconsistent(format!(
                    "backend {addr} announces shard id {shard_id} >= shard count {expected_count}"
                )));
            }
            match num_vertices {
                None => num_vertices = Some(info.num_vertices),
                Some(n) if n != info.num_vertices => {
                    return Err(RouterError::Inconsistent(format!(
                        "backend {addr} covers {} vertices but an earlier backend covers {n} \
                         (shard files record the global vertex count, so these are different indexes)",
                        info.num_vertices
                    )));
                }
                Some(_) => {}
            }
            // `shard_id < expected_count == slots.len()` was checked above.
            let Some(slot) = slots.get_mut(shard_id as usize) else {
                continue;
            };
            if let Some(other) = slot {
                return Err(RouterError::Inconsistent(format!(
                    "shard {shard_id} is served by both {other} and {addr}"
                )));
            }
            *slot = Some(addr.clone());
        }
        // Pigeonhole: len(addrs) distinct ids < len(addrs) fill every slot.
        let addr_of_shard: Vec<String> = slots.into_iter().flatten().collect();
        if addr_of_shard.len() != addrs.len() {
            return Err(RouterError::Inconsistent(
                "not every shard id is served".to_string(),
            ));
        }
        let n = num_vertices.unwrap_or(0) as usize;
        Ok(ClusterView {
            map: QdolShardMap::new(addr_of_shard.len(), n),
            addr_of_shard,
        })
    }

    /// Number of shards (= backends) fronted.
    pub fn shard_count(&self) -> usize {
        self.addr_of_shard.len()
    }

    /// Global vertex count of the sharded index.
    pub fn num_vertices(&self) -> usize {
        self.map.num_vertices()
    }

    /// The backend address serving `shard`, or `None` out of range.
    pub fn addr_of_shard(&self, shard: usize) -> Option<&str> {
        self.addr_of_shard.get(shard).map(String::as_str)
    }

    /// The placement map (identical to what `chl build --shards` used).
    pub fn map(&self) -> &QdolShardMap {
        &self.map
    }
}

/// Monotonic routing counters; same relaxed-statistics discipline as
/// [`crate::server::ServeStats`].
#[derive(Debug, Default)]
pub struct RouterStats {
    connections: AtomicU64,
    http_requests: AtomicU64,
    frames: AtomicU64,
    queries: AtomicU64,
    forwarded_frames: AtomicU64,
    fanout_frames: AtomicU64,
    shard_errors: AtomicU64,
    error_frames: AtomicU64,
    reloads: AtomicU64,
}

/// One coherent-enough copy of the router counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStatsSnapshot {
    /// Client connections accepted.
    pub connections: u64,
    /// Non-protocol (HTTP) connections answered with the status page.
    pub http_requests: u64,
    /// Client request frames decoded.
    pub frames: u64,
    /// Individual distance queries placed on backends.
    pub queries: u64,
    /// QUERY frames forwarded (whether or not they fanned out).
    pub forwarded_frames: u64,
    /// QUERY frames that spanned shards and genuinely fanned out.
    pub fanout_frames: u64,
    /// Frames that failed because a backend was unavailable or answered a
    /// typed error.
    pub shard_errors: u64,
    /// Typed error frames sent to clients (all causes).
    pub error_frames: u64,
    /// Successful cluster-wide reload fan-outs.
    pub reloads: u64,
}

impl RouterStats {
    fn add(counter: &AtomicU64, n: u64) {
        // ORDERING: independent monotonic statistics counter; nothing
        // synchronizes through it.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies every counter. Individually exact; mutually unordered.
    pub fn snapshot(&self) -> RouterStatsSnapshot {
        // ORDERING: statistics reads; see `add`.
        let get = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        RouterStatsSnapshot {
            connections: get(&self.connections),
            http_requests: get(&self.http_requests),
            frames: get(&self.frames),
            queries: get(&self.queries),
            forwarded_frames: get(&self.forwarded_frames),
            fanout_frames: get(&self.fanout_frames),
            shard_errors: get(&self.shard_errors),
            error_frames: get(&self.error_frames),
            reloads: get(&self.reloads),
        }
    }
}

/// State shared by the acceptor, workers, and external handles.
#[derive(Debug)]
pub struct RouterState {
    shutdown: AtomicBool,
    stats: RouterStats,
}

impl RouterState {
    /// `true` once shutdown was requested (protocol frame or handle).
    pub fn is_shutdown(&self) -> bool {
        // ORDERING: latch flag; a stale read costs one poll interval.
        self.shutdown.load(Ordering::Relaxed)
    }

    fn request_shutdown(&self) {
        // ORDERING: see is_shutdown — monotonic latch, no data published.
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A cloneable remote control for a bound router: shutdown + stats.
#[derive(Debug, Clone)]
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
}

impl RouterHandle {
    /// The address the router actually listens on (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop of the router (backends keep running).
    pub fn signal_shutdown(&self) {
        self.state.request_shutdown();
    }

    /// `true` once shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.is_shutdown()
    }

    /// Current routing counters.
    pub fn stats(&self) -> RouterStatsSnapshot {
        self.state.stats.snapshot()
    }
}

/// A bound-but-not-yet-running router.
#[derive(Debug)]
pub struct Router {
    listener: TcpListener,
    cluster: Arc<ClusterView>,
    opts: RouterOptions,
    state: Arc<RouterState>,
    addr: SocketAddr,
}

/// A router running on its own thread, as spawned by [`Router::spawn`].
#[derive(Debug)]
pub struct SpawnedRouter {
    handle: RouterHandle,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedRouter {
    /// The remote control (addr, shutdown, stats).
    pub fn handle(&self) -> &RouterHandle {
        &self.handle
    }

    /// Signals shutdown and waits for the routing thread to exit, returning
    /// the final counters.
    pub fn shutdown(self) -> std::io::Result<RouterStatsSnapshot> {
        self.handle.signal_shutdown();
        self.join()
    }

    /// Waits for the router to exit on its own (e.g. a protocol SHUTDOWN
    /// frame), returning the final counters.
    pub fn join(self) -> std::io::Result<RouterStatsSnapshot> {
        match self.join.join() {
            Ok(result) => result.map(|()| self.handle.stats()),
            Err(_) => Err(std::io::Error::other("router thread panicked")),
        }
    }
}

impl Router {
    /// Binds `addr` (use port 0 for an ephemeral port) in front of a
    /// validated cluster.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        cluster: ClusterView,
        opts: RouterOptions,
    ) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Router {
            listener,
            cluster: Arc::new(cluster),
            opts: RouterOptions {
                threads: opts.threads.max(1),
                max_frame: opts.max_frame,
                backend_timeout: opts.backend_timeout,
            },
            state: Arc::new(RouterState {
                shutdown: AtomicBool::new(false),
                stats: RouterStats::default(),
            }),
            addr,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port picked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads while [`Router::run`]
    /// blocks this one.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            addr: self.addr,
            state: Arc::clone(&self.state),
        }
    }

    /// Runs acceptor + workers on the calling thread until shutdown is
    /// requested, then drains and joins the workers.
    pub fn run(self) -> std::io::Result<()> {
        let Router {
            listener,
            cluster,
            opts,
            state,
            addr: _,
        } = self;
        listener.set_nonblocking(true)?;

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(opts.threads);
        for i in 0..opts.threads {
            let rx = Arc::clone(&rx);
            let cluster = Arc::clone(&cluster);
            let state = Arc::clone(&state);
            let opts = opts.clone();
            let worker = std::thread::Builder::new()
                .name(format!("chl-route-{i}"))
                .spawn(move || worker_loop(&rx, &cluster, &opts, &state))?;
            workers.push(worker);
        }

        while !state.is_shutdown() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    RouterStats::add(&state.stats.connections, 1);
                    if tx.send(stream).is_err() {
                        break; // all workers gone (cannot happen before shutdown)
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure: back off instead of dying.
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }

        drop(tx);
        for worker in workers {
            if worker.join().is_err() {
                return Err(std::io::Error::other("route worker panicked"));
            }
        }
        Ok(())
    }

    /// Moves the router onto a background thread; the returned handle
    /// controls and observes it.
    pub fn spawn(self) -> std::io::Result<SpawnedRouter> {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("chl-route-accept".to_string())
            .spawn(move || self.run())?;
        Ok(SpawnedRouter { handle, join })
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    cluster: &ClusterView,
    opts: &RouterOptions,
    state: &RouterState,
) {
    // Each worker owns its backend connections: no cross-worker locking on
    // the hot path, and a backend failure on one worker never poisons the
    // others' connections.
    let mut pool = BackendPool::new(cluster, opts.backend_timeout);
    loop {
        let next = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv_timeout(READ_POLL)
        };
        match next {
            Ok(stream) => {
                let _ = route_connection(stream, &mut pool, cluster, opts, state);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if state.is_shutdown() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One worker's lazily connected backend clients, indexed by shard id.
struct BackendPool<'a> {
    cluster: &'a ClusterView,
    conns: Vec<Option<Client>>,
    timeout: Duration,
}

/// How one backend conversation failed, from the router's point of view.
enum BackendFailure {
    /// Could not connect, or the conversation broke mid-way (twice).
    Unavailable,
    /// The backend answered a typed error frame.
    Server {
        code: ErrorCode,
        detail: u64,
        message: String,
    },
}

impl<'a> BackendPool<'a> {
    fn new(cluster: &'a ClusterView, timeout: Duration) -> Self {
        BackendPool {
            conns: (0..cluster.shard_count()).map(|_| None).collect(),
            cluster,
            timeout,
        }
    }

    fn take_or_connect(&mut self, shard: usize) -> Option<Client> {
        if let Some(Some(conn)) = self.conns.get_mut(shard).map(Option::take) {
            return Some(conn);
        }
        let addr = self.cluster.addr_of_shard(shard)?;
        let mut conn = Client::connect(addr).ok()?;
        conn.set_timeout(Some(self.timeout)).ok()?;
        Some(conn)
    }

    /// Runs one conversation against `shard`, reconnecting and retrying once
    /// on connection-level failure (requests here are idempotent). A typed
    /// server error ends the attempt — the backend is alive and said no.
    fn call<T>(
        &mut self,
        shard: usize,
        f: impl Fn(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, BackendFailure> {
        for _attempt in 0..2 {
            let Some(mut conn) = self.take_or_connect(shard) else {
                continue;
            };
            match f(&mut conn) {
                Ok(value) => {
                    if let Some(slot) = self.conns.get_mut(shard) {
                        *slot = Some(conn);
                    }
                    return Ok(value);
                }
                Err(ClientError::Server {
                    code,
                    detail,
                    message,
                }) => {
                    if let Some(slot) = self.conns.get_mut(shard) {
                        *slot = Some(conn);
                    }
                    return Err(BackendFailure::Server {
                        code,
                        detail,
                        message,
                    });
                }
                // Io / Wire / UnexpectedResponse: the connection can no
                // longer be trusted — drop it and retry on a fresh one.
                Err(_) => {}
            }
        }
        Err(BackendFailure::Unavailable)
    }
}

fn shard_unavailable_response(shard: usize) -> Response {
    Response::Error {
        code: ErrorCode::ShardUnavailable,
        detail: shard as u64,
        message: format!("shard {shard} is unreachable"),
    }
}

fn backend_failure_response(shard: usize, failure: &BackendFailure) -> Response {
    match failure {
        BackendFailure::Unavailable => shard_unavailable_response(shard),
        BackendFailure::Server {
            code,
            detail,
            message,
        } => Response::Error {
            code: *code,
            detail: *detail,
            message: format!("shard {shard}: {message}"),
        },
    }
}

/// Outcome of processing one flush of client frames.
enum Disposition {
    /// Keep reading from this connection.
    Continue,
    /// Close and stop the router (SHUTDOWN frame acknowledged). Backends
    /// keep running — stopping them is their operator's call.
    ShutdownRouter,
}

fn route_connection(
    mut stream: TcpStream,
    pool: &mut BackendPool<'_>,
    cluster: &ClusterView,
    opts: &RouterOptions,
    state: &RouterState,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;

    // Preamble: 4 bytes decide binary protocol vs the status page.
    let mut head = Vec::with_capacity(4);
    let mut chunk = vec![0u8; READ_CHUNK];
    while head.len() < 4 {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // silent connect-and-close
            Ok(n) => head.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if would_block(&e) => {
                if state.is_shutdown() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if head.get(..4) != Some(MAGIC.as_slice()) {
        RouterStats::add(&state.stats.http_requests, 1);
        return route_status_page(stream, cluster);
    }

    let mut fb = FrameBuffer::new(opts.max_frame);
    fb.extend(head.get(4..).unwrap_or_default());
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    loop {
        loop {
            match fb.next_payload() {
                Ok(Some(payload)) => payloads.push(payload),
                Ok(None) => break,
                Err(wire) => {
                    // Oversized declared length: answer typed, then close.
                    let mut out = Vec::new();
                    if !payloads.is_empty() {
                        route_frames(&payloads, pool, cluster, opts, state, &mut out);
                        payloads.clear();
                    }
                    encode_response(&wire_error_response(&wire), &mut out);
                    RouterStats::add(&state.stats.error_frames, 1);
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
            }
        }
        if !payloads.is_empty() {
            let mut out = Vec::new();
            let disposition = route_frames(&payloads, pool, cluster, opts, state, &mut out);
            payloads.clear();
            stream.write_all(&out)?;
            match disposition {
                Disposition::Continue => {}
                Disposition::ShutdownRouter => {
                    state.request_shutdown();
                    return Ok(());
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => fb.extend(chunk.get(..n).unwrap_or_default()),
            Err(e) if would_block(&e) => {
                if state.is_shutdown() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn wire_error_response(wire: &WireError) -> Response {
    let code = match wire {
        WireError::Oversized { .. } => ErrorCode::Oversized,
        WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
        WireError::Truncated | WireError::TrailingBytes => ErrorCode::Malformed,
    };
    Response::Error {
        code,
        detail: 0,
        message: wire.to_string(),
    }
}

/// Minimal plain-text status for non-protocol (curl) connections; the real
/// HTTP query adapter lives on the shard servers.
fn route_status_page(mut stream: TcpStream, cluster: &ClusterView) -> std::io::Result<()> {
    let body = format!(
        "chl route: {} shards over {} vertices (zeta {})\n",
        cluster.shard_count(),
        cluster.num_vertices(),
        cluster.map().zeta()
    );
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Answers every frame of one flush in order, coalescing contiguous QUERY
/// runs so each backend sees one pipelined write per run.
fn route_frames(
    payloads: &[Vec<u8>],
    pool: &mut BackendPool<'_>,
    cluster: &ClusterView,
    opts: &RouterOptions,
    state: &RouterState,
    out: &mut Vec<u8>,
) -> Disposition {
    RouterStats::add(&state.stats.frames, payloads.len() as u64);
    let mut iter = payloads.iter().peekable();
    while let Some(payload) = iter.next() {
        match decode_request(payload) {
            Ok(Request::Query(first)) => {
                let mut run: Vec<Vec<(VertexId, VertexId)>> = vec![first];
                while let Some(next) = iter.peek() {
                    match decode_request(next) {
                        Ok(Request::Query(pairs)) => {
                            run.push(pairs);
                            iter.next();
                        }
                        _ => break,
                    }
                }
                route_query_run(&run, pool, cluster, state, out);
            }
            Ok(Request::Path(u, v)) => {
                route_path(u, v, pool, cluster, state, out);
            }
            Ok(Request::Matrix { sources, targets }) => {
                route_matrix(&sources, &targets, pool, cluster, opts, state, out);
            }
            Ok(Request::Info) => {
                let resp = aggregate_info(pool, cluster);
                if matches!(resp, Response::Error { .. }) {
                    RouterStats::add(&state.stats.error_frames, 1);
                }
                encode_response(&resp, out);
            }
            Ok(Request::Reload) => {
                let resp = fan_out_reload(pool, cluster);
                match resp {
                    Response::Ok { .. } => RouterStats::add(&state.stats.reloads, 1),
                    _ => RouterStats::add(&state.stats.error_frames, 1),
                }
                encode_response(&resp, out);
            }
            Ok(Request::Shutdown) => {
                // The router has no reload generation of its own; 0 here.
                encode_response(&Response::Ok { generation: 0 }, out);
                return Disposition::ShutdownRouter;
            }
            Err(wire) => {
                RouterStats::add(&state.stats.error_frames, 1);
                encode_response(&wire_error_response(&wire), out);
            }
        }
    }
    Disposition::Continue
}

/// What one [`ShardGroup`] came back as: distances, or an error frame to
/// surface for the whole client frame.
type GroupOutcome = Result<Vec<Distance>, Response>;

/// One frame's pairs bound for one shard, with their original positions.
struct ShardGroup {
    shard: usize,
    positions: Vec<usize>,
    pairs: Vec<(VertexId, VertexId)>,
}

/// Disposition of one QUERY frame in a run.
enum FrameDisp {
    /// Decided by the router itself (out-of-range, or an empty frame).
    Local(Response),
    /// Placed on backends; groups are ordered by first pair appearance.
    Placed {
        groups: Vec<ShardGroup>,
        num_pairs: usize,
    },
}

/// Places a run of QUERY frames on owning shards, pipelines each shard's
/// sub-frames in one conversation, and merges every frame's answers back
/// into request order. Error semantics per frame:
///
/// * out-of-range id → the exact `VertexOutOfRange` frame a whole-index
///   server sends (router-local, never forwarded);
/// * owning backend unreachable after a reconnect attempt →
///   [`ErrorCode::ShardUnavailable`] with the shard id in `detail`; only the
///   frames placed on that shard fail;
/// * backend answered a typed error → forwarded with the shard prefixed to
///   the message.
fn route_query_run(
    run: &[Vec<(VertexId, VertexId)>],
    pool: &mut BackendPool<'_>,
    cluster: &ClusterView,
    state: &RouterState,
    out: &mut Vec<u8>,
) {
    let map = cluster.map();
    let n = map.num_vertices();

    let mut disps: Vec<FrameDisp> = Vec::with_capacity(run.len());
    // Per-shard worklist of (frame index, group index), in pipeline order.
    let mut per_shard: Vec<Vec<(usize, usize)>> = vec![Vec::new(); map.shard_count()];
    for (fi, pairs) in run.iter().enumerate() {
        // Same scan order and message as a whole-index server, so clients
        // cannot tell the router from a single process on bad input.
        let bad = pairs
            .iter()
            .find(|&&(u, v)| u as usize >= n || v as usize >= n)
            .map(|&(u, v)| if (u as usize) < n { v } else { u });
        if let Some(id) = bad {
            disps.push(FrameDisp::Local(Response::Error {
                code: ErrorCode::VertexOutOfRange,
                detail: id as u64,
                message: format!("vertex id {id} out of range for {n} vertices"),
            }));
            continue;
        }
        if pairs.is_empty() {
            disps.push(FrameDisp::Local(Response::Distances(Vec::new())));
            continue;
        }
        let mut groups: Vec<ShardGroup> = Vec::new();
        for (pi, &(u, v)) in pairs.iter().enumerate() {
            let shard = map.shard_for_query(u, v);
            match groups.iter_mut().find(|g| g.shard == shard) {
                Some(group) => {
                    group.positions.push(pi);
                    group.pairs.push((u, v));
                }
                None => groups.push(ShardGroup {
                    shard,
                    positions: vec![pi],
                    pairs: vec![(u, v)],
                }),
            }
        }
        RouterStats::add(&state.stats.forwarded_frames, 1);
        RouterStats::add(&state.stats.queries, pairs.len() as u64);
        if groups.len() > 1 {
            RouterStats::add(&state.stats.fanout_frames, 1);
        }
        for (gi, group) in groups.iter().enumerate() {
            if let Some(work) = per_shard.get_mut(group.shard) {
                work.push((fi, gi));
            }
        }
        disps.push(FrameDisp::Placed {
            groups,
            num_pairs: pairs.len(),
        });
    }

    // Scatter: one pipelined conversation per shard with work.
    let mut outcomes: Vec<Vec<Option<GroupOutcome>>> = disps
        .iter()
        .map(|d| match d {
            FrameDisp::Local(_) => Vec::new(),
            FrameDisp::Placed { groups, .. } => (0..groups.len()).map(|_| None).collect(),
        })
        .collect();
    for (shard, work) in per_shard.iter().enumerate() {
        if work.is_empty() {
            continue;
        }
        let frames: Vec<Vec<(VertexId, VertexId)>> = work
            .iter()
            .filter_map(|&(fi, gi)| match disps.get(fi) {
                Some(FrameDisp::Placed { groups, .. }) => groups.get(gi).map(|g| g.pairs.clone()),
                _ => None,
            })
            .collect();
        let result = pool.call(shard, |client| client.pipeline(&frames));
        match result {
            Ok(answers) if answers.len() == frames.len() => {
                for (&(fi, gi), answer) in work.iter().zip(answers) {
                    let entry = match answer {
                        Ok(ds) => Ok(ds),
                        Err((code, detail)) => {
                            RouterStats::add(&state.stats.shard_errors, 1);
                            Err(Response::Error {
                                code,
                                detail,
                                message: format!("shard {shard}: {code}"),
                            })
                        }
                    };
                    if let Some(slot) = outcomes.get_mut(fi).and_then(|o| o.get_mut(gi)) {
                        *slot = Some(entry);
                    }
                }
            }
            // A response-count mismatch means the conversation desynced;
            // treat it like a dead backend for these frames.
            Ok(_) => {
                RouterStats::add(&state.stats.shard_errors, work.len() as u64);
                for &(fi, gi) in work {
                    if let Some(slot) = outcomes.get_mut(fi).and_then(|o| o.get_mut(gi)) {
                        *slot = Some(Err(shard_unavailable_response(shard)));
                    }
                }
            }
            Err(failure) => {
                RouterStats::add(&state.stats.shard_errors, work.len() as u64);
                let resp = backend_failure_response(shard, &failure);
                for &(fi, gi) in work {
                    if let Some(slot) = outcomes.get_mut(fi).and_then(|o| o.get_mut(gi)) {
                        *slot = Some(Err(resp.clone()));
                    }
                }
            }
        }
    }

    // Gather: emit one response per frame, in request order.
    for (disp, frame_outcomes) in disps.into_iter().zip(outcomes) {
        match disp {
            FrameDisp::Local(resp) => {
                if matches!(resp, Response::Error { .. }) {
                    RouterStats::add(&state.stats.error_frames, 1);
                }
                encode_response(&resp, out);
            }
            FrameDisp::Placed { groups, num_pairs } => {
                let mut distances = vec![0u64; num_pairs];
                let mut failure: Option<Response> = None;
                for (group, outcome) in groups.iter().zip(frame_outcomes) {
                    match outcome {
                        Some(Ok(ds)) if ds.len() == group.positions.len() => {
                            for (&pos, &d) in group.positions.iter().zip(&ds) {
                                if let Some(slot) = distances.get_mut(pos) {
                                    *slot = d;
                                }
                            }
                        }
                        Some(Err(resp)) => {
                            failure.get_or_insert(resp);
                        }
                        // Wrong count or an unfilled slot: desynced backend.
                        _ => {
                            failure.get_or_insert(shard_unavailable_response(group.shard));
                        }
                    }
                }
                match failure {
                    Some(resp) => {
                        RouterStats::add(&state.stats.error_frames, 1);
                        encode_response(&resp, out);
                    }
                    None => encode_response(&Response::Distances(distances), out),
                }
            }
        }
    }
}

/// Routes one PATH frame to the shard owning the pair (QDOL guarantees one
/// exists) and relays the answer. Out-of-range ids are rejected locally with
/// the exact frame a whole-index server sends; a dead owning shard is a
/// typed [`ErrorCode::ShardUnavailable`].
fn route_path(
    u: VertexId,
    v: VertexId,
    pool: &mut BackendPool<'_>,
    cluster: &ClusterView,
    state: &RouterState,
    out: &mut Vec<u8>,
) {
    let map = cluster.map();
    let n = map.num_vertices();
    if let Some(id) = [u, v].into_iter().find(|&id| id as usize >= n) {
        RouterStats::add(&state.stats.error_frames, 1);
        encode_response(
            &Response::Error {
                code: ErrorCode::VertexOutOfRange,
                detail: id as u64,
                message: format!("vertex id {id} out of range for {n} vertices"),
            },
            out,
        );
        return;
    }
    RouterStats::add(&state.stats.forwarded_frames, 1);
    RouterStats::add(&state.stats.queries, 1);
    let shard = map.shard_for_query(u, v);
    match pool.call(shard, |client| client.path(u, v)) {
        Ok(vertices) => encode_response(&Response::Path(vertices), out),
        Err(failure) => {
            RouterStats::add(&state.stats.shard_errors, 1);
            RouterStats::add(&state.stats.error_frames, 1);
            encode_response(&backend_failure_response(shard, &failure), out);
        }
    }
}

/// Routes one MATRIX frame: every cell is placed on the shard owning its
/// pair, each shard with work answers one sub-matrix over the (sorted,
/// deduplicated) sources and targets of its cells, and the cells are merged
/// back into the client's row-major block. All ids a shard receives are
/// owned by it — each appears in some cell placed there, and QDOL ownership
/// is per-vertex — so the extra cells a sub-matrix computes are answerable
/// waste, never `NotThisShard`. Any needed shard being dead fails the whole
/// frame (a partial matrix has no wire representation).
fn route_matrix(
    sources: &[VertexId],
    targets: &[VertexId],
    pool: &mut BackendPool<'_>,
    cluster: &ClusterView,
    opts: &RouterOptions,
    state: &RouterState,
    out: &mut Vec<u8>,
) {
    let map = cluster.map();
    let n = map.num_vertices();
    if let Some(&id) = sources.iter().chain(targets).find(|&&id| id as usize >= n) {
        RouterStats::add(&state.stats.error_frames, 1);
        encode_response(
            &Response::Error {
                code: ErrorCode::VertexOutOfRange,
                detail: id as u64,
                message: format!("vertex id {id} out of range for {n} vertices"),
            },
            out,
        );
        return;
    }
    let cells = sources.len() * targets.len();
    let payload = 1 + 4 + 8 * cells;
    if payload > opts.max_frame as usize {
        RouterStats::add(&state.stats.error_frames, 1);
        encode_response(
            &Response::Error {
                code: ErrorCode::Oversized,
                detail: cells as u64,
                message: format!(
                    "matrix of {cells} cells exceeds the {}-byte frame cap",
                    opts.max_frame
                ),
            },
            out,
        );
        return;
    }
    RouterStats::add(&state.stats.forwarded_frames, 1);
    RouterStats::add(&state.stats.queries, cells as u64);
    if cells == 0 {
        encode_response(&Response::Matrix(Vec::new()), out);
        return;
    }

    // Place every cell, collecting each shard's id sets.
    let mut shard_of_cell: Vec<usize> = Vec::with_capacity(cells);
    let mut sub_sources: Vec<Vec<VertexId>> = vec![Vec::new(); map.shard_count()];
    let mut sub_targets: Vec<Vec<VertexId>> = vec![Vec::new(); map.shard_count()];
    for &s in sources {
        for &t in targets {
            let shard = map.shard_for_query(s, t);
            shard_of_cell.push(shard);
            if let (Some(ss), Some(ts)) = (sub_sources.get_mut(shard), sub_targets.get_mut(shard)) {
                ss.push(s);
                ts.push(t);
            }
        }
    }
    for ids in sub_sources.iter_mut().chain(sub_targets.iter_mut()) {
        ids.sort_unstable();
        ids.dedup();
    }
    let needed: Vec<usize> = (0..map.shard_count())
        .filter(|&s| !sub_sources.get(s).is_none_or(Vec::is_empty))
        .collect();
    if needed.len() > 1 {
        RouterStats::add(&state.stats.fanout_frames, 1);
    }

    // Scatter: one sub-matrix conversation per shard with work.
    let mut blocks: Vec<Option<Vec<Distance>>> = vec![None; map.shard_count()];
    for &shard in &needed {
        let (Some(ss), Some(ts)) = (sub_sources.get(shard), sub_targets.get(shard)) else {
            continue;
        };
        match pool.call(shard, |client| client.matrix(ss, ts)) {
            Ok(block) if block.len() == ss.len() * ts.len() => {
                if let Some(slot) = blocks.get_mut(shard) {
                    *slot = Some(block);
                }
            }
            // Wrong cell count: desynced backend, same as dead.
            Ok(_) => {
                RouterStats::add(&state.stats.shard_errors, 1);
                RouterStats::add(&state.stats.error_frames, 1);
                encode_response(&shard_unavailable_response(shard), out);
                return;
            }
            Err(failure) => {
                RouterStats::add(&state.stats.shard_errors, 1);
                RouterStats::add(&state.stats.error_frames, 1);
                encode_response(&backend_failure_response(shard, &failure), out);
                return;
            }
        }
    }

    // Gather: pull each client cell out of its shard's sub-block.
    let mut merged: Vec<Distance> = Vec::with_capacity(cells);
    for (ci, &shard) in shard_of_cell.iter().enumerate() {
        let (s, t) = (
            sources.get(ci / targets.len()).copied().unwrap_or_default(),
            targets.get(ci % targets.len()).copied().unwrap_or_default(),
        );
        let cell = blocks
            .get(shard)
            .and_then(|b| b.as_ref())
            .and_then(|block| {
                let ss = sub_sources.get(shard)?;
                let ts = sub_targets.get(shard)?;
                let row = ss.binary_search(&s).ok()?;
                let col = ts.binary_search(&t).ok()?;
                block.get(row * ts.len() + col).copied()
            });
        match cell {
            Some(d) => merged.push(d),
            // Unreachable by construction; treat as a desynced backend
            // rather than risking a wrong-length response.
            None => {
                RouterStats::add(&state.stats.shard_errors, 1);
                RouterStats::add(&state.stats.error_frames, 1);
                encode_response(&shard_unavailable_response(shard), out);
                return;
            }
        }
    }
    encode_response(&Response::Matrix(merged), out);
}

/// Aggregates the cluster into one unsharded-looking INFO answer: global
/// vertex count, label bytes summed across shards (partition overlaps are
/// counted once per owning shard — this is real cluster memory, not the
/// deduplicated index size), and the minimum backend generation (the most
/// conservative view of how reloaded the cluster is). Flags report what
/// holds on **every** shard.
fn aggregate_info(pool: &mut BackendPool<'_>, cluster: &ClusterView) -> Response {
    let mut total_labels = 0u64;
    let mut generation = u64::MAX;
    let mut compressed = true;
    let mut mapped = true;
    for shard in 0..cluster.shard_count() {
        match pool.call(shard, |client| client.info()) {
            Ok(info) => {
                total_labels = total_labels.saturating_add(info.total_labels);
                generation = generation.min(info.generation);
                compressed &= info.compressed;
                mapped &= info.mapped;
            }
            Err(failure) => return backend_failure_response(shard, &failure),
        }
    }
    Response::Info(ServerInfo {
        num_vertices: cluster.num_vertices() as u64,
        total_labels,
        generation: if generation == u64::MAX {
            0
        } else {
            generation
        },
        compressed,
        mapped,
        shard: None,
    })
}

/// Fans RELOAD out to every shard in shard order and reports the minimum
/// resulting generation. Not atomic: a mid-sequence failure leaves earlier
/// shards reloaded, and the error frame names the first shard that failed.
fn fan_out_reload(pool: &mut BackendPool<'_>, cluster: &ClusterView) -> Response {
    let mut generation = u64::MAX;
    for shard in 0..cluster.shard_count() {
        match pool.call(shard, |client| client.reload()) {
            Ok(g) => generation = generation.min(g),
            Err(failure) => return backend_failure_response(shard, &failure),
        }
    }
    Response::Ok {
        generation: if generation == u64::MAX {
            0
        } else {
            generation
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(shard: Option<(u32, u32)>, n: u64) -> ServerInfo {
        ServerInfo {
            num_vertices: n,
            total_labels: 10,
            generation: 0,
            compressed: false,
            mapped: false,
            shard,
        }
    }

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn from_infos_accepts_a_coherent_cluster_in_any_order() {
        // Backends listed out of shard order still map correctly.
        let a = addrs(3);
        let infos = [
            info(Some((2, 3)), 16),
            info(Some((0, 3)), 16),
            info(Some((1, 3)), 16),
        ];
        let cluster = ClusterView::from_infos(&a, &infos).expect("coherent cluster");
        assert_eq!(cluster.shard_count(), 3);
        assert_eq!(cluster.num_vertices(), 16);
        assert_eq!(cluster.addr_of_shard(0), Some(a[1].as_str()));
        assert_eq!(cluster.addr_of_shard(1), Some(a[2].as_str()));
        assert_eq!(cluster.addr_of_shard(2), Some(a[0].as_str()));
        assert_eq!(cluster.addr_of_shard(3), None);
        assert_eq!(cluster.map().shard_count(), 3);
        assert_eq!(cluster.map().num_vertices(), 16);
    }

    #[test]
    fn from_infos_rejects_incoherent_clusters() {
        let a = addrs(2);
        // A whole-index backend.
        let err = ClusterView::from_infos(&a, &[info(None, 16), info(Some((1, 2)), 16)])
            .expect_err("whole index rejected");
        assert!(matches!(err, RouterError::NotSharded { .. }));
        // Duplicate shard id.
        let err = ClusterView::from_infos(&a, &[info(Some((0, 2)), 16), info(Some((0, 2)), 16)])
            .expect_err("duplicate shard rejected");
        assert!(err.to_string().contains("served by both"));
        // Mismatched global vertex count (different indexes).
        let err = ClusterView::from_infos(&a, &[info(Some((0, 2)), 16), info(Some((1, 2)), 17)])
            .expect_err("mixed indexes rejected");
        assert!(err.to_string().contains("vertices"));
        // Shard count disagreeing with the address list.
        let err = ClusterView::from_infos(&a, &[info(Some((0, 3)), 16), info(Some((1, 3)), 16)])
            .expect_err("wrong count rejected");
        assert!(err.to_string().contains("backends were given"));
        // Shard id out of range.
        let err = ClusterView::from_infos(&a, &[info(Some((0, 2)), 16), info(Some((9, 2)), 16)])
            .expect_err("id out of range rejected");
        assert!(err.to_string().contains(">="));
        // No backends at all.
        let err = ClusterView::from_infos(&[], &[]).expect_err("empty rejected");
        assert!(matches!(err, RouterError::Inconsistent(_)));
    }

    #[test]
    fn router_options_default_and_error_display() {
        let opts = RouterOptions::default();
        assert!(opts.threads >= 1);
        assert_eq!(opts.max_frame, DEFAULT_MAX_FRAME);
        let err = RouterError::NotSharded {
            addr: "10.0.0.1:4040".into(),
        };
        assert!(err.to_string().contains("10.0.0.1:4040"));
        let unavailable = shard_unavailable_response(2);
        match unavailable {
            Response::Error { code, detail, .. } => {
                assert_eq!(code, ErrorCode::ShardUnavailable);
                assert_eq!(detail, 2);
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }
}
