//! QFDL — Querying with Fully Distributed Labels.
//!
//! Every vertex's label set is split across all nodes (each node keeps the
//! labels its own SPTs generated). A query is broadcast to every node, each
//! node intersects its partial label sets, and the per-node minima are
//! reduced (`MPI_MIN` in the paper) into the answer. Memory per node is the
//! smallest of the three modes; every single query pays a broadcast plus a
//! reduction, so latency is dominated by communication and is nearly
//! independent of the dataset (Table 4).

use std::time::{Duration, Instant};

use chl_cluster::ClusterSpec;
use chl_core::labels::LabelSet;
use chl_core::oracle::DistanceOracle;
use chl_distributed::DistributedLabeling;
use chl_graph::types::{Distance, VertexId, INFINITY};
use rayon::prelude::*;

use crate::report::QueryModeReport;
use crate::workload::QueryWorkload;
use crate::QueryEngine;

/// Wire size of one query (two vertex ids) and one response (a distance).
const QUERY_WIRE_BYTES: usize = 8;
const RESPONSE_WIRE_BYTES: usize = 8;

/// The QFDL engine: per-node label partitions, broadcast + min-reduce queries.
pub struct QfdlEngine {
    partitions: Vec<Vec<LabelSet>>,
    spec: ClusterSpec,
}

impl QfdlEngine {
    /// Builds the engine from a distributed labeling, keeping its partitions
    /// exactly as the construction left them.
    pub fn new(labeling: &DistributedLabeling, spec: ClusterSpec) -> Self {
        let partitions = (0..labeling.nodes())
            .map(|i| labeling.partition(i).to_vec())
            .collect();
        QfdlEngine { partitions, spec }
    }

    /// Number of nodes holding partitions.
    pub fn nodes(&self) -> usize {
        self.partitions.len()
    }

    fn local_answer(partition: &[LabelSet], u: VertexId, v: VertexId) -> Distance {
        match (partition.get(u as usize), partition.get(v as usize)) {
            (Some(lu), Some(lv)) => lu.query_distance(lv),
            _ => INFINITY,
        }
    }
}

impl DistanceOracle for QfdlEngine {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        let n = self.num_vertices();
        if u as usize >= n || v as usize >= n {
            // Ids outside the vertex set name no vertex: unreachable, even
            // for u == v (see the `DistanceOracle` contract).
            return INFINITY;
        }
        if u == v {
            return 0;
        }
        self.partitions
            .iter()
            .map(|p| Self::local_answer(p, u, v))
            .min()
            .unwrap_or(INFINITY)
    }

    fn num_vertices(&self) -> usize {
        self.partitions.first().map(Vec::len).unwrap_or(0)
    }

    /// Labels are partitioned: the cluster total is the labeling itself.
    fn memory_bytes(&self) -> usize {
        self.memory_per_node().iter().sum()
    }
}

impl QueryEngine for QfdlEngine {
    fn name(&self) -> &'static str {
        "QFDL"
    }

    fn modeled_latency(&self) -> Duration {
        // Broadcast the query, compute locally on every node (they work in
        // parallel, so the local term is a single partial intersection), then
        // min-reduce one distance.
        let q = self.spec.nodes;
        let net = &self.spec.network;
        let local = Duration::from_nanos(400); // partial label scan, sub-µs
        net.broadcast_cost(QUERY_WIRE_BYTES, q) + local + net.allreduce_cost(RESPONSE_WIRE_BYTES, q)
    }

    fn memory_per_node(&self) -> Vec<usize> {
        self.partitions
            .iter()
            .map(|p| p.iter().map(LabelSet::memory_bytes).sum())
            .collect()
    }

    fn evaluate(&self, workload: &QueryWorkload) -> QueryModeReport {
        // Batch processing: every node scans its partition for every query;
        // nodes run in parallel, so the modeled compute is the slowest node.
        // The per-node scans really do run concurrently on this host, so when
        // partitions outnumber cores the timings include scheduling
        // contention a dedicated-node cluster would not see — per-node
        // compute is an upper bound, not an isolated measurement.
        let start = Instant::now();
        let per_node_times: Vec<Duration> = self
            .partitions
            .par_iter()
            .map(|partition| {
                let node_start = Instant::now();
                let mut acc = 0u64;
                for &(u, v) in &workload.pairs {
                    acc = acc.wrapping_add(Self::local_answer(partition, u, v));
                }
                std::hint::black_box(acc);
                node_start.elapsed()
            })
            .collect();
        let measured = start.elapsed();

        let slowest = per_node_times
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO);
        // Batched communication: the whole query batch is broadcast once and
        // the response vector reduced once.
        let q = self.spec.nodes;
        let net = &self.spec.network;
        let comm = net.broadcast_cost(QUERY_WIRE_BYTES * workload.len(), q)
            + net.allreduce_cost(RESPONSE_WIRE_BYTES * workload.len(), q);
        let batch_time = slowest + comm;
        let throughput = if batch_time.as_secs_f64() > 0.0 {
            workload.len() as f64 / batch_time.as_secs_f64()
        } else {
            f64::INFINITY
        };

        QueryModeReport {
            mode: self.name().to_string(),
            queries: workload.len(),
            throughput_qps: throughput,
            latency: self.modeled_latency(),
            measured_batch_compute: measured,
            memory_per_node_bytes: self.memory_per_node(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_pairs;
    use chl_cluster::SimulatedCluster;
    use chl_core::pll::sequential_pll;
    use chl_distributed::{distributed_plant, DistributedConfig};
    use chl_graph::generators::erdos_renyi;
    use chl_ranking::degree_ranking;

    fn engine(q: usize) -> (chl_graph::CsrGraph, QfdlEngine) {
        let g = erdos_renyi(70, 0.08, 10, 23);
        let ranking = degree_ranking(&g);
        let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(q));
        let labeling = distributed_plant(&g, &ranking, &cluster, &DistributedConfig::default());
        let engine = QfdlEngine::new(&labeling, ClusterSpec::with_nodes(q));
        (g, engine)
    }

    #[test]
    fn distributed_queries_are_exact() {
        let (g, engine) = engine(4);
        let ranking = degree_ranking(&g);
        let reference = sequential_pll(&g, &ranking).index;
        for u in (0..70u32).step_by(7) {
            for v in 0..70u32 {
                assert_eq!(engine.query(u, v), reference.query(u, v), "u={u} v={v}");
            }
        }
    }

    #[test]
    fn memory_is_partitioned_across_nodes() {
        let (_, engine) = engine(4);
        let mem = engine.memory_per_node();
        assert_eq!(mem.len(), 4);
        let total: usize = mem.iter().sum();
        let max = *mem.iter().max().unwrap();
        // No node holds more than half of the total labeling.
        assert!(max * 2 < total * 2, "sanity");
        assert!(max < total, "labels must be spread over nodes");
    }

    #[test]
    fn latency_is_dominated_by_communication() {
        let (_, e4) = engine(4);
        let (_, e16) = engine(16);
        // More nodes ⇒ more broadcast rounds ⇒ higher single-query latency.
        assert!(e16.modeled_latency() >= e4.modeled_latency());
        assert!(e4.modeled_latency() >= Duration::from_micros(5));
    }

    #[test]
    fn evaluate_produces_a_full_report() {
        let (_, engine) = engine(4);
        let w = random_pairs(70, 2000, 5);
        let r = engine.evaluate(&w);
        assert_eq!(r.mode, "QFDL");
        assert_eq!(r.queries, 2000);
        assert!(r.throughput_qps > 0.0);
        assert_eq!(r.memory_per_node_bytes.len(), 4);
    }
}
