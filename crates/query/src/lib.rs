//! # chl-query
//!
//! Distributed PPSD query serving over hub labels — the three query modes of
//! §6 of the paper:
//!
//! * **QLSN** (Querying with Labels on a Single Node): every node stores the
//!   complete labeling and answers its own queries locally. Lowest latency,
//!   highest memory, no multi-node parallelism within a query.
//! * **QFDL** (Querying with Fully Distributed Labels): each node stores only
//!   its label partition; a query is broadcast to all nodes and the partial
//!   answers are reduced with a minimum. Lowest memory, highest per-query
//!   communication.
//! * **QDOL** (Querying with Distributed Overlapping Labels): the vertex set
//!   is split into ζ partitions with `C(ζ,2) = q`; each node stores the full
//!   labels of one partition pair and answers exactly the queries that fall
//!   inside its pair via cheap point-to-point messages.
//!
//! All three modes answer queries through the workspace-wide
//! [`DistanceOracle`] trait (shared with the plain [`chl_core::HubLabelIndex`]
//! and the distributed partitions), so exactness checks, batch evaluation and
//! memory accounting are written once against `&dyn DistanceOracle`. The
//! [`QueryEngine`] subtrait adds what only a serving engine has: a mode name,
//! a modeled per-query latency and per-node memory driven by
//! [`chl_cluster::NetworkModel`], and workload evaluation producing the
//! [`QueryModeReport`] the Table 4 benchmark consumes.
//!
//! The [`workload`] module generates query batches and reads/writes them as
//! text files (one `u v` pair per line), the format `chl query --workload`
//! consumes:
//!
//! ```
//! use chl_query::workload::{random_pairs, read_workload, write_workload};
//!
//! let workload = random_pairs(1_000, 64, 7);
//! let mut file = Vec::new(); // any io::Write
//! write_workload(&workload, &mut file).unwrap();
//! assert_eq!(read_workload(file.as_slice()).unwrap(), workload);
//! ```

#![forbid(unsafe_code)]

pub mod qdol;
pub mod qfdl;
pub mod qlsn;
pub mod report;
pub mod workload;

pub use chl_core::oracle::DistanceOracle;
pub use qdol::{QdolEngine, QdolShardMap};
pub use qfdl::QfdlEngine;
pub use qlsn::QlsnEngine;
pub use report::QueryModeReport;
pub use workload::{
    load_workload, load_workload_checked, random_pairs, read_workload, read_workload_checked,
    skewed_pairs, write_workload, QueryWorkload, WorkloadError,
};

use chl_graph::types::{Distance, VertexId};

/// Common serving interface of the three query modes.
///
/// Every engine is first a [`DistanceOracle`]; this subtrait layers the
/// cluster-model concerns on top. `query` is kept as a provided alias of
/// [`DistanceOracle::distance`] so existing call sites stay source-compatible.
pub trait QueryEngine: DistanceOracle {
    /// Short mode name ("QLSN", "QFDL", "QDOL").
    fn name(&self) -> &'static str;
    /// Answers one PPSD query exactly (alias of [`DistanceOracle::distance`]).
    fn query(&self, u: VertexId, v: VertexId) -> Distance {
        self.distance(u, v)
    }
    /// Modeled single-query latency, including any cross-node communication.
    fn modeled_latency(&self) -> std::time::Duration;
    /// Label memory consumed on each node, in bytes.
    fn memory_per_node(&self) -> Vec<usize>;
    /// Evaluates a batch workload, returning the full report.
    fn evaluate(&self, workload: &QueryWorkload) -> QueryModeReport;
}
