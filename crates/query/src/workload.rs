//! Query workload generation.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use chl_graph::types::VertexId;

/// A batch of PPSD queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWorkload {
    /// The query pairs.
    pub pairs: Vec<(VertexId, VertexId)>,
}

impl QueryWorkload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Generates `count` uniformly random query pairs over `num_vertices`
/// vertices (self-queries allowed, as in the paper's 1 M / 100 M batches).
pub fn random_pairs(num_vertices: usize, count: usize, seed: u64) -> QueryWorkload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7175_6572);
    let n = num_vertices.max(1) as u32;
    let pairs = (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    QueryWorkload { pairs }
}

/// Generates a skewed workload where a fraction `hot_fraction` of queries
/// touch only the `hot_set_size` lowest-id vertices (models the locality of
/// real navigation / social query traffic).
pub fn skewed_pairs(
    num_vertices: usize,
    count: usize,
    hot_set_size: usize,
    hot_fraction: f64,
    seed: u64,
) -> QueryWorkload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5348_4f54);
    let n = num_vertices.max(1) as u32;
    let hot = hot_set_size.clamp(1, num_vertices.max(1)) as u32;
    let pairs = (0..count)
        .map(|_| {
            if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                (rng.gen_range(0..hot), rng.gen_range(0..hot))
            } else {
                (rng.gen_range(0..n), rng.gen_range(0..n))
            }
        })
        .collect();
    QueryWorkload { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pairs_are_in_range_and_deterministic() {
        let w = random_pairs(50, 1000, 7);
        assert_eq!(w.len(), 1000);
        assert!(!w.is_empty());
        assert!(w.pairs.iter().all(|&(u, v)| u < 50 && v < 50));
        assert_eq!(w, random_pairs(50, 1000, 7));
        assert_ne!(w, random_pairs(50, 1000, 8));
    }

    #[test]
    fn skewed_pairs_concentrate_on_hot_set() {
        let w = skewed_pairs(1000, 2000, 10, 0.9, 3);
        let hot_queries = w.pairs.iter().filter(|&&(u, v)| u < 10 && v < 10).count();
        assert!(
            hot_queries > 1500,
            "expected most queries in the hot set, got {hot_queries}"
        );
    }

    #[test]
    fn empty_and_degenerate_workloads() {
        assert!(random_pairs(10, 0, 1).is_empty());
        let w = random_pairs(1, 5, 1);
        assert!(w.pairs.iter().all(|&(u, v)| u == 0 && v == 0));
    }
}
