//! Query workload generation and workload files.
//!
//! Workloads are either generated ([`random_pairs`], [`skewed_pairs`]) or
//! loaded from a text file ([`read_workload`] / [`load_workload`]): one
//! `u v` pair per line, `#`/`%` comment lines ignored — the same layout the
//! `chl query --workload` CLI flag consumes and [`write_workload`] emits.
//! The `*_checked` variants ([`read_workload_checked`] /
//! [`load_workload_checked`]) additionally validate every pair against an
//! index's vertex count while line numbers are still known, so a stale
//! workload fails with a typed error naming the offending line.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use chl_graph::types::VertexId;

/// A batch of PPSD queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWorkload {
    /// The query pairs.
    pub pairs: Vec<(VertexId, VertexId)>,
}

impl QueryWorkload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Generates `count` uniformly random query pairs over `num_vertices`
/// vertices (self-queries allowed, as in the paper's 1 M / 100 M batches).
pub fn random_pairs(num_vertices: usize, count: usize, seed: u64) -> QueryWorkload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7175_6572);
    let n = num_vertices.max(1) as u32;
    let pairs = (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    QueryWorkload { pairs }
}

/// Generates a skewed workload where a fraction `hot_fraction` of queries
/// touch only the `hot_set_size` lowest-id vertices (models the locality of
/// real navigation / social query traffic).
pub fn skewed_pairs(
    num_vertices: usize,
    count: usize,
    hot_set_size: usize,
    hot_fraction: f64,
    seed: u64,
) -> QueryWorkload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5348_4f54);
    let n = num_vertices.max(1) as u32;
    let hot = hot_set_size.clamp(1, num_vertices.max(1)) as u32;
    let pairs = (0..count)
        .map(|_| {
            if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                (rng.gen_range(0..hot), rng.gen_range(0..hot))
            } else {
                (rng.gen_range(0..n), rng.gen_range(0..n))
            }
        })
        .collect();
    QueryWorkload { pairs }
}

/// Errors produced while reading a workload file.
#[derive(Debug)]
pub enum WorkloadError {
    /// An underlying IO error.
    Io(std::io::Error),
    /// A line that is neither a comment nor a `u v` pair.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A pair referencing a vertex the target index does not have (only
    /// raised by the `*_checked` readers). Workload files outlive the
    /// indexes they were written for, so a stale id is an input error that
    /// must name its line — never a panic deep in the query kernel.
    VertexOutOfRange {
        /// 1-based line number of the offending pair.
        line: usize,
        /// The out-of-range vertex id.
        vertex: VertexId,
        /// Vertex count of the index the workload was checked against.
        num_vertices: usize,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Io(e) => write!(f, "io error: {e}"),
            WorkloadError::Parse { line, message } => {
                write!(f, "workload parse error on line {line}: {message}")
            }
            WorkloadError::VertexOutOfRange {
                line,
                vertex,
                num_vertices,
            } => write!(
                f,
                "workload line {line}: vertex id {vertex} out of range for an \
                 index with {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WorkloadError {
    fn from(e: std::io::Error) -> Self {
        WorkloadError::Io(e)
    }
}

/// Reads a workload from a text stream: one `u v` pair of vertex ids per
/// line, blank lines and lines starting with `#` or `%` ignored.
pub fn read_workload<R: Read>(reader: R) -> Result<QueryWorkload, WorkloadError> {
    read_workload_impl(reader, None)
}

/// Like [`read_workload`], but additionally validates every pair against a
/// vertex count: the first id `>= num_vertices` fails with
/// [`WorkloadError::VertexOutOfRange`] naming the offending line.
pub fn read_workload_checked<R: Read>(
    reader: R,
    num_vertices: usize,
) -> Result<QueryWorkload, WorkloadError> {
    read_workload_impl(reader, Some(num_vertices))
}

fn read_workload_impl<R: Read>(
    reader: R,
    bound: Option<usize>,
) -> Result<QueryWorkload, WorkloadError> {
    let reader = BufReader::new(reader);
    let mut pairs = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let u = parse_vertex(tokens.next(), line_no)?;
        let v = parse_vertex(tokens.next(), line_no)?;
        if let Some(extra) = tokens.next() {
            return Err(WorkloadError::Parse {
                line: line_no,
                message: format!("unexpected trailing token '{extra}' (expected 'u v')"),
            });
        }
        if let Some(n) = bound {
            for id in [u, v] {
                if id as usize >= n {
                    return Err(WorkloadError::VertexOutOfRange {
                        line: line_no,
                        vertex: id,
                        num_vertices: n,
                    });
                }
            }
        }
        pairs.push((u, v));
    }
    Ok(QueryWorkload { pairs })
}

fn parse_vertex(token: Option<&str>, line: usize) -> Result<VertexId, WorkloadError> {
    let token = token.ok_or_else(|| WorkloadError::Parse {
        line,
        message: "expected two vertex ids 'u v'".to_string(),
    })?;
    token.parse::<VertexId>().map_err(|_| WorkloadError::Parse {
        line,
        message: format!("invalid vertex id '{token}'"),
    })
}

/// Loads a workload file from disk (see [`read_workload`] for the format).
pub fn load_workload<P: AsRef<Path>>(path: P) -> Result<QueryWorkload, WorkloadError> {
    read_workload(std::fs::File::open(path)?)
}

/// Loads a workload file from disk, validating every pair against
/// `num_vertices` (see [`read_workload_checked`]).
pub fn load_workload_checked<P: AsRef<Path>>(
    path: P,
    num_vertices: usize,
) -> Result<QueryWorkload, WorkloadError> {
    read_workload_checked(std::fs::File::open(path)?, num_vertices)
}

/// Writes `workload` in the textual format [`read_workload`] accepts.
pub fn write_workload<W: Write>(
    workload: &QueryWorkload,
    mut writer: W,
) -> Result<(), std::io::Error> {
    writeln!(writer, "# {} PPSD query pairs", workload.len())?;
    for &(u, v) in &workload.pairs {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pairs_are_in_range_and_deterministic() {
        let w = random_pairs(50, 1000, 7);
        assert_eq!(w.len(), 1000);
        assert!(!w.is_empty());
        assert!(w.pairs.iter().all(|&(u, v)| u < 50 && v < 50));
        assert_eq!(w, random_pairs(50, 1000, 7));
        assert_ne!(w, random_pairs(50, 1000, 8));
    }

    #[test]
    fn skewed_pairs_concentrate_on_hot_set() {
        let w = skewed_pairs(1000, 2000, 10, 0.9, 3);
        let hot_queries = w.pairs.iter().filter(|&&(u, v)| u < 10 && v < 10).count();
        assert!(
            hot_queries > 1500,
            "expected most queries in the hot set, got {hot_queries}"
        );
    }

    #[test]
    fn empty_and_degenerate_workloads() {
        assert!(random_pairs(10, 0, 1).is_empty());
        let w = random_pairs(1, 5, 1);
        assert!(w.pairs.iter().all(|&(u, v)| u == 0 && v == 0));
    }

    #[test]
    fn workload_files_round_trip() {
        let w = random_pairs(100, 50, 9);
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        assert_eq!(read_workload(buf.as_slice()).unwrap(), w);
    }

    #[test]
    fn workload_parser_accepts_comments_and_blank_lines() {
        let text = "# header\n\n% konect-style comment\n3 4\n  7 9  \n";
        let w = read_workload(text.as_bytes()).unwrap();
        assert_eq!(w.pairs, vec![(3, 4), (7, 9)]);
    }

    #[test]
    fn workload_parser_rejects_malformed_lines() {
        for bad in ["5", "a b", "1 2 3", "1 -2"] {
            let err = read_workload(bad.as_bytes()).unwrap_err();
            assert!(
                matches!(err, WorkloadError::Parse { line: 1, .. }),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn checked_reader_names_the_offending_line() {
        let text = "# header\n0 1\n\n2 7\n";
        // Bound 8: everything in range.
        let w = read_workload_checked(text.as_bytes(), 8).unwrap();
        assert_eq!(w.pairs, vec![(0, 1), (2, 7)]);
        // Bound 7: the second pair's `7` is stale; the error carries the
        // 1-based file line (4: header and blank lines still count).
        let err = read_workload_checked(text.as_bytes(), 7).unwrap_err();
        match err {
            WorkloadError::VertexOutOfRange {
                line,
                vertex,
                num_vertices,
            } => {
                assert_eq!((line, vertex, num_vertices), (4, 7, 7));
            }
            other => panic!("expected VertexOutOfRange, got {other}"),
        }
        let rendered = read_workload_checked(text.as_bytes(), 7)
            .unwrap_err()
            .to_string();
        assert!(rendered.contains("line 4"), "{rendered}");
        assert!(rendered.contains("out of range"), "{rendered}");
    }

    #[test]
    fn missing_workload_file_is_an_io_error() {
        let err = load_workload("/nonexistent/workload.txt").unwrap_err();
        assert!(matches!(err, WorkloadError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }
}
