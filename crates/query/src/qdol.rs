//! QDOL — Querying with Distributed Overlapping Labels.
//!
//! The vertex set is split into ζ partitions with `C(ζ,2) ≈ q`; every node is
//! assigned one unordered partition pair `{i, j}` and stores the **complete**
//! label sets of all vertices in those two partitions. A query `(u, v)` is
//! routed (point-to-point) to a node whose pair contains both endpoint
//! partitions and is answered there alone. Compared to QFDL this trades
//! memory (each node stores `2/ζ ≈ 2/√(2q)` of the labeling instead of `1/q`)
//! for cheaper communication and better locality, which is why the paper
//! measures it as the fastest batch mode.

use std::time::{Duration, Instant};

use chl_cluster::ClusterSpec;
use chl_core::labels::LabelSet;
use chl_core::oracle::DistanceOracle;
use chl_core::persist::ShardSpec;
use chl_core::HubLabelIndex;
use chl_distributed::DistributedLabeling;
use chl_graph::types::{Distance, VertexId};
use rayon::prelude::*;

use crate::report::QueryModeReport;
use crate::workload::QueryWorkload;
use crate::QueryEngine;

const QUERY_WIRE_BYTES: usize = 8;
const RESPONSE_WIRE_BYTES: usize = 8;

/// The QDOL engine.
pub struct QdolEngine {
    /// Full (assembled) label sets, indexed by vertex. Shared storage for the
    /// simulation; the per-node accounting below reflects what each node
    /// would actually hold.
    full: Vec<LabelSet>,
    /// Partition geometry and the node ↔ partition-pair assignment.
    map: QdolShardMap,
    spec: ClusterSpec,
}

/// Computes ζ from the cluster size: the largest ζ with `C(ζ,2) <= q`,
/// at least 2 (the paper's formula `ζ = (1 + √(1+8q)) / 2` rounded down).
pub fn zeta_for_nodes(q: usize) -> usize {
    let z = ((1.0 + (1.0 + 8.0 * q as f64).sqrt()) / 2.0).floor() as usize;
    z.max(2)
}

/// The static QDOL layout for `shard_count` shards over `num_vertices`
/// vertices: ζ contiguous vertex partitions, one unordered partition pair
/// per shard, and the query → shard placement rule.
///
/// This is the process-cluster counterpart of [`QdolEngine`]'s in-process
/// simulation, and the single source of truth both sides of a real sharded
/// deployment derive from: `chl build --shards q` calls [`Self::spec`] to
/// decide which label runs each `.chl` shard file keeps, and `chl route`
/// rebuilds the same map (it is fully determined by `(shard_count,
/// num_vertices)`) to send each query to a shard that owns both endpoints.
/// [`QdolEngine`] routes through the same map, so the simulation, the
/// builder, and the router can never disagree on placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QdolShardMap {
    num_vertices: usize,
    zeta: usize,
    /// `pair_of_shard[shard] = (i, j)` partition pair owned by `shard`.
    pair_of_shard: Vec<(usize, usize)>,
}

impl QdolShardMap {
    /// Derives the layout for a cluster of `shard_count` shards (clamped to
    /// at least 1) over `num_vertices` vertices.
    pub fn new(shard_count: usize, num_vertices: usize) -> Self {
        let q = shard_count.max(1);
        let zeta = zeta_for_nodes(q);
        // Enumerate unordered pairs (i, j), i < j, assigning them to shards
        // round-robin; with C(ζ,2) <= q every pair gets a dedicated shard.
        let mut pairs = Vec::new();
        for i in 0..zeta {
            for j in (i + 1)..zeta {
                pairs.push((i, j));
            }
        }
        let pair_of_shard: Vec<(usize, usize)> =
            (0..q).map(|shard| pairs[shard % pairs.len()]).collect();
        QdolShardMap {
            num_vertices,
            zeta,
            pair_of_shard,
        }
    }

    /// Number of shards in the layout.
    pub fn shard_count(&self) -> usize {
        self.pair_of_shard.len()
    }

    /// Number of vertices the layout covers.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of vertex partitions ζ.
    pub fn zeta(&self) -> usize {
        self.zeta
    }

    /// The partition pair shard `shard` owns.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= shard_count()`.
    pub fn pair_of_shard(&self, shard: usize) -> (usize, usize) {
        self.pair_of_shard[shard]
    }

    /// Partition of a vertex: contiguous chunks of the id space.
    /// Out-of-range ids clamp into the last partition, so placement is
    /// total — the chosen shard answers them unreachable like any server.
    pub fn partition_of(&self, v: VertexId) -> usize {
        if self.num_vertices == 0 {
            return 0;
        }
        let chunk = self.num_vertices.div_ceil(self.zeta);
        (v as usize / chunk).min(self.zeta - 1)
    }

    /// The shard a query is routed to: some shard whose pair covers both
    /// endpoint partitions (for a same-partition query, any shard containing
    /// that partition).
    pub fn shard_for_query(&self, u: VertexId, v: VertexId) -> usize {
        let pu = self.partition_of(u);
        let pv = self.partition_of(v);
        let (a, b) = if pu <= pv { (pu, pv) } else { (pv, pu) };
        self.pair_of_shard
            .iter()
            .position(|&(i, j)| (i == a && j == b) || (a == b && (i == a || j == a)))
            .unwrap_or(0)
    }

    /// The persistent [`ShardSpec`] for shard `shard_id`: its pair, ζ, and
    /// the sorted set of vertex positions whose labels it keeps (every
    /// vertex in either of its two partitions).
    ///
    /// # Panics
    ///
    /// Panics when `shard_id >= shard_count()`.
    pub fn spec(&self, shard_id: usize) -> ShardSpec {
        let (i, j) = self.pair_of_shard[shard_id];
        let owned: Vec<VertexId> = (0..self.num_vertices as VertexId)
            .filter(|&v| {
                let p = self.partition_of(v);
                p == i || p == j
            })
            .collect();
        ShardSpec {
            shard_id: shard_id as u32,
            shard_count: self.shard_count() as u32,
            zeta: self.zeta as u32,
            owned,
        }
    }
}

impl QdolEngine {
    /// Builds the engine from a distributed labeling.
    pub fn new(labeling: &DistributedLabeling, spec: ClusterSpec) -> Self {
        Self::from_index(labeling.assemble(), spec)
    }

    /// Builds the engine from an assembled index.
    pub fn from_index(index: HubLabelIndex, spec: ClusterSpec) -> Self {
        let num_vertices = index.num_vertices();
        let map = QdolShardMap::new(spec.nodes.max(1), num_vertices);
        QdolEngine {
            full: index.into_label_sets(),
            map,
            spec,
        }
    }

    /// Partition of a vertex: contiguous chunks of the id space.
    fn partition_of(&self, v: VertexId) -> usize {
        self.map.partition_of(v)
    }

    /// The node a query is routed to: some node whose pair covers both
    /// endpoint partitions (for a same-partition query, any node containing
    /// that partition).
    pub fn node_for_query(&self, u: VertexId, v: VertexId) -> usize {
        self.map.shard_for_query(u, v)
    }

    /// Number of vertex partitions ζ.
    pub fn zeta(&self) -> usize {
        self.map.zeta()
    }

    fn local_answer(&self, u: VertexId, v: VertexId) -> Distance {
        let (Some(lu), Some(lv)) = (self.full.get(u as usize), self.full.get(v as usize)) else {
            // Out-of-range ids name no vertex: unreachable, even for u == v
            // (see the `DistanceOracle` contract).
            return chl_graph::types::INFINITY;
        };
        if u == v {
            return 0;
        }
        lu.query_distance(lv)
    }
}

impl DistanceOracle for QdolEngine {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        // Routing does not change the answer (the target node holds the full
        // labels of both endpoints); evaluate it for the side effect of
        // exercising the routing table in debug builds.
        debug_assert!(self.node_for_query(u, v) < self.spec.nodes.max(1));
        self.local_answer(u, v)
    }

    fn num_vertices(&self) -> usize {
        self.map.num_vertices()
    }

    /// Each partition pair's labels are held once per owning node.
    fn memory_bytes(&self) -> usize {
        self.memory_per_node().iter().sum()
    }
}

impl QueryEngine for QdolEngine {
    fn name(&self) -> &'static str {
        "QDOL"
    }

    fn modeled_latency(&self) -> Duration {
        // One request message, a local full-label intersection, one response.
        let net = &self.spec.network;
        let local = Duration::from_micros(1);
        net.p2p_cost(QUERY_WIRE_BYTES) + local + net.p2p_cost(RESPONSE_WIRE_BYTES)
    }

    fn memory_per_node(&self) -> Vec<usize> {
        // Node {i,j} stores the full label sets of partitions i and j.
        let mut per_partition = vec![0usize; self.map.zeta()];
        for v in 0..self.map.num_vertices() {
            per_partition[self.partition_of(v as VertexId)] += self.full[v].memory_bytes();
        }
        (0..self.map.shard_count())
            .map(|node| {
                let (i, j) = self.map.pair_of_shard(node);
                per_partition[i] + per_partition[j]
            })
            .collect()
    }

    fn evaluate(&self, workload: &QueryWorkload) -> QueryModeReport {
        // Sort queries by target node (the paper does exactly this), then let
        // every node answer its own bucket; modeled batch time is the slowest
        // node plus the point-to-point exchange of queries and responses.
        // Buckets run concurrently on this host, so with more buckets than
        // cores the per-node times include scheduling contention a
        // dedicated-node cluster would not see (upper bound, not an isolated
        // measurement).
        let q = self.spec.nodes.max(1);
        let mut buckets: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); q];
        for &(u, v) in &workload.pairs {
            buckets[self.node_for_query(u, v)].push((u, v));
        }

        let start = Instant::now();
        let per_node_times: Vec<Duration> = buckets
            .par_iter()
            .map(|bucket| {
                let node_start = Instant::now();
                let mut acc = 0u64;
                for &(u, v) in bucket {
                    acc = acc.wrapping_add(self.local_answer(u, v));
                }
                std::hint::black_box(acc);
                node_start.elapsed()
            })
            .collect();
        let measured = start.elapsed();

        let slowest = per_node_times
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO);
        let net = &self.spec.network;
        let largest_bucket = buckets.iter().map(Vec::len).max().unwrap_or(0);
        // Queries are scattered to nodes and responses gathered back; the
        // critical path carries the largest bucket in each direction.
        let comm = net.p2p_cost(QUERY_WIRE_BYTES * largest_bucket)
            + net.p2p_cost(RESPONSE_WIRE_BYTES * largest_bucket);
        let batch_time = slowest + comm;
        let throughput = if batch_time.as_secs_f64() > 0.0 {
            workload.len() as f64 / batch_time.as_secs_f64()
        } else {
            f64::INFINITY
        };

        QueryModeReport {
            mode: self.name().to_string(),
            queries: workload.len(),
            throughput_qps: throughput,
            latency: self.modeled_latency(),
            measured_batch_compute: measured,
            memory_per_node_bytes: self.memory_per_node(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_pairs;
    use chl_cluster::SimulatedCluster;
    use chl_core::pll::sequential_pll;
    use chl_distributed::{distributed_plant, DistributedConfig};
    use chl_graph::generators::erdos_renyi;
    use chl_graph::types::INFINITY;
    use chl_ranking::degree_ranking;

    fn engine(q: usize) -> (chl_graph::CsrGraph, QdolEngine) {
        let g = erdos_renyi(80, 0.07, 10, 31);
        let ranking = degree_ranking(&g);
        let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(q));
        let labeling = distributed_plant(&g, &ranking, &cluster, &DistributedConfig::default());
        (g, QdolEngine::new(&labeling, ClusterSpec::with_nodes(q)))
    }

    #[test]
    fn zeta_formula_matches_paper() {
        assert_eq!(zeta_for_nodes(1), 2);
        assert_eq!(zeta_for_nodes(3), 3);
        assert_eq!(zeta_for_nodes(6), 4);
        assert_eq!(zeta_for_nodes(10), 5);
        assert_eq!(zeta_for_nodes(16), 6);
        assert_eq!(zeta_for_nodes(64), 11);
    }

    #[test]
    fn queries_are_exact_and_routed_to_valid_nodes() {
        let (g, engine) = engine(16);
        let ranking = degree_ranking(&g);
        let reference = sequential_pll(&g, &ranking).index;
        for u in (0..80u32).step_by(9) {
            for v in 0..80u32 {
                assert_eq!(engine.query(u, v), reference.query(u, v));
                let node = engine.node_for_query(u, v);
                assert!(node < 16);
                // The chosen node's pair must cover both endpoint partitions.
                let (i, j) = engine.map.pair_of_shard(node);
                let pu = engine.partition_of(u);
                let pv = engine.partition_of(v);
                assert!([i, j].contains(&pu));
                assert!([i, j].contains(&pv));
            }
        }
    }

    #[test]
    fn memory_sits_between_qfdl_and_qlsn() {
        let (g, qdol) = engine(16);
        let ranking = degree_ranking(&g);
        let full_bytes = sequential_pll(&g, &ranking).index.memory_bytes();
        let per_node = qdol.memory_per_node();
        let max_node = *per_node.iter().max().unwrap();
        assert!(
            max_node < full_bytes,
            "QDOL must store less than the full labeling per node"
        );
        assert!(max_node * 16 > full_bytes, "but far more than a 1/q share");
    }

    #[test]
    fn latency_model_is_cheaper_than_qfdl_broadcast() {
        let (_, qdol) = engine(16);
        let spec = ClusterSpec::with_nodes(16);
        // Two point-to-point hops must cost less than a 16-node broadcast
        // plus reduction.
        let qfdl_like = spec.network.broadcast_cost(8, 16) + spec.network.allreduce_cost(8, 16);
        assert!(qdol.modeled_latency() < qfdl_like + Duration::from_micros(2));
    }

    #[test]
    fn evaluate_reports_consistent_numbers() {
        let (_, engine) = engine(6);
        let w = random_pairs(80, 3000, 9);
        let r = engine.evaluate(&w);
        assert_eq!(r.queries, 3000);
        assert!(r.throughput_qps > 0.0);
        assert_eq!(r.memory_per_node_bytes.len(), 6);
        assert_eq!(r.mode, "QDOL");
    }

    #[test]
    fn shard_map_covers_every_query_and_pins_the_q3_layout() {
        // The exact layout the golden v3 shard fixtures in chl-core pin:
        // 3 shards over 16 vertices → ζ = 3, chunk = 6.
        let map = QdolShardMap::new(3, 16);
        assert_eq!(map.zeta(), 3);
        assert_eq!(map.shard_count(), 3);
        let specs: Vec<ShardSpec> = (0..3).map(|s| map.spec(s)).collect();
        assert_eq!(specs[0].owned, (0..12).collect::<Vec<_>>());
        assert_eq!(
            specs[1].owned,
            (0..6).chain(12..16).collect::<Vec<VertexId>>()
        );
        assert_eq!(specs[2].owned, (6..16).collect::<Vec<_>>());
        for (s, spec) in specs.iter().enumerate() {
            assert_eq!(spec.shard_id, s as u32);
            assert_eq!(spec.shard_count, 3);
            assert_eq!(spec.zeta, 3);
        }

        // Placement totality: the chosen shard owns both endpoints of every
        // in-range query, and every vertex is owned somewhere.
        for u in 0..16u32 {
            assert!(specs.iter().any(|spec| spec.owns(u)));
            for v in 0..16u32 {
                let shard = map.shard_for_query(u, v);
                assert!(
                    specs[shard].owns(u) && specs[shard].owns(v),
                    "({u}, {v}) routed to shard {shard} which does not own both"
                );
            }
        }

        // Out-of-range ids clamp to a valid shard instead of panicking.
        assert!(map.shard_for_query(999, 0) < 3);
        assert!(map.shard_for_query(999, 999) < 3);

        // The map is what the engine routes through, so the simulation and a
        // real cluster built from the same (q, n) agree on placement.
        let g = erdos_renyi(16, 0.3, 5, 77);
        let ranking = degree_ranking(&g);
        let engine = QdolEngine::from_index(
            sequential_pll(&g, &ranking).index,
            ClusterSpec::with_nodes(3),
        );
        for u in 0..16u32 {
            for v in 0..16u32 {
                assert_eq!(engine.node_for_query(u, v), map.shard_for_query(u, v));
            }
        }
    }

    #[test]
    fn shard_specs_validate_and_degenerate_sizes_hold() {
        for (q, n) in [(1usize, 5usize), (2, 5), (3, 1), (6, 100), (10, 7)] {
            let map = QdolShardMap::new(q, n);
            for s in 0..map.shard_count() {
                let spec = map.spec(s);
                spec.validate(n as u64).expect("derived specs are valid");
                // With at least ζ vertices no partition is empty, so every
                // shard owns something (tiny n can leave trailing partitions
                // — and shards of only those — empty, which is still valid).
                if n >= map.zeta() {
                    assert!(!spec.owned.is_empty(), "q={q} n={n} shard {s} owns nothing");
                }
            }
        }
        // Zero vertices: still a valid (empty) layout.
        let map = QdolShardMap::new(2, 0);
        assert!(map.spec(0).owned.is_empty());
        assert_eq!(map.shard_for_query(0, 0), 0);
    }

    #[test]
    fn infinity_for_disconnected_pairs() {
        let mut b = chl_graph::GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build().unwrap();
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let engine = QdolEngine::from_index(index, ClusterSpec::with_nodes(4));
        assert_eq!(engine.query(0, 3), INFINITY);
        assert_eq!(engine.query(0, 1), 1);
    }
}
