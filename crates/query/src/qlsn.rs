//! QLSN — Querying with Labels on a Single Node.
//!
//! The mode every prior hub-labeling framework supports: the complete
//! labeling is replicated on every node and a query is answered entirely by
//! the node where it originates. No communication, lowest latency, but the
//! labeling must fit on one machine and a single query exploits no
//! multi-node parallelism.

use std::time::{Duration, Instant};

use chl_cluster::ClusterSpec;
use chl_core::oracle::DistanceOracle;
use chl_core::HubLabelIndex;
use chl_distributed::DistributedLabeling;
use chl_graph::types::{Distance, VertexId};

use crate::report::QueryModeReport;
use crate::workload::QueryWorkload;
use crate::QueryEngine;

/// The QLSN engine: one fully assembled index, replicated per node.
pub struct QlsnEngine {
    index: HubLabelIndex,
    spec: ClusterSpec,
}

impl QlsnEngine {
    /// Builds the engine from a distributed labeling by assembling (and
    /// conceptually replicating) the full index.
    pub fn new(labeling: &DistributedLabeling, spec: ClusterSpec) -> Self {
        QlsnEngine {
            index: labeling.assemble(),
            spec,
        }
    }

    /// Builds the engine directly from an assembled index.
    pub fn from_index(index: HubLabelIndex, spec: ClusterSpec) -> Self {
        QlsnEngine { index, spec }
    }

    /// Access to the underlying index (used by tests).
    pub fn index(&self) -> &HubLabelIndex {
        &self.index
    }

    /// Measures the average local query time over the workload.
    fn measure_local(&self, workload: &QueryWorkload) -> (Duration, Vec<Distance>) {
        let start = Instant::now();
        let answers: Vec<Distance> = workload
            .pairs
            .iter()
            .map(|&(u, v)| self.index.query(u, v))
            .collect();
        (start.elapsed(), answers)
    }
}

impl DistanceOracle for QlsnEngine {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.index.query(u, v)
    }

    fn num_vertices(&self) -> usize {
        self.index.num_vertices()
    }

    /// Full labeling replicated on every node.
    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() * self.spec.nodes.max(1)
    }
}

impl QueryEngine for QlsnEngine {
    fn name(&self) -> &'static str {
        "QLSN"
    }

    fn modeled_latency(&self) -> Duration {
        // Purely local: estimate by timing a small sample of random-ish pairs.
        let n = self.index.num_vertices().max(1) as u32;
        let samples = 256.min(n as usize * n as usize).max(1);
        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..samples {
            let u = (i as u32).wrapping_mul(2654435761) % n;
            let v = (i as u32).wrapping_mul(40503) % n;
            acc = acc.wrapping_add(self.index.query(u, v));
        }
        std::hint::black_box(acc);
        start.elapsed() / samples as u32
    }

    fn memory_per_node(&self) -> Vec<usize> {
        // Full labeling on every node.
        vec![self.index.memory_bytes(); self.spec.nodes]
    }

    fn evaluate(&self, workload: &QueryWorkload) -> QueryModeReport {
        let (compute, answers) = self.measure_local(workload);
        std::hint::black_box(&answers);
        // A batch is answered by the node it originates on; with queries
        // arriving uniformly across nodes, the cluster processes `nodes`
        // batches concurrently, so the modeled throughput multiplies the
        // single-node rate by the node count.
        let single_node_qps = if compute.as_secs_f64() > 0.0 {
            workload.len() as f64 / compute.as_secs_f64()
        } else {
            f64::INFINITY
        };
        QueryModeReport {
            mode: self.name().to_string(),
            queries: workload.len(),
            throughput_qps: single_node_qps,
            latency: self.modeled_latency(),
            measured_batch_compute: compute,
            memory_per_node_bytes: self.memory_per_node(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_pairs;
    use chl_core::pll::sequential_pll;
    use chl_graph::generators::erdos_renyi;
    use chl_graph::sssp::dijkstra;
    use chl_ranking::degree_ranking;

    fn engine() -> (chl_graph::CsrGraph, QlsnEngine) {
        let g = erdos_renyi(60, 0.08, 10, 3);
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        (g, QlsnEngine::from_index(index, ClusterSpec::with_nodes(4)))
    }

    #[test]
    fn queries_match_dijkstra() {
        let (g, engine) = engine();
        let d = dijkstra(&g, 5);
        for v in 0..60u32 {
            assert_eq!(engine.query(5, v), d[v as usize]);
        }
        assert_eq!(engine.name(), "QLSN");
    }

    #[test]
    fn memory_is_replicated_on_every_node() {
        let (_, engine) = engine();
        let mem = engine.memory_per_node();
        assert_eq!(mem.len(), 4);
        assert!(mem[0] > 0);
        assert!(mem.iter().all(|&m| m == mem[0]));
    }

    #[test]
    fn evaluate_reports_consistent_numbers() {
        let (_, engine) = engine();
        let w = random_pairs(60, 5000, 1);
        let report = engine.evaluate(&w);
        assert_eq!(report.queries, 5000);
        assert!(report.throughput_qps > 0.0);
        assert!(report.latency > Duration::ZERO);
        assert_eq!(report.memory_per_node_bytes.len(), 4);
    }
}
