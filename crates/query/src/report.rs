//! The per-mode evaluation report consumed by the Table 4 benchmark.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Results of evaluating one query mode on one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryModeReport {
    /// Mode name ("QLSN", "QFDL", "QDOL").
    pub mode: String,
    /// Number of queries evaluated.
    pub queries: usize,
    /// Modeled throughput in queries per second for the batch (multi-node
    /// parallel processing plus batched communication).
    pub throughput_qps: f64,
    /// Modeled latency of a single isolated query.
    pub latency: Duration,
    /// Measured single-node compute time for the whole batch (no modeling).
    pub measured_batch_compute: Duration,
    /// Label memory per node in bytes.
    pub memory_per_node_bytes: Vec<usize>,
}

impl QueryModeReport {
    /// Total label memory across the cluster in bytes.
    pub fn total_memory_bytes(&self) -> usize {
        self.memory_per_node_bytes.iter().sum()
    }

    /// Maximum per-node label memory in bytes.
    pub fn max_memory_per_node_bytes(&self) -> usize {
        self.memory_per_node_bytes
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total label memory in gigabytes (the unit of Table 4).
    pub fn total_memory_gb(&self) -> f64 {
        self.total_memory_bytes() as f64 / 1e9
    }

    /// Throughput in million queries per second (the unit of Table 4).
    pub fn throughput_mqps(&self) -> f64 {
        self.throughput_qps / 1e6
    }

    /// Latency in microseconds (the unit of Table 4).
    pub fn latency_us(&self) -> f64 {
        self.latency.as_secs_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let r = QueryModeReport {
            mode: "QLSN".into(),
            queries: 100,
            throughput_qps: 2_000_000.0,
            latency: Duration::from_micros(3),
            measured_batch_compute: Duration::from_millis(1),
            memory_per_node_bytes: vec![1_000_000_000, 500_000_000],
        };
        assert_eq!(r.total_memory_bytes(), 1_500_000_000);
        assert_eq!(r.max_memory_per_node_bytes(), 1_000_000_000);
        assert!((r.total_memory_gb() - 1.5).abs() < 1e-9);
        assert!((r.throughput_mqps() - 2.0).abs() < 1e-9);
        assert!((r.latency_us() - 3.0).abs() < 1e-9);
    }
}
