//! Property-based tests for the parallel batch-query path: for **every**
//! [`DistanceOracle`] implementation in the workspace, `distances` run on a
//! pool of 1, 2 or 8 threads must be element-identical to mapping `distance`
//! sequentially over the same pairs — including self-queries (`u == v`) and
//! out-of-range vertex ids, which must answer `INFINITY`, never panic.

use proptest::prelude::*;

use chl_cluster::{ClusterSpec, SimulatedCluster};
use chl_core::flat::FlatIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::pll::sequential_pll;
use chl_distributed::{distributed_plant, DistributedConfig};
use chl_graph::types::INFINITY;
use chl_graph::{CsrGraph, GraphBuilder};
use chl_query::{QdolEngine, QfdlEngine, QlsnEngine};
use chl_ranking::degree_ranking;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        4usize..24,
        proptest::collection::vec((0u32..24, 0u32..24, 1u32..20), 3..80),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("positive weights")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_distances_match_sequential_map_for_every_oracle(
        g in arb_graph(),
        // Ids drawn beyond the maximum vertex count (24), so batches mix
        // valid pairs, self-queries and out-of-range ids.
        raw in proptest::collection::vec((0u32..40, 0u32..40), 1..150),
        q in 1usize..6,
    ) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = FlatIndex::from_index(&index);
        let spec = ClusterSpec::with_nodes(q);
        let labeling = distributed_plant(
            &g,
            &ranking,
            &SimulatedCluster::new(spec),
            &DistributedConfig::default(),
        );
        let qlsn = QlsnEngine::new(&labeling, spec);
        let qfdl = QfdlEngine::new(&labeling, spec);
        let qdol = QdolEngine::new(&labeling, spec);

        let n = g.num_vertices() as u32;
        let mut pairs = raw;
        pairs.push((0, n)); // deliberately out of range
        pairs.push((n, n)); // out-of-range self-query: INFINITY, not 0
        pairs.push((0, 0)); // in-range self-query: 0

        let oracles: [(&str, &dyn DistanceOracle); 6] = [
            ("HubLabelIndex", &index),
            ("FlatIndex", &flat),
            ("DistributedLabeling", &labeling),
            ("QLSN", &qlsn),
            ("QFDL", &qfdl),
            ("QDOL", &qdol),
        ];
        for (name, oracle) in oracles {
            let sequential: Vec<_> =
                pairs.iter().map(|&(u, v)| oracle.distance(u, v)).collect();
            // Out-of-range ids are unreachable through every implementation.
            prop_assert_eq!(oracle.distance(n, n), INFINITY, "{}: query({}, {})", name, n, n);
            prop_assert_eq!(oracle.distance(0, n), INFINITY, "{}: query(0, {})", name, n);
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool");
                let parallel = pool.install(|| oracle.distances(&pairs));
                prop_assert_eq!(
                    &parallel,
                    &sequential,
                    "{} with {} threads diverged from the sequential map",
                    name,
                    threads
                );
            }
        }
    }
}
