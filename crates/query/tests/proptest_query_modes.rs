//! Property-based tests: the three query modes always agree with each other,
//! with the assembled index and with Dijkstra, for arbitrary graphs and
//! cluster sizes, and their memory profiles keep the §6 ordering.

use proptest::prelude::*;

use chl_cluster::{ClusterSpec, SimulatedCluster};
use chl_distributed::{distributed_plant, DistributedConfig};
use chl_graph::sssp::dijkstra;
use chl_graph::{CsrGraph, GraphBuilder};
use chl_query::{QdolEngine, QfdlEngine, QlsnEngine, QueryEngine};
use chl_ranking::degree_ranking;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        4usize..30,
        proptest::collection::vec((0u32..30, 0u32..30, 1u32..20), 3..120),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("positive weights")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_modes_agree_with_dijkstra(g in arb_graph(), q in 1usize..10) {
        let ranking = degree_ranking(&g);
        let spec = ClusterSpec::with_nodes(q);
        let labeling =
            distributed_plant(&g, &ranking, &SimulatedCluster::new(spec), &DistributedConfig::default());

        let qlsn = QlsnEngine::new(&labeling, spec);
        let qfdl = QfdlEngine::new(&labeling, spec);
        let qdol = QdolEngine::new(&labeling, spec);

        let n = g.num_vertices() as u32;
        for u in (0..n).step_by(3) {
            let reference = dijkstra(&g, u);
            for v in 0..n {
                let expected = reference[v as usize];
                prop_assert_eq!(qlsn.query(u, v), expected);
                prop_assert_eq!(qfdl.query(u, v), expected);
                prop_assert_eq!(qdol.query(u, v), expected);
            }
        }
    }

    #[test]
    fn memory_ordering_follows_section_6(g in arb_graph(), q in 2usize..12) {
        let ranking = degree_ranking(&g);
        let spec = ClusterSpec::with_nodes(q);
        let labeling =
            distributed_plant(&g, &ranking, &SimulatedCluster::new(spec), &DistributedConfig::default());

        let qlsn = QlsnEngine::new(&labeling, spec);
        let qfdl = QfdlEngine::new(&labeling, spec);
        let qdol = QdolEngine::new(&labeling, spec);

        let total_qlsn: usize = qlsn.memory_per_node().iter().sum();
        let total_qfdl: usize = qfdl.memory_per_node().iter().sum();
        let total_qdol: usize = qdol.memory_per_node().iter().sum();
        // QLSN replicates everything, QFDL partitions everything, QDOL sits
        // in between (each label stored on a few nodes).
        prop_assert!(total_qfdl <= total_qdol);
        prop_assert!(total_qdol <= total_qlsn);
    }
}
