//! End-to-end test of the build → save → load → serve lifecycle through the
//! `chl` binary itself: the distances served from a `.chl` file written by
//! `chl build` must be byte-identical to what the in-memory
//! [`HubLabelIndex`] built from the same graph answers, and corrupted files
//! must fail with an error message, not a panic.

use std::path::{Path, PathBuf};
use std::process::Command;

use chl_core::api::{Algorithm, ChlBuilder, RankingStrategy};
use chl_core::flat::FlatIndex;
use chl_graph::io::read_binary;

fn chl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chl"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chl-cli-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn chl");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn run_err(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn chl");
    assert!(
        !out.status.success(),
        "command unexpectedly succeeded\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8(out.stderr).unwrap()
}

fn gen_and_build(dir: &Path) -> (PathBuf, PathBuf) {
    let graph_path = dir.join("g.bin");
    let index_path = dir.join("g.chl");
    run_ok(chl().args([
        "gen",
        "grid",
        "--rows",
        "8",
        "--cols",
        "8",
        "--seed",
        "7",
        "--out",
        graph_path.to_str().unwrap(),
    ]));
    run_ok(chl().args([
        "build",
        graph_path.to_str().unwrap(),
        "--out",
        index_path.to_str().unwrap(),
        "--algorithm",
        "hybrid",
        "--ranking",
        "degree",
        "--threads",
        "2",
    ]));
    (graph_path, index_path)
}

#[test]
fn saved_index_serves_identically_to_in_memory_build() {
    let dir = temp_dir("roundtrip");
    let (graph_path, index_path) = gen_and_build(&dir);

    // Rebuild in-process from the same graph file with the same settings.
    let graph = read_binary(std::fs::File::open(&graph_path).unwrap()).unwrap();
    let in_memory = ChlBuilder::new(&graph)
        .ranking(RankingStrategy::Degree)
        .algorithm(Algorithm::Hybrid)
        .threads(2)
        .build()
        .unwrap()
        .index;

    // The CLI-written file must answer every pair exactly like the
    // in-memory index.
    let served = FlatIndex::load(&index_path).unwrap();
    let n = graph.num_vertices() as u32;
    assert_eq!(served.num_vertices(), graph.num_vertices());
    for u in 0..n {
        for v in 0..n {
            assert_eq!(served.query(u, v), in_memory.query(u, v), "({u}, {v})");
        }
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cli_query_output_matches_library_answers() {
    let dir = temp_dir("query");
    let (graph_path, index_path) = gen_and_build(&dir);

    let graph = read_binary(std::fs::File::open(&graph_path).unwrap()).unwrap();
    let index = ChlBuilder::new(&graph)
        .ranking(RankingStrategy::Degree)
        .algorithm(Algorithm::Hybrid)
        .threads(2)
        .build()
        .unwrap()
        .index;

    let stdout = run_ok(chl().args(["query", index_path.to_str().unwrap(), "0", "63", "5", "5"]));
    assert!(
        stdout.contains(&format!("dist(0, 63) = {}", index.query(0, 63))),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("dist(5, 5) = 0"), "stdout: {stdout}");

    // Batch mode over a workload file prints latency statistics, including
    // the thread count serving the batch.
    let workload_path = dir.join("pairs.txt");
    std::fs::write(&workload_path, "# two pairs\n0 63\n10 20\n").unwrap();
    let stdout = run_ok(chl().args([
        "query",
        index_path.to_str().unwrap(),
        "--workload",
        workload_path.to_str().unwrap(),
        "--threads",
        "2",
    ]));
    for needle in [
        "queries:",
        "threads:        2",
        "throughput:",
        "latency p99:",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in: {stdout}");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_workload_fails_typed_with_the_offending_line() {
    let dir = temp_dir("stale-workload");
    let (_graph, index_path) = gen_and_build(&dir); // 8x8 grid: 64 vertices

    // A workload written for a larger graph: vertex 64 does not exist in
    // this index. The CLI must exit non-zero with an error naming the line,
    // not panic in the query kernel.
    let workload_path = dir.join("stale.txt");
    std::fs::write(&workload_path, "# written for a bigger graph\n0 63\n64 2\n").unwrap();
    let stderr = run_err(chl().args([
        "query",
        index_path.to_str().unwrap(),
        "--workload",
        workload_path.to_str().unwrap(),
    ]));
    assert!(stderr.contains("line 3"), "stderr: {stderr}");
    assert!(stderr.contains("vertex id 64"), "stderr: {stderr}");
    assert!(stderr.contains("out of range"), "stderr: {stderr}");
    assert!(stderr.contains("64 vertices"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    // Explicit out-of-range pairs fail the same way (no line numbers).
    let stderr = run_err(chl().args(["query", index_path.to_str().unwrap(), "64", "0"]));
    assert!(stderr.contains("out of range"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    // --threads is a batch-mode flag; explicit pairs reject it instead of
    // silently ignoring it.
    let stderr = run_err(chl().args([
        "query",
        index_path.to_str().unwrap(),
        "0",
        "1",
        "--threads",
        "2",
    ]));
    assert!(stderr.contains("batch modes"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_answers_are_identical_across_thread_counts() {
    let dir = temp_dir("thread-determinism");
    let (_graph, index_path) = gen_and_build(&dir);

    let workload_path = dir.join("pairs.txt");
    let mut lines = String::from("# determinism workload\n");
    for i in 0u32..200 {
        lines.push_str(&format!("{} {}\n", (i * 7) % 64, (i * 13) % 64));
    }
    std::fs::write(&workload_path, lines).unwrap();

    // `reachable` and `distance sum` aggregate every per-query answer, so
    // matching them across thread counts means the batch produced the same
    // distances in the same order.
    let fingerprint = |threads: &str| -> (String, String) {
        let stdout = run_ok(chl().args([
            "query",
            index_path.to_str().unwrap(),
            "--workload",
            workload_path.to_str().unwrap(),
            "--threads",
            threads,
        ]));
        let grab = |prefix: &str| {
            stdout
                .lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} in: {stdout}"))
                .to_string()
        };
        (grab("reachable:"), grab("distance sum:"))
    };
    let single = fingerprint("1");
    for threads in ["2", "4", "8"] {
        assert_eq!(fingerprint(threads), single, "threads={threads}");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn inspect_reports_header_and_histogram() {
    let dir = temp_dir("inspect");
    let (_graph, index_path) = gen_and_build(&dir);

    // Default inspect is header-only: instant on multi-GB files, so it must
    // neither claim full integrity nor walk the payload for a histogram.
    let stdout = run_ok(chl().args(["inspect", index_path.to_str().unwrap()]));
    for needle in [
        "format version:   3",
        "vertices:         64",
        "section checksums:",
        "serving footprint:",
        "integrity:        header only",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in: {stdout}");
    }
    assert!(
        !stdout.contains("label-size histogram"),
        "default inspect must not build the histogram: {stdout}"
    );

    // --histogram opts into the full load: integrity check + histogram.
    let stdout = run_ok(chl().args(["inspect", index_path.to_str().unwrap(), "--histogram"]));
    for needle in [
        "format version:   3",
        "integrity:        ok",
        "max label size:",
        "label-size histogram",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in: {stdout}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mmap_serving_matches_copy_load_end_to_end() {
    let dir = temp_dir("mmap");
    let (_graph, index_path) = gen_and_build(&dir);

    // Explicit pairs through the zero-copy backend print the same distances
    // the copy-loading backend prints.
    let copy = run_ok(chl().args(["query", index_path.to_str().unwrap(), "0", "63", "5", "5"]));
    let mapped = run_ok(chl().args([
        "query",
        index_path.to_str().unwrap(),
        "--mmap",
        "0",
        "63",
        "5",
        "5",
    ]));
    assert_eq!(copy, mapped, "backends must print identical distances");

    // Batch mode: the aggregate answer fingerprint must match between
    // backends, and the statistics must name the backend in play.
    let workload_path = dir.join("pairs.txt");
    let mut lines = String::from("# mmap parity workload\n");
    for i in 0u32..300 {
        lines.push_str(&format!("{} {}\n", (i * 11) % 64, (i * 17) % 64));
    }
    std::fs::write(&workload_path, lines).unwrap();
    let fingerprint = |extra: &[&str]| {
        let mut args = vec!["query", index_path.to_str().unwrap()];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--workload", workload_path.to_str().unwrap()]);
        let stdout = run_ok(chl().args(&args));
        let grab = |prefix: &str| {
            stdout
                .lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} in: {stdout}"))
                .to_string()
        };
        (grab("reachable:"), grab("distance sum:"), grab("backend:"))
    };
    let (reach_owned, sum_owned, backend_owned) = fingerprint(&[]);
    let (reach_mmap, sum_mmap, backend_mmap) = fingerprint(&["--mmap"]);
    assert_eq!(reach_owned, reach_mmap);
    assert_eq!(sum_owned, sum_mmap);
    assert!(backend_owned.contains("owned"), "{backend_owned}");
    assert!(backend_mmap.contains("mmap"), "{backend_mmap}");

    // A corrupted file must fail --mmap with the typed checksum error on
    // stderr, never a panic.
    let mut bytes = std::fs::read(&index_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    std::fs::write(&index_path, &bytes).unwrap();
    let stderr = run_err(chl().args(["query", index_path.to_str().unwrap(), "--mmap", "0", "1"]));
    assert!(stderr.contains("checksum"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_files_still_serve_through_the_copying_path() {
    use chl_core::persist;
    use chl_graph::generators::{grid_network, GridOptions};

    let dir = temp_dir("v1-compat");
    let graph = grid_network(
        &GridOptions {
            rows: 6,
            cols: 6,
            ..GridOptions::default()
        },
        7,
    );
    let index = ChlBuilder::new(&graph)
        .ranking(RankingStrategy::Degree)
        .algorithm(Algorithm::Hybrid)
        .build()
        .unwrap()
        .index;
    let flat = FlatIndex::from_index(&index);

    // A file written by the legacy v1 writer...
    let v1_path = dir.join("legacy.chl");
    std::fs::write(&v1_path, persist::to_bytes_v1(&flat)).unwrap();

    // ...is inspectable and serves correct distances via the copying path.
    let stdout = run_ok(chl().args(["inspect", v1_path.to_str().unwrap()]));
    assert!(stdout.contains("format version:   1"), "stdout: {stdout}");
    assert!(stdout.contains("payload checksum:"), "stdout: {stdout}");
    let stdout = run_ok(chl().args(["query", v1_path.to_str().unwrap(), "0", "35"]));
    assert!(
        stdout.contains(&format!("dist(0, 35) = {}", index.query(0, 35))),
        "stdout: {stdout}"
    );

    // ...but cannot be served zero-copy: typed refusal, not a panic.
    let stderr = run_err(chl().args(["query", v1_path.to_str().unwrap(), "--mmap", "0", "35"]));
    assert!(stderr.contains("v1"), "stderr: {stderr}");
    assert!(stderr.contains("zero-copy"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compressed_build_inspects_and_serves_identically_to_flat() {
    let dir = temp_dir("compressed");
    let (graph_path, flat_path) = gen_and_build(&dir);

    // Build the same graph again with --compress: the CLI must report the
    // encoded vs decoded entry bytes and the compression ratio.
    let compressed_path = dir.join("g-compressed.chl");
    let stdout = run_ok(chl().args([
        "build",
        graph_path.to_str().unwrap(),
        "--out",
        compressed_path.to_str().unwrap(),
        "--algorithm",
        "hybrid",
        "--ranking",
        "degree",
        "--threads",
        "2",
        "--compress",
    ]));
    assert!(stdout.contains("compressed entries:"), "stdout: {stdout}");
    assert!(stdout.contains("bytes encoded vs"), "stdout: {stdout}");

    // Delta+varint entries must actually be smaller than the flat records.
    let flat_len = std::fs::metadata(&flat_path).unwrap().len();
    let compressed_len = std::fs::metadata(&compressed_path).unwrap().len();
    assert!(
        compressed_len < flat_len,
        "compressed file ({compressed_len} bytes) not smaller than flat ({flat_len} bytes)"
    );

    // inspect names the encoding and reports the ratio from the header
    // alone; --histogram distinguishes resident from on-disk bytes.
    let stdout = run_ok(chl().args(["inspect", compressed_path.to_str().unwrap()]));
    for needle in [
        "entries encoding: delta+varint compressed",
        "bytes decoded",
        "x)",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in: {stdout}");
    }
    let stdout = run_ok(chl().args(["inspect", compressed_path.to_str().unwrap(), "--histogram"]));
    for needle in [
        "integrity:        ok",
        "memory footprint:",
        "on-disk storage:",
        "delta+varint compressed; --mmap serves this",
        "label-size histogram",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in: {stdout}");
    }

    // Explicit pairs: all four serving paths (flat/compressed × copy/mmap)
    // must print byte-identical distances.
    let pairs = ["0", "63", "5", "5", "17", "42"];
    let mut outputs = Vec::new();
    for path in [&flat_path, &compressed_path.clone()] {
        for mmap in [false, true] {
            let mut args = vec!["query", path.to_str().unwrap()];
            if mmap {
                args.push("--mmap");
            }
            args.extend_from_slice(&pairs);
            outputs.push(run_ok(chl().args(&args)));
        }
    }
    for output in &outputs[1..] {
        assert_eq!(output, &outputs[0], "serving paths disagree");
    }

    // Batch mode: the aggregate fingerprint must match the flat build on
    // both backends, and the backend line must say the decode is streamed
    // under --mmap.
    let workload_path = dir.join("pairs.txt");
    let mut lines = String::from("# compressed parity workload\n");
    for i in 0u32..300 {
        lines.push_str(&format!("{} {}\n", (i * 11) % 64, (i * 17) % 64));
    }
    std::fs::write(&workload_path, lines).unwrap();
    let fingerprint = |path: &Path, extra: &[&str]| {
        let mut args = vec!["query", path.to_str().unwrap()];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--workload", workload_path.to_str().unwrap()]);
        let stdout = run_ok(chl().args(&args));
        let grab = |prefix: &str| {
            stdout
                .lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} in: {stdout}"))
                .to_string()
        };
        (grab("reachable:"), grab("distance sum:"), grab("backend:"))
    };
    let (reach_flat, sum_flat, _) = fingerprint(&flat_path, &[]);
    let (reach_owned, sum_owned, _) = fingerprint(&compressed_path, &[]);
    let (reach_mmap, sum_mmap, backend_mmap) = fingerprint(&compressed_path, &["--mmap"]);
    assert_eq!(reach_owned, reach_flat);
    assert_eq!(sum_owned, sum_flat);
    assert_eq!(reach_mmap, reach_flat);
    assert_eq!(sum_mmap, sum_flat);
    assert!(backend_mmap.contains("streamed"), "{backend_mmap}");

    // A flipped byte in the compressed entries section must fail the load
    // with the typed checksum error on both backends — never a panic.
    let mut bytes = std::fs::read(&compressed_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&compressed_path, &bytes).unwrap();
    for extra in [&[][..], &["--mmap"][..]] {
        let mut args = vec!["query", compressed_path.to_str().unwrap()];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["0", "1"]);
        let stderr = run_err(chl().args(&args));
        assert!(stderr.contains("checksum"), "stderr: {stderr}");
        assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_and_bench_serve_run_the_full_lifecycle_through_the_binary() {
    use std::io::BufRead;

    let dir = temp_dir("serve");
    let (_graph, index_path) = gen_and_build(&dir);

    // Spawn `chl serve` on an ephemeral port with piped stdout and scrape
    // the address from the flushed "listening on ADDR" line.
    let mut serve = chl()
        .args([
            "serve",
            index_path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn chl serve");
    let mut serve_stdout = std::io::BufReader::new(serve.stdout.take().expect("piped stdout"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            serve_stdout
                .read_line(&mut line)
                .expect("read serve stdout"),
            0,
            "chl serve exited before printing its address"
        );
        if let Some(addr) = line.trim().strip_prefix("listening on ") {
            break addr.to_string();
        }
    };

    // Bench it: 4 concurrent connections, then shut the server down from
    // the same invocation.
    let stdout = run_ok(chl().args([
        "bench-serve",
        &addr,
        "--connections",
        "4",
        "--duration-ms",
        "300",
        "--shutdown",
    ]));

    // The summary parses: nonzero throughput, zero errors, p50 <= p999.
    let field = |prefix: &str| -> String {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(prefix))
            .unwrap_or_else(|| panic!("missing {prefix} in: {stdout}"))
            .trim()
            .to_string()
    };
    assert_eq!(field("connections:"), "4");
    assert_eq!(field("errors:"), "0");
    let throughput: f64 = field("throughput:")
        .split_whitespace()
        .next()
        .expect("throughput value")
        .parse()
        .expect("numeric throughput");
    assert!(throughput > 0.0, "stdout: {stdout}");
    let micros = |prefix: &str| -> f64 {
        field(prefix)
            .split_whitespace()
            .next()
            .expect("latency value")
            .parse()
            .expect("numeric latency")
    };
    assert!(
        micros("latency p50:") <= micros("latency p999:"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("server shut down"), "stdout: {stdout}");

    // The SHUTDOWN frame lands: the serve child exits cleanly on its own
    // and reports what it served.
    let status = serve.wait().expect("wait for chl serve");
    assert!(status.success(), "chl serve exited with {status}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut serve_stdout, &mut rest).expect("drain serve stdout");
    assert!(rest.contains("served "), "serve stdout: {rest}");
    assert!(rest.contains("queries"), "serve stdout: {rest}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Spawns a `chl` subcommand with piped stdout and scrapes the flushed
/// `listening on ADDR` line, returning the child + its reader + the address.
fn spawn_listener(
    args: &[&str],
) -> (
    std::process::Child,
    std::io::BufReader<std::process::ChildStdout>,
    String,
) {
    use std::io::BufRead;
    let mut child = chl()
        .args(args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn chl listener");
    let mut stdout = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stdout.read_line(&mut line).expect("read listener stdout"),
            0,
            "chl {args:?} exited before printing its address"
        );
        if let Some(addr) = line.trim().strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    (child, stdout, addr)
}

#[test]
fn sharded_build_serves_through_real_processes_behind_the_router() {
    use chl_serve::{Client, ClientError, ErrorCode};
    use std::time::Duration;

    let dir = temp_dir("sharded");
    let (graph_path, index_path) = gen_and_build(&dir); // 8x8 grid: 64 vertices

    // Rebuild with --shards 3: the unsharded index plus three QDOL shard
    // files appear, and the report names the layout.
    let stdout = run_ok(chl().args([
        "build",
        graph_path.to_str().unwrap(),
        "--out",
        index_path.to_str().unwrap(),
        "--algorithm",
        "hybrid",
        "--ranking",
        "degree",
        "--threads",
        "2",
        "--shards",
        "3",
    ]));
    assert!(stdout.contains("sharding: 3 shards"), "stdout: {stdout}");
    let shard_paths: Vec<PathBuf> = (0..3)
        .map(|i| dir.join(format!("g.shard-{i}-of-3.chl")))
        .collect();
    for path in &shard_paths {
        assert!(path.exists(), "missing shard file {}", path.display());
    }

    // inspect knows what a shard file is, without loading the payload.
    let stdout = run_ok(chl().args(["inspect", shard_paths[0].to_str().unwrap()]));
    for needle in [
        "format version:   3",
        "shard:            0 of 3",
        "owned positions:",
        "vertices:         64",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in: {stdout}");
    }
    // --histogram on a shard counts owned vertices only.
    let stdout = run_ok(chl().args(["inspect", shard_paths[0].to_str().unwrap(), "--histogram"]));
    assert!(
        stdout.contains("label-size histogram (owned vertices per bucket)"),
        "stdout: {stdout}"
    );

    // Serving a shard file without --shard (or vice versa) is a typed
    // refusal: a shard behind no router answers NOT_THIS_SHARD errors, so
    // the operator must opt in explicitly.
    let stderr = run_err(chl().args([
        "serve",
        shard_paths[0].to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
    ]));
    assert!(stderr.contains("pass --shard"), "stderr: {stderr}");
    let stderr = run_err(chl().args([
        "serve",
        index_path.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
        "--shard",
    ]));
    assert!(stderr.contains("not a shard"), "stderr: {stderr}");

    // Three real shard processes...
    let mut backends = Vec::new();
    for path in &shard_paths {
        backends.push(spawn_listener(&[
            "serve",
            path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--shard",
        ]));
    }
    // ...behind one real router process...
    let backend_addrs: Vec<String> = backends.iter().map(|(_, _, addr)| addr.clone()).collect();
    let mut route_args = vec!["route"];
    route_args.extend(backend_addrs.iter().map(String::as_str));
    route_args.extend_from_slice(&["--addr", "127.0.0.1:0", "--threads", "2"]);
    let (mut route_child, mut route_stdout, route_addr) = spawn_listener(&route_args);
    // ...and the unsharded index served as the oracle.
    let (mut oracle_child, mut oracle_stdout, oracle_addr) = spawn_listener(&[
        "serve",
        index_path.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "2",
    ]);

    let connect = |addr: &str| -> Client {
        let mut client =
            Client::connect(addr.parse::<std::net::SocketAddr>().expect("addr")).expect("connect");
        client
            .set_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        client
    };
    let mut routed = connect(&route_addr);
    let mut oracle = connect(&oracle_addr);

    // Every ordered pair, batched per source: the routed cluster answers
    // byte-identically to the unsharded oracle.
    for u in 0..64u32 {
        let pairs: Vec<(u32, u32)> = (0..64u32).map(|v| (u, v)).collect();
        assert_eq!(
            routed.query_batch(&pairs).expect("routed batch"),
            oracle.query_batch(&pairs).expect("oracle batch"),
            "batch for source {u} diverged"
        );
    }
    // Out-of-range and self queries degrade identically, message included.
    for &(u, v) in &[(64u32, 0u32), (0, 99), (64, 64), (5, 5)] {
        match (routed.query(u, v), oracle.query(u, v)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "({u}, {v})"),
            (
                Err(ClientError::Server {
                    code: rc,
                    detail: rd,
                    message: rm,
                }),
                Err(ClientError::Server {
                    code: oc,
                    detail: od,
                    message: om,
                }),
            ) => {
                assert_eq!(rc, oc, "({u}, {v})");
                assert_eq!(rc, ErrorCode::VertexOutOfRange);
                assert_eq!(rd, od, "({u}, {v})");
                assert_eq!(rm, om, "({u}, {v})");
            }
            other => panic!("router and oracle disagree for ({u}, {v}): {other:?}"),
        }
    }
    drop(routed);
    drop(oracle);

    // bench-serve cannot tell the router from a single server: a clean run
    // with zero error frames, then its --shutdown stops the router process.
    let stdout = run_ok(chl().args([
        "bench-serve",
        &route_addr,
        "--connections",
        "2",
        "--duration-ms",
        "200",
        "--shutdown",
    ]));
    let errors_line = stdout
        .lines()
        .find(|l| l.starts_with("errors:"))
        .unwrap_or_else(|| panic!("missing errors line in: {stdout}"));
    assert_eq!(errors_line.split_whitespace().nth(1), Some("0"));

    let status = route_child.wait().expect("wait for chl route");
    assert!(status.success(), "chl route exited with {status}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut route_stdout, &mut rest).expect("drain route stdout");
    assert!(rest.contains("routed "), "route stdout: {rest}");

    // The backends outlive their router; stop each over its own socket.
    for (mut child, _stdout, addr) in backends {
        connect(&addr).shutdown_server().expect("backend shutdown");
        let status = child.wait().expect("wait for shard server");
        assert!(status.success(), "shard server exited with {status}");
    }
    connect(&oracle_addr)
        .shutdown_server()
        .expect("oracle shutdown");
    assert!(oracle_child.wait().expect("wait oracle").success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut oracle_stdout, &mut rest).expect("drain oracle stdout");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_and_missing_inputs_fail_cleanly() {
    let dir = temp_dir("corrupt");
    let (_graph, index_path) = gen_and_build(&dir);

    // Flip one payload byte: query must fail with the checksum error on
    // stderr and a nonzero exit code — not a panic.
    let mut bytes = std::fs::read(&index_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&index_path, &bytes).unwrap();
    let stderr = run_err(chl().args(["query", index_path.to_str().unwrap(), "0", "1"]));
    assert!(stderr.contains("checksum"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    let stderr =
        run_err(chl().args(["query", dir.join("missing.chl").to_str().unwrap(), "0", "1"]));
    assert!(stderr.contains("error"), "stderr: {stderr}");

    let stderr = run_err(chl().args(["frobnicate"]));
    assert!(stderr.contains("unknown command"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}
