//! `chl paths` / `chl matrix` / `chl topk`: the post-PPSD query verbs.
//!
//! All three serve from a saved `.chl` file through the same two backends
//! as `chl query` (copy-loading [`FlatIndex`], zero-copy [`MmapIndex`]
//! under `--mmap`) and print deterministic, line-oriented output:
//!
//! - `paths` reconstructs exact shortest paths from the index's parent
//!   records (written by `chl build --paths`). An index without the path
//!   section fails with a typed message instead of guessing.
//! - `matrix` evaluates a `sources × targets` distance block through the
//!   hub-side pivoted kernel — byte-identical to per-pair queries, but
//!   gathering each side's labels once.
//! - `topk` ranks targets by distance from one source (`--radius` switches
//!   to the POI-within-radius variant).

use std::time::Instant;

use chl_core::flat::FlatIndex;
use chl_core::mapped::MmapIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::paths::PathOracle;
use chl_graph::types::{Distance, VertexId, INFINITY};
use chl_query::workload::load_workload_checked;

use crate::opts::Opts;
use crate::query::{check_vertex, parse_explicit_pairs};
use crate::CliError;

pub const USAGE: &str = "\
usage: chl paths <index.chl> [u v [u v ...]]
       chl paths <index.chl> --workload <pairs.txt>
       chl paths <index.chl> --mmap ...

Reconstructs exact shortest paths (vertex walks, endpoints included) from
an index built with 'chl build --paths'. Prints one path per pair.

options:
  --workload FILE     text file with one 'u v' pair per line (# comments)
  --mmap              serve zero-copy from the OS page cache";

pub const MATRIX_USAGE: &str = "\
usage: chl matrix <index.chl> --sources 0,1,2 --targets 3,4,5
       chl matrix <index.chl> --sources-file s.txt --targets-file t.txt

Evaluates the sources x targets distance block (row-major, one row per
line, 'inf' for unreachable) through the hub-side pivoted kernel.

options:
  --sources LIST      comma-separated source vertex ids
  --targets LIST      comma-separated target vertex ids
  --sources-file F    one source id per line (# comments)
  --targets-file F    one target id per line (# comments)
  --threads N         worker threads                          [all cores]
  --time              print block timing on stderr
  --mmap              serve zero-copy from the OS page cache";

pub const TOPK_USAGE: &str = "\
usage: chl topk <index.chl> <source> --targets 1,2,3 [--k N]
       chl topk <index.chl> <source> --targets-file t.txt --radius R

Ranks targets by distance from one source, ascending by (distance, id);
unreachable targets never appear. --radius R switches from the k nearest
to every target within distance R (inclusive).

options:
  --targets LIST      comma-separated candidate target ids
  --targets-file F    one target id per line (# comments)
  --k N               how many nearest targets to keep             [10]
  --radius R          within-radius mode (mutually exclusive with --k)
  --mmap              serve zero-copy from the OS page cache";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &["workload"], &["mmap"])?;
    let index_path = opts.positional(0, "index file argument")?.to_string();
    let backend = Backend::open(&index_path, opts.switch("mmap"))?;
    let n = backend.oracle().num_vertices();
    if !backend.paths().has_path_data() {
        return Err(format!(
            "index {index_path} carries no path data (rebuild with 'chl build --paths')"
        )
        .into());
    }

    let explicit = parse_explicit_pairs(&opts.positionals()[1..])?;
    let pairs: Vec<(VertexId, VertexId)> = match (opts.value("workload"), explicit.is_empty()) {
        (Some(_), false) => return Err("give either explicit pairs or --workload, not both".into()),
        (Some(path), true) => {
            load_workload_checked(path, n)
                .map_err(|e| format!("cannot load workload {path}: {e}"))?
                .pairs
        }
        (None, false) => explicit,
        (None, true) => return Err("nothing to reconstruct: give 'u v' pairs or --workload".into()),
    };

    for &(u, v) in &pairs {
        check_vertex(u, n)?;
        check_vertex(v, n)?;
        match backend.paths().path(u, v) {
            Ok(Some(walk)) => {
                let d = backend.oracle().distance(u, v);
                let rendered: Vec<String> = walk.iter().map(|x| x.to_string()).collect();
                println!(
                    "path({u}, {v}) = {} ({} hops, dist {d})",
                    rendered.join(" -> "),
                    walk.len().saturating_sub(1)
                );
            }
            Ok(None) => println!("path({u}, {v}) = unreachable"),
            Err(e) => return Err(format!("cannot reconstruct path({u}, {v}): {e}").into()),
        }
    }
    Ok(())
}

pub fn run_matrix(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &[
            "sources",
            "targets",
            "sources-file",
            "targets-file",
            "threads",
        ],
        &["mmap", "time"],
    )?;
    let index_path = opts.positional(0, "index file argument")?.to_string();
    opts.reject_extra_positionals(1)?;
    let backend = Backend::open(&index_path, opts.switch("mmap"))?;
    let oracle = backend.oracle();
    let n = oracle.num_vertices();

    let sources = id_list(&opts, "sources", n)?;
    let targets = id_list(&opts, "targets", n)?;
    let threads: usize = opts.parsed_or("threads", 0)?;
    if opts.value("threads").is_some() && threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| format!("cannot build thread pool: {e}"))?;

    let start = Instant::now();
    let block = pool.install(|| oracle.matrix(&sources, &targets));
    let elapsed = start.elapsed();
    for row in block.chunks(targets.len()) {
        let cells: Vec<String> = row.iter().map(|&d| render_distance(d)).collect();
        println!("{}", cells.join(" "));
    }
    if opts.switch("time") {
        eprintln!(
            "matrix: {}x{} = {} cells in {elapsed:.2?}",
            sources.len(),
            targets.len(),
            block.len()
        );
    }
    Ok(())
}

pub fn run_topk(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &["targets", "targets-file", "k", "radius"], &["mmap"])?;
    let index_path = opts.positional(0, "index file argument")?.to_string();
    let source: VertexId = opts
        .positional(1, "source vertex argument")?
        .parse()
        .map_err(|_| "invalid source vertex id".to_string())?;
    opts.reject_extra_positionals(2)?;
    let backend = Backend::open(&index_path, opts.switch("mmap"))?;
    let oracle = backend.oracle();
    let n = oracle.num_vertices();
    check_vertex(source, n)?;
    let targets = id_list(&opts, "targets", n)?;

    let hits = match opts.value("radius") {
        Some(_) if opts.value("k").is_some() => {
            return Err("--k and --radius are mutually exclusive".into())
        }
        Some(_) => {
            let radius: Distance = opts.parsed_or("radius", 0)?;
            oracle.within_radius(source, &targets, radius)
        }
        None => {
            let k: usize = opts.parsed_or("k", 10)?;
            if k == 0 {
                return Err("--k must be at least 1".into());
            }
            oracle.topk(source, &targets, k)
        }
    };
    for (t, d) in &hits {
        println!("{t} {d}");
    }
    if hits.is_empty() {
        eprintln!("no reachable targets matched");
    }
    Ok(())
}

/// The two serving backends, same pair as `chl query` (no hot-hub cache:
/// these verbs are batch-shaped, and the cache only accelerates point
/// queries).
enum Backend {
    Owned(FlatIndex),
    Mapped(MmapIndex),
}

impl Backend {
    fn open(index_path: &str, mmap: bool) -> Result<Backend, CliError> {
        Ok(if mmap {
            Backend::Mapped(
                MmapIndex::open(index_path)
                    .map_err(|e| format!("cannot map index {index_path}: {e}"))?,
            )
        } else {
            Backend::Owned(
                FlatIndex::load(index_path)
                    .map_err(|e| format!("cannot load index {index_path}: {e}"))?,
            )
        })
    }

    fn oracle(&self) -> &dyn DistanceOracle {
        match self {
            Backend::Owned(index) => index,
            Backend::Mapped(index) => index,
        }
    }

    fn paths(&self) -> &dyn PathOracle {
        match self {
            Backend::Owned(index) => index,
            Backend::Mapped(index) => index,
        }
    }
}

fn render_distance(d: Distance) -> String {
    if d == INFINITY {
        "inf".to_string()
    } else {
        d.to_string()
    }
}

/// Resolves `--NAME 0,1,2` or `--NAME-file F` (one id per line, `#`
/// comments) into a validated id list. Exactly one of the two must be
/// given; every id is range-checked before any query runs.
fn id_list(opts: &Opts, name: &str, n: usize) -> Result<Vec<VertexId>, CliError> {
    let file_key = format!("{name}-file");
    let ids = match (opts.value(name), opts.value(&file_key)) {
        (Some(_), Some(_)) => {
            return Err(format!("--{name} and --{file_key} are mutually exclusive").into())
        }
        (Some(list), None) => parse_id_list(list)?,
        (None, Some(path)) => load_id_file(path)?,
        (None, None) => return Err(format!("missing --{name} LIST or --{file_key} FILE").into()),
    };
    if ids.is_empty() {
        return Err(format!("--{name} names no vertex ids").into());
    }
    for &id in &ids {
        check_vertex(id, n)?;
    }
    Ok(ids)
}

fn parse_id_list(list: &str) -> Result<Vec<VertexId>, CliError> {
    list.split(',')
        .map(|tok| {
            let tok = tok.trim();
            tok.parse::<VertexId>()
                .map_err(|_| format!("invalid vertex id '{tok}'").into())
        })
        .collect()
}

fn load_id_file(path: &str) -> Result<Vec<VertexId>, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read id file {path}: {e}"))?;
    let mut ids = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for tok in line.split_whitespace() {
            ids.push(
                tok.parse::<VertexId>()
                    .map_err(|_| format!("{path}:{}: invalid vertex id '{tok}'", lineno + 1))?,
            );
        }
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_lists_parse_and_reject() {
        assert_eq!(parse_id_list("0, 1,2").unwrap(), vec![0, 1, 2]);
        assert!(parse_id_list("0,x").is_err());
        assert!(parse_id_list("").is_err());
        assert_eq!(render_distance(7), "7");
        assert_eq!(render_distance(INFINITY), "inf");
    }

    #[test]
    fn id_files_skip_comments_and_name_bad_lines() {
        let dir = std::env::temp_dir().join(format!("chl-idfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, "# poi set\n0 1\n2 # inline\n\n3\n").unwrap();
        assert_eq!(
            load_id_file(good.to_str().unwrap()).unwrap(),
            vec![0, 1, 2, 3]
        );
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "0\nnope\n").unwrap();
        let err = load_id_file(bad.to_str().unwrap()).unwrap_err().to_string();
        assert!(err.contains(":2:"), "error names the line: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
