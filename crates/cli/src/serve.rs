//! `chl serve`: keep a `.chl` index loaded and answer queries over TCP.
//!
//! The long-running counterpart of `chl query`: one process loads (or maps)
//! the index once and serves any number of client connections over the
//! binary protocol, with a minimal HTTP `GET` adapter on the same port for
//! curl-ability. The process runs until a client sends a SHUTDOWN frame,
//! then prints its serving statistics.
//!
//! The line `listening on ADDR` is printed (and flushed) before the first
//! accept, so scripts that spawn `chl serve --addr 127.0.0.1:0` can scrape
//! the ephemeral port from stdout.

use std::io::Write;
use std::sync::Arc;

use chl_serve::{ServeOptions, Server, SharedIndex};

use crate::opts::Opts;
use crate::CliError;

pub const USAGE: &str = "\
usage: chl serve <index.chl> [--addr HOST:PORT] [--threads N] [--mmap]
                 [--hot-hubs K] [--shard]

Serves point-to-point shortest-distance queries from a saved index over
TCP until a client sends a SHUTDOWN frame. Connections speaking the
binary protocol (preamble 'CHL1') get length-prefixed frames with
pipelining and batch coalescing; anything else is answered as HTTP/1.1
(GET /distance?s=U&t=V, /info, /healthz). A RELOAD frame revalidates
the index file and hot-swaps it without dropping in-flight requests.

options:
  --addr HOST:PORT    listen address (port 0 picks one) [127.0.0.1:7557]
  --threads N         connection worker threads                      [4]
  --max-frame BYTES   largest accepted request frame            [1 MiB]
  --mmap              serve zero-copy from the OS page cache (v2 files)
  --hot-hubs K        cache the K top-ranked hubs' distance rows and
                      consult them before the merge join; the cache is
                      rebuilt atomically on RELOAD                 [off]
  --shard             required to serve a .chl v3 shard file; the server
                      answers NOT_THIS_SHARD for unowned vertices and is
                      meant to sit behind 'chl route'";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &["addr", "threads", "max-frame", "hot-hubs"],
        &["mmap", "shard"],
    )?;
    let index_path = opts.positional(0, "index file argument")?.to_string();
    opts.reject_extra_positionals(1)?;
    let addr = opts.value("addr").unwrap_or("127.0.0.1:7557").to_string();
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        threads: opts.parsed_or("threads", defaults.threads)?,
        max_frame: opts.parsed_or("max-frame", defaults.max_frame)?,
        ..defaults
    };
    if opts.value("threads").is_some() && options.threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let hot_hubs: u32 = opts.parsed_or("hot-hubs", 0)?;
    let shared = Arc::new(
        SharedIndex::open_with(&index_path, opts.switch("mmap"), hot_hubs)
            .map_err(|e| format!("cannot load index {index_path}: {e}"))?,
    );
    let snapshot = shared.snapshot();
    // Serving a shard is an explicit decision: a shard answers foreign
    // vertices with NOT_THIS_SHARD, which only makes sense behind
    // 'chl route'. Refuse the mismatched combinations up front instead of
    // surprising clients at query time.
    match (opts.switch("shard"), snapshot.shard()) {
        (true, None) => {
            return Err(format!(
                "--shard given but {index_path} is not a shard file (no shard section)"
            )
            .into())
        }
        (false, Some(spec)) => {
            return Err(format!(
                "{index_path} is shard {} of {}; pass --shard to serve it behind 'chl route'",
                spec.shard_id, spec.shard_count
            )
            .into())
        }
        (true, Some(spec)) => println!(
            "shard {} of {}: owns {} of {} vertex positions",
            spec.shard_id,
            spec.shard_count,
            spec.owned_count(),
            snapshot.num_vertices()
        ),
        (false, None) => {}
    }
    println!(
        "serving {index_path}: {} vertices, {} labels, backend {}",
        snapshot.num_vertices(),
        snapshot.total_labels(),
        snapshot.backend_name()
    );
    if snapshot.hot_hubs() > 0 {
        println!(
            "hot-hub cache: {} hubs, {} bytes",
            snapshot.hot_hubs(),
            snapshot.cache_bytes()
        );
    }
    drop(snapshot);

    let server = Server::bind(addr.as_str(), shared, options)
        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    println!("listening on {}", server.local_addr());
    // Parent processes scrape the ephemeral port from a pipe; a block-
    // buffered stdout would hold the line until exit.
    std::io::stdout().flush()?;

    let handle = server.handle();
    server.run()?;
    let stats = handle.stats();
    println!(
        "served {} connections ({} http), {} frames, {} queries in {} batches \
         (max {} frames coalesced), {} error frames, {} reloads",
        stats.connections,
        stats.http_requests,
        stats.frames,
        stats.queries,
        stats.batch_calls,
        stats.max_coalesced,
        stats.error_frames,
        stats.reloads
    );
    Ok(())
}
