//! `chl build`: graph file → `ChlBuilder` → `.chl` index file.

use std::path::Path;
use std::time::Instant;

use chl_core::api::{Algorithm, ChlBuilder, RankingStrategy};
use chl_core::persist::{self, SaveOptions};
use chl_query::QdolShardMap;

use crate::graph_files::{load_graph, GraphFormat};
use crate::opts::Opts;
use crate::CliError;

pub const USAGE: &str = "\
usage: chl build <graph-file> --out <index.chl> [options]

Builds the canonical hub labeling of a graph and writes it as a .chl index.

options:
  --out FILE          output index path (required)
  --algorithm NAME    pll | sparapll | lcc | gll | plant | hybrid  [hybrid]
  --ranking NAME      degree | betweenness | auto                  [auto]
  --seed N            seed for ranking sampling                    [42]
  --threads N         worker threads, 0 = all cores                [0]
  --format NAME       dimacs | binary | edgelist    [inferred from extension]
  --directed          read the graph as directed
  --one-based         edge-list vertex ids start at 1 (KONECT)
  --compress          delta+varint encode the entries section (smaller file,
                      queries stream-decode under --mmap)
  --paths             also record per-entry parent pointers so 'chl paths'
                      and the PATH protocol op can reconstruct shortest
                      paths (adds 4 bytes per label, forces .chl v3)
  --shards Q          additionally write Q QDOL shard files
                      (<out-stem>.shard-I-of-Q.chl) whose union is exactly
                      the unsharded index; serve each with
                      'chl serve --shard' behind 'chl route'";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &[
            "out",
            "algorithm",
            "ranking",
            "seed",
            "threads",
            "format",
            "shards",
        ],
        &["directed", "one-based", "compress", "paths"],
    )?;
    let graph_path = opts.positional(0, "graph file argument")?.to_string();
    opts.reject_extra_positionals(1)?;
    let out = opts
        .value("out")
        .ok_or("missing --out <index.chl>")?
        .to_string();

    let algorithm: Algorithm = opts
        .value("algorithm")
        .unwrap_or("hybrid")
        .parse()
        .map_err(|e| format!("{e}"))?;
    let seed: u64 = opts.parsed_or("seed", 42)?;
    let threads: usize = opts.parsed_or("threads", 0)?;
    let ranking = match opts.value("ranking").unwrap_or("auto") {
        "degree" => RankingStrategy::Degree,
        "betweenness" => RankingStrategy::Betweenness { seed },
        "auto" => RankingStrategy::Auto { seed },
        other => {
            return Err(
                format!("unknown ranking '{other}' (expected degree, betweenness or auto)").into(),
            )
        }
    };
    let format = opts.value("format").map(GraphFormat::parse).transpose()?;

    let load_start = Instant::now();
    let graph = load_graph(
        Path::new(&graph_path),
        format,
        opts.switch("directed"),
        opts.switch("one-based"),
    )?;
    println!(
        "loaded {}: {} vertices, {} edges in {:.2?}",
        graph_path,
        graph.num_vertices(),
        graph.num_edges(),
        load_start.elapsed()
    );

    let build_start = Instant::now();
    let flat = ChlBuilder::new(&graph)
        .ranking(ranking)
        .algorithm(algorithm)
        .threads(threads)
        .validate()?
        .build_flat()?;
    let build_time = build_start.elapsed();
    // --paths re-walks the label set against the graph to record, for every
    // entry, the first hop of the hub-to-vertex shortest path; shard files
    // derived below inherit the parents through restrict_to_shard().
    let flat = if opts.switch("paths") {
        let t = Instant::now();
        let flat = chl_core::paths::attach_parents(&graph, flat)
            .map_err(|e| format!("cannot attach path data: {e}"))?;
        println!("attached path parents in {:.2?}", t.elapsed());
        flat
    } else {
        flat
    };
    println!(
        "built {} labeling in {:.2?}: {} labels, avg {:.2} per vertex, max {}",
        algorithm,
        build_time,
        flat.total_labels(),
        flat.average_label_size(),
        flat.max_label_size()
    );

    // save_with() writes the current v3 format: 8-byte-aligned sections
    // served zero-copy (`chl query --mmap`), a header CRC, and the entries
    // section delta+varint encoded under --compress.
    let options = SaveOptions {
        compress: opts.switch("compress"),
        ..SaveOptions::default()
    };
    flat.save_with(&out, &options)
        .map_err(|e| format!("cannot write index {out}: {e}"))?;
    let file_len = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    // The ratio report reads the header back from disk; the index itself is
    // already safely written, so a hiccup here only degrades the message.
    match (options.compress, persist::load_header(&out)) {
        (true, Ok(header)) => {
            let encoded = header.entries_section_len(file_len);
            let decoded = header.decoded_entries_len();
            let ratio = decoded as f64 / (encoded.max(1)) as f64;
            println!(
                "wrote {out}: {file_len} bytes (.chl v{}, compressed entries: \
                 {encoded} bytes encoded vs {decoded} decoded, {ratio:.2}x)",
                persist::VERSION
            );
        }
        _ => println!("wrote {out}: {file_len} bytes (.chl v{})", persist::VERSION),
    }

    let shards: usize = opts.parsed_or("shards", 0)?;
    if shards > 0 {
        write_shards(&flat, &out, shards, &options)?;
    }
    Ok(())
}

/// Writes the `--shards Q` QDOL shard files next to the unsharded index.
/// The layout is derived from `(Q, n)` alone — the same derivation
/// `chl route` repeats at startup — so builder and router always agree on
/// which shard owns a query.
fn write_shards(
    flat: &chl_core::flat::FlatIndex,
    out: &str,
    shards: usize,
    options: &SaveOptions,
) -> Result<(), CliError> {
    let map = QdolShardMap::new(shards, flat.num_vertices());
    println!(
        "sharding: {} shards over {} vertices (zeta {})",
        map.shard_count(),
        map.num_vertices(),
        map.zeta()
    );
    for shard_id in 0..map.shard_count() {
        let spec = map.spec(shard_id);
        let owned = spec.owned_count();
        let path = shard_path(out, shard_id, map.shard_count());
        let shard = flat
            .restrict_to_shard(spec)
            .map_err(|e| format!("cannot derive shard {shard_id}: {e}"))?;
        shard
            .save_with(&path, options)
            .map_err(|e| format!("cannot write shard {path}: {e}"))?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "wrote {path}: {bytes} bytes (shard {shard_id} of {}, owns {owned} vertices, \
             {} labels)",
            map.shard_count(),
            shard.total_labels()
        );
    }
    Ok(())
}

/// `g.chl` + shard 1 of 3 → `g.shard-1-of-3.chl` (the `.chl` suffix moves
/// to the end; a stem without one just gains the shard suffix).
fn shard_path(out: &str, shard_id: usize, shard_count: usize) -> String {
    let stem = out.strip_suffix(".chl").unwrap_or(out);
    format!("{stem}.shard-{shard_id}-of-{shard_count}.chl")
}
