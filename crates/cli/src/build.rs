//! `chl build`: graph file → `ChlBuilder` → `.chl` index file.

use std::path::Path;
use std::time::Instant;

use chl_core::api::{Algorithm, ChlBuilder, RankingStrategy};
use chl_core::flat::FlatIndex;

use crate::graph_files::{load_graph, GraphFormat};
use crate::opts::Opts;
use crate::CliError;

pub const USAGE: &str = "\
usage: chl build <graph-file> --out <index.chl> [options]

Builds the canonical hub labeling of a graph and writes it as a .chl index.

options:
  --out FILE          output index path (required)
  --algorithm NAME    pll | sparapll | lcc | gll | plant | hybrid  [hybrid]
  --ranking NAME      degree | betweenness | auto                  [auto]
  --seed N            seed for ranking sampling                    [42]
  --threads N         worker threads, 0 = all cores                [0]
  --format NAME       dimacs | binary | edgelist    [inferred from extension]
  --directed          read the graph as directed
  --one-based         edge-list vertex ids start at 1 (KONECT)";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &["out", "algorithm", "ranking", "seed", "threads", "format"],
        &["directed", "one-based"],
    )?;
    let graph_path = opts.positional(0, "graph file argument")?.to_string();
    opts.reject_extra_positionals(1)?;
    let out = opts
        .value("out")
        .ok_or("missing --out <index.chl>")?
        .to_string();

    let algorithm: Algorithm = opts
        .value("algorithm")
        .unwrap_or("hybrid")
        .parse()
        .map_err(|e| format!("{e}"))?;
    let seed: u64 = opts.parsed_or("seed", 42)?;
    let threads: usize = opts.parsed_or("threads", 0)?;
    let ranking = match opts.value("ranking").unwrap_or("auto") {
        "degree" => RankingStrategy::Degree,
        "betweenness" => RankingStrategy::Betweenness { seed },
        "auto" => RankingStrategy::Auto { seed },
        other => {
            return Err(
                format!("unknown ranking '{other}' (expected degree, betweenness or auto)").into(),
            )
        }
    };
    let format = opts.value("format").map(GraphFormat::parse).transpose()?;

    let load_start = Instant::now();
    let graph = load_graph(
        Path::new(&graph_path),
        format,
        opts.switch("directed"),
        opts.switch("one-based"),
    )?;
    println!(
        "loaded {}: {} vertices, {} edges in {:.2?}",
        graph_path,
        graph.num_vertices(),
        graph.num_edges(),
        load_start.elapsed()
    );

    let build_start = Instant::now();
    let result = ChlBuilder::new(&graph)
        .ranking(ranking)
        .algorithm(algorithm)
        .threads(threads)
        .validate()?
        .build()?;
    let build_time = build_start.elapsed();
    println!(
        "built {} labeling in {:.2?}: {} labels, avg {:.2} per vertex, max {}",
        algorithm,
        build_time,
        result.index.total_labels(),
        result.index.average_label_size(),
        result.index.max_label_size()
    );

    // save() writes the current v2 format: 8-byte-aligned sections that can
    // be served zero-copy (`chl query --mmap`).
    let flat = FlatIndex::from_index(&result.index);
    flat.save(&out)
        .map_err(|e| format!("cannot write index {out}: {e}"))?;
    let file_len = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out}: {file_len} bytes (.chl v{})",
        chl_core::persist::VERSION
    );
    Ok(())
}
