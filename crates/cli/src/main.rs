//! The `chl` command line: the build → save → load → serve lifecycle of a
//! hub-label index as subcommands.
//!
//! ```text
//! chl gen grid --rows 40 --cols 40 --out g.bin     # synthetic graph file
//! chl build g.bin --out g.chl --algorithm hybrid   # construct + persist
//! chl build g.bin --out g.chl --shards 3           # + QDOL shard files
//! chl query g.chl 0 1599                           # serve from the file
//! chl query g.chl --random 100000                  # latency statistics
//! chl query g.chl --mmap --random 100000           # zero-copy serving
//! chl paths g.chl 0 1599                           # exact shortest path
//! chl matrix g.chl --sources 0,1 --targets 2,3     # distance block
//! chl topk g.chl 0 --targets 7,8,9 --k 2           # nearest targets
//! chl inspect g.chl                                # header, O(1) in file size
//! chl inspect g.chl --histogram                    # + full integrity check
//! chl serve g.chl --addr 127.0.0.1:0               # long-running TCP server
//! chl serve g.shard-0-of-3.chl --shard ...         # one shard of a cluster
//! chl route ADDR0 ADDR1 ADDR2 --addr 127.0.0.1:0   # scatter-gather front door
//! chl bench-serve 127.0.0.1:7557 --connections 8   # load-test that server
//! ```
//!
//! Construction is the expensive phase and querying the latency-critical one
//! (paper §6); the `.chl` file (see `chl_core::persist`) is the seam between
//! them, so a labeling built once can be served by any number of later
//! processes. All failures — bad flags, missing files, corrupt indexes — are
//! reported on stderr with exit code 1; panics are bugs.

#![forbid(unsafe_code)]

mod bench_serve;
mod build;
mod gen;
mod graph_files;
mod inspect;
mod opts;
mod paths;
mod query;
mod route;
mod serve;

/// Boxed error: every subcommand reports failures as displayable values
/// (library errors stay typed; the CLI only prints them).
pub type CliError = Box<dyn std::error::Error>;

/// The entry point of one subcommand.
type Runner = fn(&[String]) -> Result<(), CliError>;

const USAGE: &str = "\
usage: chl <command> [args]

commands:
  gen      generate a synthetic graph file (grid / scale-free)
  build    build a hub labeling from a graph file and save it as .chl
  query    answer PPSD queries from a saved .chl index (--mmap: zero-copy)
  paths    reconstruct exact shortest paths (needs 'chl build --paths')
  matrix   evaluate a sources x targets distance block (pivoted kernel)
  topk     rank targets by distance from one source (--radius variant)
  inspect  show a .chl file's header and footprint (--histogram: full check)
  serve    keep an index loaded and answer queries over TCP (hot reload)
  route    front a cluster of shard servers with one scatter-gather endpoint
  bench-serve  load-test a running serve endpoint (throughput, p50/p99/p999)

Run 'chl <command> --help' for per-command options.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(Exit::Usage(usage)) => {
            println!("{usage}");
        }
        Err(Exit::Error(e)) => {
            eprintln!("chl: error: {e}");
            std::process::exit(1);
        }
    }
}

enum Exit {
    /// Help was requested: print usage, exit 0.
    Usage(&'static str),
    /// A real failure: print to stderr, exit 1.
    Error(CliError),
}

fn run(args: &[String]) -> Result<(), Exit> {
    // A missing command is misuse, not a help request: usage goes to stderr
    // with a failing exit code so `chl "$CMD" …` with an empty variable
    // cannot masquerade as success in a shell pipeline.
    let Some(command) = args.first() else {
        return Err(Exit::Error(format!("missing command\n{USAGE}").into()));
    };
    let rest = &args[1..];
    let wants_help = rest.iter().any(|a| a == "--help" || a == "-h");
    let (usage, runner): (&'static str, Runner) = match command.as_str() {
        "gen" => (gen::USAGE, gen::run),
        "build" => (build::USAGE, build::run),
        "query" => (query::USAGE, query::run),
        "paths" => (paths::USAGE, paths::run),
        "matrix" => (paths::MATRIX_USAGE, paths::run_matrix),
        "topk" => (paths::TOPK_USAGE, paths::run_topk),
        "inspect" => (inspect::USAGE, inspect::run),
        "serve" => (serve::USAGE, serve::run),
        "route" => (route::USAGE, route::run),
        "bench-serve" => (bench_serve::USAGE, bench_serve::run),
        "--help" | "-h" | "help" => return Err(Exit::Usage(USAGE)),
        other => {
            return Err(Exit::Error(
                format!("unknown command '{other}'\n{USAGE}").into(),
            ))
        }
    };
    if wants_help {
        return Err(Exit::Usage(usage));
    }
    runner(rest).map_err(Exit::Error)
}
