//! `chl route`: scatter-gather front door for a cluster of shard servers.
//!
//! Each backend is a `chl serve --shard` process holding one `.chl` v3
//! QDOL shard. The router speaks the same binary protocol as a single
//! server, so clients (and `chl bench-serve`) cannot tell a routed
//! cluster from one whole-index process: per-query QDOL placement picks
//! the owning shard, frames that span shards fan out and merge in
//! request order, and a dead backend degrades to a typed
//! SHARD_UNAVAILABLE error frame instead of a hang.
//!
//! Like `chl serve`, the line `listening on ADDR` is printed and flushed
//! before the first accept so scripts can scrape an ephemeral port.

use std::io::Write;
use std::time::Duration;

use chl_serve::{ClusterView, Router, RouterOptions};

use crate::opts::Opts;
use crate::CliError;

pub const USAGE: &str = "\
usage: chl route <backend-addr>... [--addr HOST:PORT] [--threads N]

Fronts a cluster of 'chl serve --shard' processes with one endpoint
speaking the same binary protocol (and HTTP status page) as a single
server. At startup every backend is interrogated over INFO: the
backends must form exactly one coherent QDOL cluster (one of each
shard id, same shard count and vertex count). Queries are placed on
the owning shard; batches that span shards fan out and merge in
request order; a dead backend yields typed SHARD_UNAVAILABLE error
frames, never a hang.

options:
  --addr HOST:PORT        listen address (port 0 picks one) [127.0.0.1:7558]
  --threads N             connection worker threads                     [4]
  --max-frame BYTES       largest accepted request frame           [1 MiB]
  --backend-timeout-ms N  per-backend read/write timeout            [5000]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &["addr", "threads", "max-frame", "backend-timeout-ms"],
        &[],
    )?;
    let backends: Vec<String> = opts.positionals().iter().map(|s| s.to_string()).collect();
    if backends.is_empty() {
        return Err(
            "missing backend addresses (one 'chl serve --shard' HOST:PORT per shard)".into(),
        );
    }
    let addr = opts.value("addr").unwrap_or("127.0.0.1:7558").to_string();
    let defaults = RouterOptions::default();
    let options = RouterOptions {
        threads: opts.parsed_or("threads", defaults.threads)?,
        max_frame: opts.parsed_or("max-frame", defaults.max_frame)?,
        backend_timeout: Duration::from_millis(opts.parsed_or(
            "backend-timeout-ms",
            defaults.backend_timeout.as_millis() as u64,
        )?),
    };
    if opts.value("threads").is_some() && options.threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let cluster = ClusterView::discover(&backends, options.backend_timeout)
        .map_err(|e| format!("cluster discovery failed: {e}"))?;
    println!(
        "routing {} shards over {} vertices (zeta {})",
        cluster.shard_count(),
        cluster.num_vertices(),
        cluster.map().zeta()
    );
    for shard in 0..cluster.shard_count() {
        if let Some(backend) = cluster.addr_of_shard(shard) {
            println!("  shard {shard}: {backend}");
        }
    }

    let router = Router::bind(addr.as_str(), cluster, options)
        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    println!("listening on {}", router.local_addr());
    // Parent processes scrape the ephemeral port from a pipe; a block-
    // buffered stdout would hold the line until exit.
    std::io::stdout().flush()?;

    let handle = router.handle();
    router.run()?;
    let stats = handle.stats();
    println!(
        "routed {} connections ({} http), {} frames, {} queries \
         ({} forwarded whole, {} fanned out), {} shard errors, \
         {} error frames, {} reloads",
        stats.connections,
        stats.http_requests,
        stats.frames,
        stats.queries,
        stats.forwarded_frames,
        stats.fanout_frames,
        stats.shard_errors,
        stats.error_frames,
        stats.reloads
    );
    Ok(())
}
