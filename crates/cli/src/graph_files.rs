//! Loading graphs from files for `chl build`, with format inference.
//!
//! The format is picked from the file extension unless `--format` overrides
//! it: `.gr` is DIMACS, `.bin` / `.chlg` are binary CSR snapshots, anything
//! else is a whitespace edge list (SNAP / KONECT style).

use std::fs::File;
use std::path::Path;

use chl_graph::io::edge_list::EdgeListOptions;
use chl_graph::io::{read_binary, read_dimacs, read_edge_list};
use chl_graph::CsrGraph;

/// The graph file formats `chl build` can read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// DIMACS 9th-challenge `.gr`.
    Dimacs,
    /// Binary CSR snapshot written by `chl gen` or `chl_graph::io::binary`.
    Binary,
    /// Whitespace-separated `u v [w]` edge list.
    EdgeList,
}

impl GraphFormat {
    /// Parses a `--format` value.
    pub fn parse(name: &str) -> Result<GraphFormat, String> {
        match name.to_ascii_lowercase().as_str() {
            "dimacs" | "gr" => Ok(GraphFormat::Dimacs),
            "binary" | "bin" => Ok(GraphFormat::Binary),
            "edgelist" | "edge-list" | "txt" => Ok(GraphFormat::EdgeList),
            other => Err(format!(
                "unknown graph format '{other}' (expected dimacs, binary or edgelist)"
            )),
        }
    }

    /// Infers the format from a file extension, defaulting to an edge list.
    pub fn infer(path: &Path) -> GraphFormat {
        match path
            .extension()
            .and_then(|e| e.to_str())
            .map(|e| e.to_ascii_lowercase())
            .as_deref()
        {
            Some("gr") => GraphFormat::Dimacs,
            Some("bin") | Some("chlg") => GraphFormat::Binary,
            _ => GraphFormat::EdgeList,
        }
    }
}

/// Loads a graph file in the given (or inferred) format.
pub fn load_graph(
    path: &Path,
    format: Option<GraphFormat>,
    directed: bool,
    one_based: bool,
) -> Result<CsrGraph, String> {
    let format = format.unwrap_or_else(|| GraphFormat::infer(path));
    let file =
        File::open(path).map_err(|e| format!("cannot open graph file {}: {e}", path.display()))?;
    let result = match format {
        GraphFormat::Dimacs => read_dimacs(file, directed),
        GraphFormat::Binary => read_binary(file),
        GraphFormat::EdgeList => read_edge_list(
            file,
            &EdgeListOptions {
                directed,
                one_based,
                ..EdgeListOptions::default()
            },
        ),
    };
    result.map_err(|e| format!("cannot read graph file {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_inference_follows_extensions() {
        assert_eq!(GraphFormat::infer(Path::new("a.gr")), GraphFormat::Dimacs);
        assert_eq!(GraphFormat::infer(Path::new("a.bin")), GraphFormat::Binary);
        assert_eq!(GraphFormat::infer(Path::new("a.chlg")), GraphFormat::Binary);
        assert_eq!(
            GraphFormat::infer(Path::new("a.txt")),
            GraphFormat::EdgeList
        );
        assert_eq!(
            GraphFormat::infer(Path::new("noext")),
            GraphFormat::EdgeList
        );
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(GraphFormat::parse("DIMACS").unwrap(), GraphFormat::Dimacs);
        assert_eq!(GraphFormat::parse("bin").unwrap(), GraphFormat::Binary);
        assert_eq!(
            GraphFormat::parse("edgelist").unwrap(),
            GraphFormat::EdgeList
        );
        assert!(GraphFormat::parse("parquet").is_err());
    }

    #[test]
    fn missing_files_are_reported_not_panicked() {
        let err = load_graph(Path::new("/nonexistent/g.gr"), None, false, false).unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
