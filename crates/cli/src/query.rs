//! `chl query`: load a `.chl` index and answer PPSD queries.
//!
//! Three query sources, checked in this order: explicit `u v` pairs on the
//! command line, a workload file (`--workload`), or a generated random batch
//! (`--random`). Batch runs print latency statistics; explicit pairs print
//! one distance per line.
//!
//! Batch throughput goes through [`DistanceOracle::distances`], which fans
//! the workload out across a rayon pool sized by `--threads` (defaulting to
//! all cores / `RAYON_NUM_THREADS`). The output is byte-identical at every
//! thread count: chunks are contiguous and reassembled in order.
//!
//! Every query pair is validated against the index's vertex count before the
//! batch runs. Workload files are validated while line numbers are still
//! known, so a stale file fails with an error naming the offending line —
//! never a panic from the query kernel.
//!
//! `--mmap` swaps the copy-loading [`FlatIndex`] for a zero-copy
//! [`MmapIndex`]: the file is validated once and served straight from the
//! OS page cache through a borrowed view — reinterpreted in place for flat
//! files, stream-decoded per label run for compressed ones (`chl build
//! --compress`). Both backends answer through the same [`DistanceOracle`]
//! surface, so every mode below works identically on either.

use std::time::{Duration, Instant};

use chl_core::flat::FlatIndex;
use chl_core::kernel::HotHubCached;
use chl_core::mapped::MmapIndex;
use chl_core::oracle::DistanceOracle;
use chl_graph::types::{VertexId, INFINITY};
use chl_query::workload::{load_workload_checked, random_pairs, QueryWorkload};

use crate::opts::Opts;
use crate::CliError;

pub const USAGE: &str = "\
usage: chl query <index.chl> [u v [u v ...]]
       chl query <index.chl> --workload <pairs.txt>
       chl query <index.chl> --random <count> [--seed N]
       chl query <index.chl> --mmap ...

Answers point-to-point shortest-distance queries from a saved index.
Explicit pairs print one distance per line; batch modes (--workload /
--random) print latency statistics.

options:
  --workload FILE     text file with one 'u v' pair per line (# comments)
  --random N          generate N uniform random pairs
  --seed N            seed for --random                           [42]
  --threads N         worker threads for batch queries       [all cores]
  --mmap              serve zero-copy from the OS page cache (v2 files)
  --hot-hubs K        cache the K top-ranked hubs' distance rows and
                      consult them before the merge join           [off]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &["workload", "random", "seed", "threads", "hot-hubs"],
        &["mmap"],
    )?;
    let index_path = opts.positional(0, "index file argument")?.to_string();
    let hot_hubs: u32 = opts.parsed_or("hot-hubs", 0)?;
    let backend: Backend = if opts.switch("mmap") {
        Backend::Mapped(
            MmapIndex::open(&index_path)
                .map_err(|e| format!("cannot map index {index_path}: {e}"))?,
        )
    } else {
        Backend::Owned(
            FlatIndex::load(&index_path)
                .map_err(|e| format!("cannot load index {index_path}: {e}"))?,
        )
    }
    .with_hot_hubs(hot_hubs);
    let index: &dyn DistanceOracle = backend.oracle();
    let n = index.num_vertices();

    if opts.value("seed").is_some() && opts.value("random").is_none() {
        return Err("--seed only applies together with --random".into());
    }
    let threads: usize = opts.parsed_or("threads", 0)?;
    if opts.value("threads").is_some() && threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let explicit_pairs = parse_explicit_pairs(&opts.positionals()[1..])?;
    if !explicit_pairs.is_empty() {
        if opts.value("workload").is_some() || opts.value("random").is_some() {
            return Err("give either explicit pairs or a batch flag, not both".into());
        }
        if opts.value("threads").is_some() {
            // One query occupies one thread; silently ignoring the flag
            // would let `--threads 8` masquerade as a benchmark setting.
            return Err("--threads only applies to batch modes (--workload / --random)".into());
        }
        for &(u, v) in &explicit_pairs {
            check_vertex(u, n)?;
            check_vertex(v, n)?;
            let d = index.distance(u, v);
            if d == INFINITY {
                println!("dist({u}, {v}) = unreachable");
            } else {
                println!("dist({u}, {v}) = {d}");
            }
        }
        return Ok(());
    }

    let workload = match (opts.value("workload"), opts.value("random")) {
        (Some(_), Some(_)) => return Err("--workload and --random are mutually exclusive".into()),
        (Some(path), None) => {
            // The checked loader validates ids while line numbers are still
            // known: a stale workload names its offending line.
            load_workload_checked(path, n)
                .map_err(|e| format!("cannot load workload {path}: {e}"))?
        }
        (None, Some(_)) => {
            if n == 0 {
                // random_pairs would otherwise emit (0, 0) pairs that name a
                // vertex this index does not have.
                return Err("the index has no vertices to query".into());
            }
            let count: usize = opts.parsed_or("random", 0)?;
            let seed: u64 = opts.parsed_or("seed", 42)?;
            random_pairs(n, count, seed)
        }
        (None, None) => {
            return Err("nothing to query: give 'u v' pairs, --workload or --random".into())
        }
    };
    if workload.is_empty() {
        return Err("the workload contains no query pairs".into());
    }

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| format!("cannot build thread pool: {e}"))?;
    run_batch(index, backend.name(), &workload, &pool);
    Ok(())
}

/// The two serving backends behind one oracle surface. Holding the concrete
/// enum (rather than a `Box<dyn ...>`) keeps the backend's name printable in
/// the batch statistics.
enum Backend {
    Owned(FlatIndex),
    Mapped(MmapIndex),
    CachedOwned(HotHubCached<FlatIndex>),
    CachedMapped(HotHubCached<MmapIndex>),
}

impl Backend {
    /// Wraps the backend in a [`HotHubCached`] when `k > 0`; `k == 0` is
    /// the documented "off" value and leaves the backend untouched.
    fn with_hot_hubs(self, k: u32) -> Backend {
        if k == 0 {
            return self;
        }
        match self {
            Backend::Owned(index) => Backend::CachedOwned(HotHubCached::new(index, k)),
            Backend::Mapped(index) => Backend::CachedMapped(HotHubCached::new(index, k)),
            cached => cached,
        }
    }

    fn oracle(&self) -> &dyn DistanceOracle {
        match self {
            Backend::Owned(index) => index,
            Backend::Mapped(index) => index,
            Backend::CachedOwned(index) => index,
            Backend::CachedMapped(index) => index,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Backend::Owned(_) => "owned (copy-load)",
            Backend::Mapped(m) => mapped_name(m),
            Backend::CachedOwned(_) => "owned (copy-load) + hot-hub cache",
            Backend::CachedMapped(_) => "mmap + hot-hub cache",
        }
    }
}

fn mapped_name(m: &MmapIndex) -> &'static str {
    match (m.is_mapped(), m.is_compressed()) {
        (true, false) => "mmap (zero-copy view)",
        (true, true) => "mmap (streamed varint decode)",
        (false, false) => "mmap fallback (aligned buffered read)",
        (false, true) => "mmap fallback (buffered streamed decode)",
    }
}

pub(crate) fn parse_explicit_pairs(
    tokens: &[String],
) -> Result<Vec<(VertexId, VertexId)>, CliError> {
    if !tokens.len().is_multiple_of(2) {
        return Err("explicit queries need an even number of vertex ids (u v pairs)".into());
    }
    tokens
        .chunks(2)
        .map(|c| {
            let u = c[0]
                .parse::<VertexId>()
                .map_err(|_| format!("invalid vertex id '{}'", c[0]))?;
            let v = c[1]
                .parse::<VertexId>()
                .map_err(|_| format!("invalid vertex id '{}'", c[1]))?;
            Ok((u, v))
        })
        .collect()
}

pub(crate) fn check_vertex(v: VertexId, n: usize) -> Result<(), CliError> {
    if (v as usize) < n {
        Ok(())
    } else {
        Err(format!("vertex id {v} out of range for an index with {n} vertices").into())
    }
}

/// Cap on individually timed queries: per-query `Instant` reads cost tens of
/// nanoseconds and 16 bytes each, so percentiles are taken from an evenly
/// strided sample while throughput comes from whole-batch timing.
const MAX_LATENCY_SAMPLES: usize = 1_000_000;

fn run_batch(
    index: &dyn DistanceOracle,
    backend: &str,
    workload: &QueryWorkload,
    pool: &rayon::ThreadPool,
) {
    // Warm-up pass: fault the index in and collect answer statistics, so the
    // timed passes below measure steady-state serving. This is the same
    // parallel batch path the timed pass uses.
    let answers = pool.install(|| index.distances(&workload.pairs));
    let mut reachable = 0usize;
    let mut distance_sum = 0u64;
    for &d in &answers {
        if d != INFINITY {
            reachable += 1;
            distance_sum = distance_sum.wrapping_add(d);
        }
    }

    // Throughput pass: one clock read around the whole parallel batch, so
    // timer overhead does not dilute the queries/s figure.
    let batch_start = Instant::now();
    let timed = pool.install(|| index.distances(&workload.pairs));
    let batch_time = batch_start.elapsed();
    debug_assert_eq!(timed, answers, "batch answers must be deterministic");
    std::hint::black_box(&timed);

    // Latency pass: per-query timing over an evenly strided sample. A single
    // query is answered by one thread, so this is deliberately sequential.
    let total = workload.len();
    let stride = total.div_ceil(MAX_LATENCY_SAMPLES).max(1);
    let mut latencies: Vec<Duration> = Vec::with_capacity(total.div_ceil(stride));
    for &(u, v) in workload.pairs.iter().step_by(stride) {
        let start = Instant::now();
        std::hint::black_box(index.distance(u, v));
        latencies.push(start.elapsed());
    }
    latencies.sort_unstable();

    println!("queries:        {total}");
    println!("backend:        {backend}");
    println!("threads:        {}", pool.current_num_threads());
    println!(
        "reachable:      {reachable} ({:.1}%)",
        100.0 * reachable as f64 / total as f64
    );
    println!("distance sum:   {distance_sum}");
    println!("batch time:     {batch_time:.2?}");
    println!(
        "throughput:     {:.0} queries/s",
        total as f64 / batch_time.as_secs_f64().max(1e-12)
    );
    if stride > 1 {
        println!(
            "latency sample: every {stride}th query ({} samples)",
            latencies.len()
        );
    }
    println!("latency mean:   {:.3} us", mean_us(&latencies));
    for (name, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        println!(
            "latency {name}:    {:.3} us",
            percentile(&latencies, q).as_secs_f64() * 1e6
        );
    }
    println!(
        "latency max:    {:.3} us",
        latencies
            .last()
            .copied()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64()
            * 1e6
    );
}

fn mean_us(latencies: &[Duration]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let total: Duration = latencies.iter().sum();
    total.as_secs_f64() * 1e6 / latencies.len() as f64
}

/// Nearest-rank percentile of a sorted latency list.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 1.0), Duration::from_millis(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(mean_us(&[]), 0.0);
        assert!(
            (mean_us(&[Duration::from_micros(4), Duration::from_micros(6)]) - 5.0).abs() < 1e-9
        );
    }

    #[test]
    fn explicit_pair_parsing() {
        let toks: Vec<String> = ["1", "2", "3", "4"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_explicit_pairs(&toks).unwrap(), vec![(1, 2), (3, 4)]);
        assert!(parse_explicit_pairs(&toks[..1]).is_err());
        let bad: Vec<String> = ["a", "2"].iter().map(|s| s.to_string()).collect();
        assert!(parse_explicit_pairs(&bad).is_err());
        assert!(check_vertex(3, 4).is_ok());
        assert!(check_vertex(4, 4).is_err());
    }
}
