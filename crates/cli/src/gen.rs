//! `chl gen`: write a synthetic graph file so the build → serve pipeline can
//! be exercised without external datasets.

use chl_graph::generators::{barabasi_albert, grid_network, GridOptions};
use chl_graph::io::write_binary;

use crate::opts::Opts;
use crate::CliError;

pub const USAGE: &str = "\
usage: chl gen grid --rows R --cols C --out <graph.bin> [--seed N] [--max-weight W]
       chl gen ba --vertices N --edges-per-vertex M --out <graph.bin> [--seed N]

Generates a synthetic graph (road-like weighted grid, or Barabasi-Albert
scale-free) and writes it as a binary snapshot `chl build` can read.";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &[
            "rows",
            "cols",
            "vertices",
            "edges-per-vertex",
            "seed",
            "max-weight",
            "out",
        ],
        &[],
    )?;
    let kind = opts
        .positional(0, "generator kind (grid or ba)")?
        .to_string();
    opts.reject_extra_positionals(1)?;
    // Flags belonging to the *other* generator must not be silently ignored:
    // `chl gen grid --vertices 1600` would otherwise build a default grid.
    let disallowed: &[&str] = match kind.as_str() {
        "grid" => &["vertices", "edges-per-vertex"],
        "ba" => &["rows", "cols", "max-weight"],
        _ => &[],
    };
    for flag in disallowed {
        if opts.value(flag).is_some() {
            return Err(format!("--{flag} does not apply to the '{kind}' generator").into());
        }
    }
    let out = opts
        .value("out")
        .ok_or("missing --out <graph.bin>")?
        .to_string();
    let seed: u64 = opts.parsed_or("seed", 42)?;

    let graph = match kind.as_str() {
        "grid" => {
            let rows: usize = opts.parsed_or("rows", 16)?;
            let cols: usize = opts.parsed_or("cols", 16)?;
            let max_weight: u32 = opts.parsed_or("max-weight", 16)?;
            grid_network(
                &GridOptions {
                    rows,
                    cols,
                    max_weight,
                    ..GridOptions::default()
                },
                seed,
            )
        }
        "ba" => {
            let n: usize = opts.parsed_or("vertices", 1000)?;
            let m: usize = opts.parsed_or("edges-per-vertex", 4)?;
            barabasi_albert(n, m, seed)
        }
        other => return Err(format!("unknown generator '{other}' (expected grid or ba)").into()),
    };

    let file = std::fs::File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_binary(&graph, file)?;
    println!(
        "wrote {out}: {} graph, {} vertices, {} edges",
        kind,
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(())
}
