//! A tiny dependency-free flag parser for the `chl` subcommands.
//!
//! Supports `--name value`, `--name=value`, boolean switches and positional
//! arguments. Unknown flags are errors — silently ignoring a typo like
//! `--algortihm` would build with the wrong default.

use std::collections::{HashMap, HashSet};
use std::fmt::Display;
use std::str::FromStr;

/// Parsed command-line options for one subcommand.
#[derive(Debug, Default)]
pub struct Opts {
    positionals: Vec<String>,
    values: HashMap<String, String>,
    switches: HashSet<String>,
}

impl Opts {
    /// Parses `args`, accepting exactly the given value-carrying flags and
    /// boolean switches (names without the leading `--`).
    pub fn parse(
        args: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Opts, String> {
        let mut opts = Opts::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let (name, inline_value) = match flag.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (flag, None),
                };
                if value_flags.contains(&name) {
                    let value = match inline_value {
                        Some(v) => v,
                        None => iter
                            .next()
                            .ok_or_else(|| format!("--{name} requires a value"))?
                            .clone(),
                    };
                    if opts.values.insert(name.to_string(), value).is_some() {
                        return Err(format!("--{name} given more than once"));
                    }
                } else if switch_flags.contains(&name) {
                    if inline_value.is_some() {
                        return Err(format!("--{name} does not take a value"));
                    }
                    opts.switches.insert(name.to_string());
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                opts.positionals.push(arg.clone());
            }
        }
        Ok(opts)
    }

    /// All positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The `i`-th positional argument, or an error naming what was expected.
    pub fn positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }

    /// Errors when more than `max` positional arguments were given — the
    /// same strictness as for unknown flags: a stray `40` where `--rows 40`
    /// was meant must not silently fall back to a default.
    pub fn reject_extra_positionals(&self, max: usize) -> Result<(), String> {
        match self.positionals.get(max) {
            None => Ok(()),
            Some(extra) => Err(format!("unexpected argument '{extra}'")),
        }
    }

    /// The raw value of `--name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `T`, or `default` when absent.
    pub fn parsed_or<T>(&self, name: &str, default: T) -> Result<T, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| format!("invalid value '{raw}' for --{name}: {e}")),
        }
    }

    /// `true` when the boolean switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_switches_and_positionals() {
        let o = Opts::parse(
            &args(&["g.bin", "--seed", "7", "--directed", "--out=x.chl", "extra"]),
            &["seed", "out"],
            &["directed"],
        )
        .unwrap();
        assert_eq!(o.positionals(), &["g.bin".to_string(), "extra".to_string()]);
        assert_eq!(o.value("out"), Some("x.chl"));
        assert_eq!(o.parsed_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(o.parsed_or::<u64>("missing", 42).unwrap(), 42);
        assert!(o.switch("directed"));
        assert!(!o.switch("one-based"));
    }

    #[test]
    fn rejects_unknown_duplicate_and_malformed_flags() {
        assert!(Opts::parse(&args(&["--nope"]), &[], &[]).is_err());
        assert!(Opts::parse(&args(&["--seed"]), &["seed"], &[]).is_err());
        assert!(Opts::parse(&args(&["--seed", "1", "--seed", "2"]), &["seed"], &[]).is_err());
        assert!(Opts::parse(&args(&["--directed=yes"]), &[], &["directed"]).is_err());
        let o = Opts::parse(&args(&["--seed", "x"]), &["seed"], &[]).unwrap();
        assert!(o.parsed_or::<u64>("seed", 0).is_err());
        assert!(o.positional(0, "graph file").is_err());
    }

    #[test]
    fn extra_positionals_are_rejected_on_request() {
        let o = Opts::parse(&args(&["a", "b"]), &[], &[]).unwrap();
        assert!(o.reject_extra_positionals(2).is_ok());
        let err = o.reject_extra_positionals(1).unwrap_err();
        assert!(err.contains("'b'"), "{err}");
    }
}
