//! `chl inspect`: print a `.chl` file's header and size statistics without
//! loading the payload — O(header bytes) even on a multi-GB index — plus an
//! opt-in full integrity check and label-size histogram (`--histogram`).

use chl_core::flat::FlatIndex;
use chl_core::persist::{self, Checksums};
use chl_graph::types::VertexId;
use chl_query::QdolShardMap;

use crate::opts::Opts;
use crate::CliError;

pub const USAGE: &str = "\
usage: chl inspect <index.chl> [--histogram]

Prints the on-disk header and footprint statistics of a saved index. The
default reads only the fixed header (plus, for shard files, the small
CRC-verified shard section), so inspecting a multi-GB file is instant;
--histogram additionally loads and fully validates the payload to print
the label-size histogram. On a shard file the histogram covers only the
vertices the shard owns.

options:
  --histogram         load the payload: verify integrity, print max label
                      size, run-length percentiles (p50/p99/max) and the
                      label-size histogram";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], &["histogram"])?;
    let path = opts.positional(0, "index file argument")?.to_string();
    opts.reject_extra_positionals(1)?;

    let file_len = std::fs::metadata(&path)
        .map_err(|e| format!("cannot stat {path}: {e}"))?
        .len();
    let header =
        persist::load_header(&path).map_err(|e| format!("cannot read header of {path}: {e}"))?;
    println!("file:             {path} ({file_len} bytes)");
    println!("format version:   {}", header.version);
    println!("vertices:         {}", header.num_vertices);
    println!("label entries:    {}", header.num_entries);
    // The entries encoding and its on-disk vs decoded sizes come from the
    // header + file length alone, so this stays O(header) on multi-GB files.
    let encoded = header.entries_section_len(file_len);
    let decoded = header.decoded_entries_len();
    if header.is_compressed() {
        let ratio = decoded as f64 / encoded.max(1) as f64;
        println!(
            "entries encoding: delta+varint compressed (flags {:#x})",
            header.flags
        );
        println!(
            "entries on disk:  {encoded} bytes encoded ({decoded} bytes decoded, {ratio:.2}x)"
        );
    } else {
        println!(
            "entries encoding: flat ({} bytes per entry)",
            if header.version >= 2 { 16 } else { 12 }
        );
        println!("entries on disk:  {encoded} bytes");
    }
    println!(
        "path data:        {}",
        if header.is_paths() {
            "present (per-entry parent records; 'chl paths' can answer)"
        } else {
            "absent (build with 'chl build --paths' to enable reconstruction)"
        }
    );
    match header.checksums {
        Checksums::WholePayload(crc) => println!("payload checksum: {crc:#010x}"),
        Checksums::PerSection {
            ranking,
            offsets,
            entries,
        } => println!(
            "section checksums: ranking {ranking:#010x}, offsets {offsets:#010x}, entries {entries:#010x}"
        ),
    }
    // A shard file identifies itself: one extra small read verifies the
    // shard section CRC and recovers which slice of the cluster this is,
    // without touching the (potentially huge) label payload.
    if header.is_sharded() {
        let spec = persist::load_shard_spec(&path)
            .map_err(|e| format!("cannot read shard section of {path}: {e}"))?
            .ok_or_else(|| format!("{path}: flags claim a shard section but none is present"))?;
        let map = QdolShardMap::new(spec.shard_count as usize, header.num_vertices as usize);
        if map.zeta() == spec.zeta as usize {
            let (pi, pj) = map.pair_of_shard(spec.shard_id as usize);
            println!(
                "shard:            {} of {} (QDOL zeta {}, partition pair ({pi}, {pj}))",
                spec.shard_id, spec.shard_count, spec.zeta
            );
        } else {
            println!(
                "shard:            {} of {} (QDOL zeta {})",
                spec.shard_id, spec.shard_count, spec.zeta
            );
        }
        println!(
            "owned positions:  {} of {} vertices",
            spec.owned_count(),
            header.num_vertices
        );
    }
    let n = header.num_vertices;
    let m = header.num_entries;
    if n > 0 {
        println!("avg label size:   {:.2} per vertex", m as f64 / n as f64);
    }
    // Footprint when served owned, derived from the header alone: offsets
    // (n+1) * 8, entries m * 16 (decoded, whatever the on-disk encoding),
    // ranking order + position 8 per vertex. Saturating: a hostile header
    // must not wrap the arithmetic here.
    let estimated = n
        .saturating_add(1)
        .saturating_mul(8)
        .saturating_add(m.saturating_mul(16))
        .saturating_add(n.saturating_mul(8));
    let mib = estimated as f64 / (1024.0 * 1024.0);
    if header.version >= 2 {
        println!(
            "serving footprint: {estimated} bytes ({mib:.2} MiB owned; zero-copy --mmap \
             serves the {file_len}-byte file image instead)"
        );
    } else {
        // v1 files cannot back a zero-copy view; do not advertise --mmap.
        println!("serving footprint: {estimated} bytes ({mib:.2} MiB owned)");
    }

    if !opts.switch("histogram") {
        println!("integrity:        header only (run with --histogram for a full check)");
        return Ok(());
    }

    // The full load re-validates length, checksums and invariants, so
    // --histogram doubles as an integrity check.
    let index = FlatIndex::load(&path).map_err(|e| format!("cannot load index {path}: {e}"))?;
    println!("integrity:        ok");
    println!("max label size:   {}", index.max_label_size());
    // Two storage shapes exist for the same index: the decoded in-memory
    // one (what serving owned costs) and the bytes actually on disk (what
    // --mmap serves). Reporting only the flat figure used to over-report
    // compressed files severalfold.
    println!(
        "memory footprint: {} bytes resident when served owned",
        index.memory_bytes()
    );
    println!(
        "on-disk storage:  {} bytes in the entries section ({})",
        header.entries_section_len(file_len),
        if header.is_compressed() {
            "delta+varint compressed; --mmap serves this"
        } else {
            "flat records"
        }
    );

    // Run-length percentiles tell you which join tier the query kernel will
    // spend its time in (short similar runs -> scalar/branchless, heavy skew
    // -> galloping) and how much a --hot-hubs prefix can cover.
    let sizes: Vec<usize> = match index.shard() {
        Some(spec) => spec
            .owned
            .iter()
            .map(|&v| index.labels_of(v).len())
            .collect(),
        None => (0..index.num_vertices() as VertexId)
            .map(|v| index.labels_of(v).len())
            .collect(),
    };
    if let Some((min, p50, p99, max)) = run_length_percentiles(sizes) {
        println!("run lengths:      min {min}, p50 {p50}, p99 {p99}, max {max}");
    }

    let histogram = label_size_histogram(&index);
    if index.shard().is_some() {
        println!("label-size histogram (owned vertices per bucket):");
    } else {
        println!("label-size histogram (vertices per bucket):");
    }
    for (label, count) in &histogram {
        if *count > 0 {
            println!("  {label:>12}  {count}");
        }
    }
    Ok(())
}

/// Sorts the per-vertex run lengths and reads off (min, p50, p99, max)
/// by nearest-rank on the sorted order; `None` when there are no vertices.
fn run_length_percentiles(mut sizes: Vec<usize>) -> Option<(usize, usize, usize, usize)> {
    sizes.sort_unstable();
    let (&min, &max) = (sizes.first()?, sizes.last()?);
    let pct = |p: f64| {
        let rank = ((sizes.len() - 1) as f64 * p).round() as usize;
        sizes.get(rank).copied().unwrap_or(max)
    };
    Some((min, pct(0.50), pct(0.99), max))
}

/// Buckets vertices by label-set size: 0, 1, 2, then doubling ranges.
/// A shard file counts only the vertices it owns — foreign positions have
/// structurally empty runs and would otherwise drown the `0` bucket.
fn label_size_histogram(index: &FlatIndex) -> Vec<(String, usize)> {
    // 0 -> 0, 1 -> 1, 2 -> 2, 3..=4 -> 3, 5..=8 -> 4, 9..=16 -> 5, ...
    fn bucket_of(size: usize) -> usize {
        match size {
            0 => 0,
            1 => 1,
            2 => 2,
            s => 3 + (usize::BITS - (s - 1).leading_zeros()) as usize - 2,
        }
    }
    let vertices: Vec<VertexId> = match index.shard() {
        Some(spec) => spec.owned.clone(),
        None => (0..index.num_vertices() as VertexId).collect(),
    };
    let mut buckets: Vec<(String, usize)> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for v in vertices {
        let b = bucket_of(index.labels_of(v).len());
        if counts.len() <= b {
            counts.resize(b + 1, 0);
        }
        counts[b] += 1;
    }
    for (b, &count) in counts.iter().enumerate() {
        let label = match b {
            0 => "0".to_string(),
            1 => "1".to_string(),
            2 => "2".to_string(),
            b => format!("{}-{}", (1usize << (b - 2)) + 1, 1usize << (b - 1)),
        };
        buckets.push((label, count));
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_core::HubLabelIndex;
    use chl_ranking::Ranking;

    #[test]
    fn histogram_buckets_cover_doubling_ranges() {
        // Vertex label counts: 0, 1, 2, 3, 5, 9 across six vertices.
        let ranking = Ranking::identity(16);
        let mut triples = Vec::new();
        for (v, count) in [(0u32, 0u32), (1, 1), (2, 2), (3, 3), (4, 5), (5, 9)] {
            for h in 0..count {
                triples.push((v, h, u64::from(h) + 1));
            }
        }
        let index = HubLabelIndex::from_triples(triples, ranking);
        let flat = FlatIndex::from_index(&index);
        let hist = label_size_histogram(&flat);
        let get = |label: &str| {
            hist.iter()
                .find(|(l, _)| l == label)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        };
        assert_eq!(get("0"), 11); // vertices 0 and 6..=15
        assert_eq!(get("1"), 1);
        assert_eq!(get("2"), 1);
        assert_eq!(get("3-4"), 1);
        assert_eq!(get("5-8"), 1);
        assert_eq!(get("9-16"), 1);
    }

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_lengths() {
        assert_eq!(run_length_percentiles(vec![]), None);
        assert_eq!(run_length_percentiles(vec![7]), Some((7, 7, 7, 7)));
        // 1..=100 shuffled: p50 lands on rank 50 (value 51 at 0-based index
        // round(99 * 0.5) = 50), p99 on index round(99 * 0.99) = 98.
        let mut lengths: Vec<usize> = (1..=100).rev().collect();
        lengths.swap(3, 77);
        assert_eq!(run_length_percentiles(lengths), Some((1, 51, 99, 100)));
    }
}
