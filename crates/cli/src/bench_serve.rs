//! `chl bench-serve`: a closed-loop load generator for a running
//! `chl serve` process.
//!
//! Opens N concurrent connections, keeps a pipelined window of QUERY frames
//! in flight on each for a fixed duration, and prints throughput plus
//! per-frame latency percentiles (p50 / p99 / p999) over the merged
//! measurements — the serving-tier scoreboard. `--shutdown` sends the
//! server a SHUTDOWN frame after the run, so one script line can bench and
//! tear down an ephemeral server.

use std::net::ToSocketAddrs;
use std::time::Duration;

use chl_serve::{run_bench, BenchOptions, Client};

use crate::opts::Opts;
use crate::CliError;

pub const USAGE: &str = "\
usage: chl bench-serve <host:port> [--connections N] [--duration-ms MS]

Measures a running `chl serve` endpoint: N closed-loop connections, each
keeping a window of pipelined QUERY frames in flight, for a fixed
duration. Prints total throughput and per-frame latency percentiles
over every connection's measurements.

options:
  --connections N     concurrent client connections                  [4]
  --duration-ms MS    measurement window in milliseconds          [2000]
  --pipeline N        QUERY frames kept in flight per connection     [8]
  --batch N           query pairs per frame                          [1]
  --seed N            workload seed (connection i uses seed+i)      [42]
  --json              print the summary as one JSON object instead
  --shutdown          send a SHUTDOWN frame to the server afterwards";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &["connections", "duration-ms", "pipeline", "batch", "seed"],
        &["shutdown", "json"],
    )?;
    let target = opts.positional(0, "server address argument")?.to_string();
    opts.reject_extra_positionals(1)?;
    let addr = target
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {target}: {e}"))?
        .next()
        .ok_or_else(|| format!("{target} resolves to no address"))?;

    let defaults = BenchOptions::default();
    let options = BenchOptions {
        connections: opts.parsed_or("connections", defaults.connections)?,
        duration: Duration::from_millis(
            opts.parsed_or("duration-ms", defaults.duration.as_millis() as u64)?,
        ),
        pipeline: opts.parsed_or("pipeline", defaults.pipeline)?,
        batch: opts.parsed_or("batch", defaults.batch)?,
        seed: opts.parsed_or("seed", defaults.seed)?,
    };
    for (flag, value) in [
        ("connections", options.connections),
        ("pipeline", options.pipeline),
        ("batch", options.batch),
    ] {
        if opts.value(flag).is_some() && value == 0 {
            return Err(format!("--{flag} must be at least 1").into());
        }
    }

    let summary =
        run_bench(addr, &options).map_err(|e| format!("bench against {target} failed: {e}"))?;
    let json = opts.switch("json");
    if json {
        println!("{}", summary.render_json());
    } else {
        println!("{}", summary.render());
    }

    if opts.switch("shutdown") {
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot reconnect to {target}: {e}"))?;
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown of {target} failed: {e}"))?;
        if json {
            // Keep stdout machine-parseable: exactly one JSON object.
            eprintln!("server shut down");
        } else {
            println!("server shut down");
        }
    }
    Ok(())
}
