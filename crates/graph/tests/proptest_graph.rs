//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use chl_graph::generators::{assign_random_weights, erdos_renyi};
use chl_graph::io::{self, EdgeListOptions};
use chl_graph::sssp::{bellman_ford, delta_stepping, dijkstra, suggest_delta};
use chl_graph::types::{dist_add, Edge};
use chl_graph::{CsrGraph, GraphBuilder};

/// Strategy: an arbitrary small weighted undirected graph.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..40,
        proptest::collection::vec((0u32..40, 0u32..40, 1u32..50), 0..200),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("generated weights are positive")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra, Bellman-Ford and delta-stepping always agree.
    #[test]
    fn sssp_oracles_agree(g in arb_graph(), src_raw in 0u32..40) {
        let n = g.num_vertices() as u32;
        let src = src_raw % n;
        let d1 = dijkstra(&g, src);
        let d2 = bellman_ford(&g, src);
        let d3 = delta_stepping(&g, src, suggest_delta(&g));
        prop_assert_eq!(&d1, &d2);
        prop_assert_eq!(&d1, &d3);
    }

    /// Shortest distances satisfy the triangle inequality over every edge.
    #[test]
    fn distances_satisfy_triangle_inequality(g in arb_graph(), src_raw in 0u32..40) {
        let n = g.num_vertices() as u32;
        let src = src_raw % n;
        let d = dijkstra(&g, src);
        for e in g.edges() {
            let du = d[e.u as usize];
            let dv = d[e.v as usize];
            prop_assert!(dv <= dist_add(du, e.w));
            prop_assert!(du <= dist_add(dv, e.w));
        }
        prop_assert_eq!(d[src as usize], 0);
    }

    /// Binary snapshots round-trip exactly.
    #[test]
    fn binary_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let back = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(g, back);
    }

    /// Edge-list snapshots round-trip exactly.
    #[test]
    fn edge_list_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let opts = EdgeListOptions::default();
        let back = io::read_edge_list(buf.as_slice(), &opts).unwrap();
        // The edge list does not record isolated trailing vertices, so compare
        // the edge sets and the covered prefix of vertices.
        let mut a: Vec<Edge> = g.edges().collect();
        let mut b: Vec<Edge> = back.edges().collect();
        a.sort_by_key(|e| (e.u, e.v));
        b.sort_by_key(|e| (e.u, e.v));
        prop_assert_eq!(a, b);
    }

    /// DIMACS snapshots round-trip exactly (vertex count is preserved by the
    /// `p sp` header, so full equality holds).
    #[test]
    fn dimacs_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_dimacs(&g, &mut buf).unwrap();
        let back = io::read_dimacs(buf.as_slice(), false).unwrap();
        prop_assert_eq!(g, back);
    }

    /// The builder is idempotent: rebuilding from a graph's own edge list
    /// yields the same graph.
    #[test]
    fn rebuild_is_identity(g in arb_graph()) {
        let mut b = GraphBuilder::new_undirected();
        b.ensure_vertices(g.num_vertices());
        b.extend_edges(g.edges());
        prop_assert_eq!(b.build().unwrap(), g);
    }

    /// Re-weighting preserves topology for arbitrary bounds.
    #[test]
    fn reweight_preserves_topology(n in 5usize..60, p in 0.01f64..0.3, bound in 1u32..100, seed in 0u64..1000) {
        let g = erdos_renyi(n, p, 10, seed);
        let w = assign_random_weights(&g, bound, seed.wrapping_add(1));
        prop_assert_eq!(g.num_edges(), w.num_edges());
        prop_assert_eq!(g.num_vertices(), w.num_vertices());
        for e in w.edges() {
            prop_assert!(e.w >= 1 && e.w <= bound.max(1));
        }
    }
}
