//! Forgiving graph construction from edge lists.

use std::collections::HashMap;

use crate::csr::{CsrGraph, GraphKind};
use crate::error::GraphError;
use crate::types::{Edge, VertexId, Weight};

/// Incrementally collects edges and produces a clean [`CsrGraph`].
///
/// The builder accepts raw, possibly messy edge lists: parallel edges are
/// deduplicated keeping the minimum weight (the only weight that can ever lie
/// on a shortest path), self-loops are dropped (they never participate in a
/// shortest path with positive weights), and undirected inputs are
/// symmetrized. The number of vertices is `max endpoint + 1` unless a larger
/// count is requested with [`GraphBuilder::ensure_vertices`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    kind: GraphKind,
    edges: Vec<Edge>,
    min_vertices: usize,
    reject_zero_weights: bool,
}

impl GraphBuilder {
    /// Starts building an undirected graph.
    pub fn new_undirected() -> Self {
        GraphBuilder {
            kind: GraphKind::Undirected,
            edges: Vec::new(),
            min_vertices: 0,
            reject_zero_weights: true,
        }
    }

    /// Starts building a directed graph.
    pub fn new_directed() -> Self {
        GraphBuilder {
            kind: GraphKind::Directed,
            edges: Vec::new(),
            min_vertices: 0,
            reject_zero_weights: true,
        }
    }

    /// Guarantees the built graph has at least `n` vertices even if some of
    /// them end up isolated.
    pub fn ensure_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Number of edges added so far (before deduplication).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when no edge has been added yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds an edge. Self-loops are dropped (they never lie on a shortest
    /// path with positive weights) but their endpoint still counts towards
    /// the vertex set.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> &mut Self {
        if u != v {
            self.edges.push(Edge::new(u, v, w));
        } else {
            self.min_vertices = self.min_vertices.max(u as usize + 1);
        }
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(&mut self, it: I) -> &mut Self {
        for e in it {
            self.add_edge(e.u, e.v, e.w);
        }
        self
    }

    /// Finalizes the builder into a CSR graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidWeight`] if any edge has weight zero and
    /// [`GraphError::TooManyVertices`] if the vertex id space would exceed
    /// `u32`.
    pub fn build(&self) -> Result<CsrGraph, GraphError> {
        let max_endpoint = self
            .edges
            .iter()
            .map(|e| e.u.max(e.v) as usize + 1)
            .max()
            .unwrap_or(0);
        let n = max_endpoint.max(self.min_vertices);
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyVertices(n as u64));
        }
        if self.reject_zero_weights {
            if let Some(e) = self.edges.iter().find(|e| e.w == 0) {
                return Err(GraphError::InvalidWeight {
                    u: e.u as u64,
                    v: e.v as u64,
                });
            }
        }

        // Deduplicate, keeping the minimum weight per (directed) endpoint pair.
        let mut best: HashMap<(VertexId, VertexId), Weight> =
            HashMap::with_capacity(self.edges.len());
        for e in &self.edges {
            let key = match self.kind {
                GraphKind::Undirected => {
                    let c = e.canonicalized();
                    (c.u, c.v)
                }
                GraphKind::Directed => (e.u, e.v),
            };
            best.entry(key)
                .and_modify(|w| *w = (*w).min(e.w))
                .or_insert(e.w);
        }

        let mut adjacency: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); n];
        let logical_edges = best.len();
        for (&(u, v), &w) in &best {
            adjacency[u as usize].push((v, w));
            if self.kind == GraphKind::Undirected {
                adjacency[v as usize].push((u, w));
            }
        }
        // Deterministic neighbor order regardless of hash-map iteration order.
        for nbrs in &mut adjacency {
            nbrs.sort_unstable();
        }

        Ok(CsrGraph::from_adjacency(
            self.kind,
            adjacency,
            logical_edges,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 10);
        b.add_edge(1, 0, 3);
        b.add_edge(0, 1, 7);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
        assert_eq!(g.edge_weight(1, 0), Some(3));
    }

    #[test]
    fn directed_parallel_edges_are_per_direction() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(0, 1, 10);
        b.add_edge(1, 0, 3);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(10));
        assert_eq!(g.edge_weight(1, 0), Some(3));
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(2, 2, 5);
        b.add_edge(0, 1, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn zero_weight_is_rejected() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 0);
        let err = b.build().unwrap_err();
        assert!(matches!(err, GraphError::InvalidWeight { u: 0, v: 1 }));
    }

    #[test]
    fn ensure_vertices_creates_isolated_vertices() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.ensure_vertices(10);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn neighbor_lists_are_sorted_and_deterministic() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 5, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(0, 9, 1);
        b.add_edge(0, 1, 1);
        let g = b.build().unwrap();
        let nbrs: Vec<VertexId> = g.neighbors(0).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![1, 2, 5, 9]);
    }

    #[test]
    fn extend_edges_and_len() {
        let mut b = GraphBuilder::new_undirected();
        assert!(b.is_empty());
        b.extend_edges(vec![
            Edge::new(0, 1, 2),
            Edge::new(1, 2, 3),
            Edge::new(3, 3, 9),
        ]);
        // Self loop ignored at insertion time.
        assert_eq!(b.len(), 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
