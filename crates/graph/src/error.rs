//! Error type for graph construction and IO.

use std::fmt;

/// Errors produced while building, loading or storing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id outside `0..n` for a builder created
    /// with a fixed vertex count.
    VertexOutOfRange {
        /// Offending vertex id.
        vertex: u64,
        /// Number of vertices in the graph.
        num_vertices: u64,
    },
    /// An edge weight of zero (or otherwise invalid) was supplied. Hub
    /// labeling requires strictly positive weights.
    InvalidWeight {
        /// Source endpoint of the offending edge.
        u: u64,
        /// Target endpoint of the offending edge.
        v: u64,
    },
    /// The graph would exceed the `u32` vertex id space.
    TooManyVertices(u64),
    /// A parse error while reading a textual graph format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The binary snapshot was malformed or truncated.
    Corrupt(String),
    /// An underlying IO error.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::InvalidWeight { u, v } => {
                write!(
                    f,
                    "edge ({u}, {v}) has an invalid (zero) weight; weights must be positive"
                )
            }
            GraphError::TooManyVertices(n) => {
                write!(f, "graph with {n} vertices exceeds the u32 vertex id space")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Corrupt(msg) => write!(f, "corrupt graph snapshot: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::InvalidWeight { u: 1, v: 2 };
        assert!(e.to_string().contains("(1, 2)"));

        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        use std::error::Error;
        let e: GraphError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(e.source().is_some());
    }
}
