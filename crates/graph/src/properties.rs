//! Descriptive statistics about a graph, used by the dataset inventory
//! (Table 2 of the paper) and by heuristics that distinguish road-like from
//! scale-free topologies.

use crate::csr::CsrGraph;
use crate::sssp::bfs_hops;
use crate::types::VertexId;

/// Summary statistics of a graph's degree distribution and size.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of logical edges.
    pub num_edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree (out-degree for directed graphs).
    pub avg_degree: f64,
    /// Estimated diameter in hops (see [`estimate_diameter_hops`]).
    pub approx_diameter_hops: usize,
}

/// Computes [`GraphStats`] for `g`. The diameter estimate performs a handful
/// of BFS sweeps, so this is cheap even on the larger synthetic datasets.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let min_degree = degrees.iter().copied().min().unwrap_or(0);
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let avg_degree = if n == 0 {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / n as f64
    };
    GraphStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        min_degree,
        max_degree,
        avg_degree,
        approx_diameter_hops: estimate_diameter_hops(g, 4),
    }
}

/// Degree histogram: `hist[d]` is the number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.vertices() {
        let d = g.degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Estimates the hop diameter by repeated double-sweep BFS: start from an
/// arbitrary vertex, BFS to the farthest vertex, BFS again from there, and
/// repeat `sweeps` times keeping the largest eccentricity observed. Exact for
/// trees, a good lower bound in general — sufficient to separate the
/// high-diameter road networks from low-diameter scale-free networks.
pub fn estimate_diameter_hops(g: &CsrGraph, sweeps: usize) -> usize {
    if g.num_vertices() == 0 {
        return 0;
    }
    let mut best = 0usize;
    let mut start: VertexId = 0;
    for _ in 0..sweeps.max(1) {
        let hops = bfs_hops(g, start);
        let (far, ecc) = hops
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h != usize::MAX)
            .max_by_key(|&(_, &h)| h)
            .map(|(v, &h)| (v as VertexId, h))
            .unwrap_or((start, 0));
        best = best.max(ecc);
        if far == start {
            break;
        }
        start = far;
    }
    best
}

/// A crude scale-free detector: `true` when the maximum degree is at least
/// `factor` times the average degree. Road networks have near-uniform small
/// degrees; scale-free networks have hubs orders of magnitude above average.
pub fn looks_scale_free(g: &CsrGraph, factor: f64) -> bool {
    let stats = graph_stats(g);
    stats.avg_degree > 0.0 && stats.max_degree as f64 >= factor * stats.avg_degree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{barabasi_albert, grid_network, GridOptions};

    #[test]
    fn stats_on_path_graph() {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..9u32 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.build().unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 9);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.approx_diameter_hops, 9);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = grid_network(
            &GridOptions {
                rows: 5,
                cols: 5,
                ..GridOptions::default()
            },
            1,
        );
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn scale_free_detector_separates_topologies() {
        let road = grid_network(
            &GridOptions {
                rows: 20,
                cols: 20,
                ..GridOptions::default()
            },
            7,
        );
        let social = barabasi_albert(600, 4, 42);
        assert!(!looks_scale_free(&road, 8.0));
        assert!(looks_scale_free(&social, 8.0));
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new_undirected().build().unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.approx_diameter_hops, 0);
    }
}
