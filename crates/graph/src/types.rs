//! Fundamental scalar types shared by every crate in the workspace.

use serde::{Deserialize, Serialize};

/// Identifier of a vertex. Vertices are always densely numbered `0..n`.
pub type VertexId = u32;

/// Weight of a single edge. The paper assumes positive edge weights; a weight
/// of zero is rejected by [`crate::GraphBuilder`].
pub type Weight = u32;

/// A shortest-path distance. Distances are accumulated in 64 bits so that even
/// paths visiting every vertex of a large graph with maximal edge weights
/// cannot overflow.
pub type Distance = u64;

/// Sentinel distance representing "unreachable".
pub const INFINITY: Distance = u64::MAX;

/// A single weighted edge, as supplied to [`crate::GraphBuilder`] or returned
/// by iteration helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source endpoint.
    pub u: VertexId,
    /// Target endpoint.
    pub v: VertexId,
    /// Positive weight.
    pub w: Weight,
}

impl Edge {
    /// Creates a new edge.
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Edge { u, v, w }
    }

    /// Returns the edge with endpoints swapped (same weight).
    pub fn reversed(self) -> Self {
        Edge {
            u: self.v,
            v: self.u,
            w: self.w,
        }
    }

    /// Returns the edge with endpoints ordered so that `u <= v`. Useful for
    /// deduplicating undirected edge lists.
    pub fn canonicalized(self) -> Self {
        if self.u <= self.v {
            self
        } else {
            self.reversed()
        }
    }
}

/// Saturating addition of a distance and an edge weight, staying at
/// [`INFINITY`] when the base distance is already unreachable.
#[inline]
pub fn dist_add(d: Distance, w: Weight) -> Distance {
    if d == INFINITY {
        INFINITY
    } else {
        d.saturating_add(w as Distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_reversed_swaps_endpoints() {
        let e = Edge::new(3, 7, 11);
        let r = e.reversed();
        assert_eq!(r, Edge::new(7, 3, 11));
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn edge_canonicalized_orders_endpoints() {
        assert_eq!(Edge::new(9, 2, 1).canonicalized(), Edge::new(2, 9, 1));
        assert_eq!(Edge::new(2, 9, 1).canonicalized(), Edge::new(2, 9, 1));
        assert_eq!(Edge::new(4, 4, 1).canonicalized(), Edge::new(4, 4, 1));
    }

    #[test]
    fn dist_add_saturates_at_infinity() {
        assert_eq!(dist_add(INFINITY, 5), INFINITY);
        assert_eq!(dist_add(10, 5), 15);
        assert_eq!(dist_add(INFINITY - 1, u32::MAX), INFINITY);
    }
}
