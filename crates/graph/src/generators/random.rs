//! Random-graph generators for the scale-free topology family.

use rand::seq::SliceRandom;
use rand::Rng;

use super::rng_from_seed;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::{VertexId, Weight};

/// Erdős–Rényi `G(n, p)` with weights uniform in `[1, max_weight]`.
pub fn erdos_renyi(n: usize, p: f64, max_weight: Weight, seed: u64) -> CsrGraph {
    let mut rng = rng_from_seed(seed ^ 0x6572_646f);
    let p = p.clamp(0.0, 1.0);
    let max_weight = max_weight.max(1);
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u as VertexId, v as VertexId, rng.gen_range(1..=max_weight));
            }
        }
    }
    b.build()
        .expect("erdos-renyi generator produces positive weights only")
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices chosen proportionally to degree. Produces a
/// connected scale-free graph with a heavy-tailed degree distribution, the
/// stand-in for the paper's social / collaboration / web graphs. Weights are
/// uniform in `[1, sqrt(n))` following the paper's protocol for unweighted
/// sources.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = rng_from_seed(seed ^ 0xba2a_ba5a);
    let m = m.max(1);
    let max_weight = super::paper_weight_bound(n);
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    if n <= 1 {
        return b.build().expect("trivial BA graph");
    }

    // Repeated-endpoints list: choosing uniformly from it is choosing
    // proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    let seed_vertices = (m + 1).min(n);
    // Start from a small clique so the first arrivals have somewhere to attach.
    for u in 0..seed_vertices {
        for v in (u + 1)..seed_vertices {
            b.add_edge(u as VertexId, v as VertexId, rng.gen_range(1..=max_weight));
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }

    for v in seed_vertices..n {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m.min(v) && guard < 50 * m {
            guard += 1;
            let target = if endpoints.is_empty() {
                rng.gen_range(0..v) as VertexId
            } else {
                *endpoints.choose(&mut rng).expect("endpoints non-empty")
            };
            if target != v as VertexId && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &t in &chosen {
            b.add_edge(v as VertexId, t, rng.gen_range(1..=max_weight));
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
        .expect("BA generator produces positive weights only")
}

/// Options for the [`rmat`] generator.
#[derive(Debug, Clone)]
pub struct RmatOptions {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average degree (number of generated edges = `edge_factor * 2^scale`).
    pub edge_factor: usize,
    /// RMAT quadrant probabilities; must sum to ~1.0.
    pub a: f64,
    /// Probability of the upper-right quadrant.
    pub b: f64,
    /// Probability of the lower-left quadrant.
    pub c: f64,
    /// Edge weights are drawn uniformly from `[1, max_weight]`.
    pub max_weight: Weight,
}

impl Default for RmatOptions {
    fn default() -> Self {
        RmatOptions {
            scale: 10,
            edge_factor: 8,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            max_weight: 32,
        }
    }
}

/// R-MAT generator (Chakrabarti et al.), the standard synthetic scale-free
/// generator used by Graph500. Duplicate edges and self loops produced by the
/// recursive process are dropped by the builder, so the realized edge count is
/// slightly below `edge_factor * 2^scale`.
pub fn rmat(opts: &RmatOptions, seed: u64) -> CsrGraph {
    let mut rng = rng_from_seed(seed ^ 0x2237_4d41);
    let n = 1usize << opts.scale;
    let edges = opts.edge_factor * n;
    let max_weight = opts.max_weight.max(1);
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    let (pa, pb, pc) = (opts.a, opts.b, opts.c);
    for _ in 0..edges {
        let (mut u, mut v) = (0usize, 0usize);
        let mut half = n / 2;
        while half >= 1 {
            let r: f64 = rng.gen();
            if r < pa {
                // upper-left: nothing to add
            } else if r < pa + pb {
                v += half;
            } else if r < pa + pb + pc {
                u += half;
            } else {
                u += half;
                v += half;
            }
            half /= 2;
        }
        if u != v {
            b.add_edge(u as VertexId, v as VertexId, rng.gen_range(1..=max_weight));
        }
    }
    b.build()
        .expect("rmat generator produces positive weights only")
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects to
/// its `k` nearest neighbors, with each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, max_weight: Weight, seed: u64) -> CsrGraph {
    let mut rng = rng_from_seed(seed ^ 0x7761_7473);
    let max_weight = max_weight.max(1);
    let k = k.max(2).min(n.saturating_sub(1));
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    if n < 2 {
        return b.build().expect("trivial WS graph");
    }
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            let target = if rng.gen_bool(beta.clamp(0.0, 1.0)) {
                // Rewire to a uniformly random non-self vertex.
                let mut t = rng.gen_range(0..n);
                let mut guard = 0;
                while t == u && guard < 10 {
                    t = rng.gen_range(0..n);
                    guard += 1;
                }
                t
            } else {
                v
            };
            if target != u {
                b.add_edge(
                    u as VertexId,
                    target as VertexId,
                    rng.gen_range(1..=max_weight),
                );
            }
        }
    }
    b.build()
        .expect("WS generator produces positive weights only")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::properties::graph_stats;

    #[test]
    fn erdos_renyi_edge_count_is_plausible() {
        let g = erdos_renyi(100, 0.1, 5, 1);
        let expected = 0.1 * (100.0 * 99.0 / 2.0);
        assert!((g.num_edges() as f64) > expected * 0.6);
        assert!((g.num_edges() as f64) < expected * 1.4);
        assert!(g.edges().all(|e| e.w >= 1 && e.w <= 5));
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        assert_eq!(erdos_renyi(20, 0.0, 1, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1, 1).num_edges(), 45);
    }

    #[test]
    fn barabasi_albert_is_connected_scale_free() {
        let g = barabasi_albert(500, 3, 77);
        assert_eq!(connected_components(&g).count(), 1);
        let stats = graph_stats(&g);
        assert!(
            stats.max_degree > 20,
            "expected a hub, got max degree {}",
            stats.max_degree
        );
        assert!(stats.avg_degree < 10.0);
    }

    #[test]
    fn barabasi_albert_small_inputs() {
        assert_eq!(barabasi_albert(0, 3, 1).num_vertices(), 0);
        assert_eq!(barabasi_albert(1, 3, 1).num_vertices(), 1);
        let g = barabasi_albert(5, 10, 1); // m larger than n
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(connected_components(&g).count(), 1);
    }

    #[test]
    fn rmat_produces_skewed_degrees() {
        let g = rmat(
            &RmatOptions {
                scale: 9,
                edge_factor: 8,
                ..RmatOptions::default()
            },
            5,
        );
        assert_eq!(g.num_vertices(), 512);
        let stats = graph_stats(&g);
        assert!(stats.max_degree as f64 > 4.0 * stats.avg_degree);
    }

    #[test]
    fn watts_strogatz_shape() {
        let g = watts_strogatz(200, 6, 0.1, 8, 11);
        assert_eq!(g.num_vertices(), 200);
        // Ring lattice with k=6 has ~3n edges before rewiring collisions.
        assert!(g.num_edges() > 500);
        let g0 = watts_strogatz(50, 4, 0.0, 1, 1);
        assert!(g0.vertices().all(|v| g0.degree(v) == 4));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(barabasi_albert(100, 2, 9), barabasi_albert(100, 2, 9));
        assert_eq!(
            rmat(&RmatOptions::default(), 3),
            rmat(&RmatOptions::default(), 3)
        );
        assert_eq!(
            watts_strogatz(80, 4, 0.2, 5, 2),
            watts_strogatz(80, 4, 0.2, 5, 2)
        );
    }
}
