//! Road-network-like generators.
//!
//! Real road networks (the DIMACS CAL/EAS/CTR/USA graphs of the paper) are
//! near-planar, have tiny maximum degree and large diameter. A rectangular
//! grid with random positive weights, a few random diagonal shortcuts and a
//! small fraction of removed edges reproduces those structural properties
//! well enough for every qualitative experiment in the paper.

use rand::Rng;

use super::rng_from_seed;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::{VertexId, Weight};

/// Parameters for [`grid_network`].
#[derive(Debug, Clone)]
pub struct GridOptions {
    /// Number of grid rows.
    pub rows: usize,
    /// Number of grid columns.
    pub cols: usize,
    /// Edge weights are drawn uniformly from `[1, max_weight]`.
    pub max_weight: Weight,
    /// Fraction of grid edges removed at random (dead ends, rivers). The
    /// generator guarantees the graph stays connected by never removing the
    /// spanning "comb" (first column + all row edges).
    pub removal_fraction: f64,
    /// Number of extra random "highway" shortcut edges (long-range, cheap).
    pub shortcut_edges: usize,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            rows: 16,
            cols: 16,
            max_weight: 16,
            removal_fraction: 0.05,
            shortcut_edges: 0,
        }
    }
}

/// Generates a road-like weighted grid network.
pub fn grid_network(opts: &GridOptions, seed: u64) -> CsrGraph {
    let mut rng = rng_from_seed(seed ^ 0x6772_6964);
    let rows = opts.rows.max(1);
    let cols = opts.cols.max(1);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    let max_w = opts.max_weight.max(1);

    for r in 0..rows {
        for c in 0..cols {
            // Horizontal edge to the right.
            if c + 1 < cols {
                let w: Weight = rng.gen_range(1..=max_w);
                b.add_edge(id(r, c), id(r, c + 1), w);
            }
            // Vertical edge downward.
            if r + 1 < rows {
                let w: Weight = rng.gen_range(1..=max_w);
                // The first column is part of the connectivity "comb" and is
                // never removed; other vertical edges may be dropped.
                let removable = c != 0;
                if removable && rng.gen_bool(opts.removal_fraction.clamp(0.0, 0.9)) {
                    continue;
                }
                b.add_edge(id(r, c), id(r + 1, c), w);
            }
        }
    }

    // Highway shortcuts: long-range edges with weight comparable to a few
    // local hops, mimicking motorways that make betweenness-central vertices.
    for _ in 0..opts.shortcut_edges {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v {
            let w: Weight = rng.gen_range(1..=max_w.saturating_mul(2).max(1));
            b.add_edge(u, v, w);
        }
    }

    b.build()
        .expect("grid generator produces positive weights only")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::properties::{estimate_diameter_hops, graph_stats};

    #[test]
    fn grid_is_connected_and_road_like() {
        let g = grid_network(
            &GridOptions {
                rows: 20,
                cols: 15,
                removal_fraction: 0.1,
                ..GridOptions::default()
            },
            42,
        );
        assert_eq!(g.num_vertices(), 300);
        assert_eq!(connected_components(&g).count(), 1);
        let stats = graph_stats(&g);
        assert!(
            stats.max_degree <= 6,
            "road networks have small degree, got {}",
            stats.max_degree
        );
        assert!(
            estimate_diameter_hops(&g, 4) >= 20,
            "grids have large diameter"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let o = GridOptions {
            rows: 10,
            cols: 10,
            ..GridOptions::default()
        };
        assert_eq!(grid_network(&o, 1), grid_network(&o, 1));
        assert_ne!(grid_network(&o, 1), grid_network(&o, 2));
    }

    #[test]
    fn shortcuts_are_added() {
        let no_sc = grid_network(
            &GridOptions {
                rows: 10,
                cols: 10,
                removal_fraction: 0.0,
                shortcut_edges: 0,
                ..GridOptions::default()
            },
            3,
        );
        let with_sc = grid_network(
            &GridOptions {
                rows: 10,
                cols: 10,
                removal_fraction: 0.0,
                shortcut_edges: 25,
                ..GridOptions::default()
            },
            3,
        );
        assert!(with_sc.num_edges() > no_sc.num_edges());
    }

    #[test]
    fn degenerate_sizes() {
        let g = grid_network(
            &GridOptions {
                rows: 1,
                cols: 1,
                ..GridOptions::default()
            },
            0,
        );
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
        let g = grid_network(
            &GridOptions {
                rows: 1,
                cols: 5,
                ..GridOptions::default()
            },
            0,
        );
        assert_eq!(g.num_edges(), 4);
    }
}
