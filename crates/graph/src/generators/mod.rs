//! Synthetic graph generators.
//!
//! The paper evaluates on two topology families: high-diameter road networks
//! (DIMACS USA road subsets) and low-diameter scale-free networks
//! (KONECT/SNAP social, web and collaboration graphs). These generators
//! produce laptop-scale members of both families plus the classic shapes the
//! unit and property tests rely on. Every generator takes an explicit seed so
//! runs are reproducible.

mod classic;
mod grid;
mod random;

pub use classic::{complete_graph, cycle_graph, path_graph, random_tree, star_graph};
pub use grid::{grid_network, GridOptions};
pub use random::{barabasi_albert, erdos_renyi, rmat, watts_strogatz, RmatOptions};

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::Weight;

/// Deterministic RNG shared by all generators.
pub(crate) fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Re-weights every edge of `g` uniformly at random in `[1, max_weight]`.
///
/// The paper assigns weights uniformly at random in `[1, sqrt(n))` to
/// scale-free graphs that ship unweighted; [`paper_weight_bound`] computes
/// that bound.
pub fn assign_random_weights(g: &CsrGraph, max_weight: Weight, seed: u64) -> CsrGraph {
    let mut rng = rng_from_seed(seed);
    let max_weight = max_weight.max(1);
    let mut b = match g.kind() {
        crate::csr::GraphKind::Undirected => GraphBuilder::new_undirected(),
        crate::csr::GraphKind::Directed => GraphBuilder::new_directed(),
    };
    b.ensure_vertices(g.num_vertices());
    for e in g.edges() {
        b.add_edge(e.u, e.v, rng.gen_range(1..=max_weight));
    }
    b.build()
        .expect("re-weighted graph is structurally identical to its valid source")
}

/// The paper's weight bound for originally-unweighted graphs: `⌊sqrt(n)⌋`,
/// at least 1.
pub fn paper_weight_bound(num_vertices: usize) -> Weight {
    ((num_vertices as f64).sqrt().floor() as Weight).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;

    #[test]
    fn assign_random_weights_preserves_topology() {
        let g = erdos_renyi(60, 0.1, 1, 3);
        let w = assign_random_weights(&g, 10, 99);
        assert_eq!(g.num_vertices(), w.num_vertices());
        assert_eq!(g.num_edges(), w.num_edges());
        assert!(w.edges().all(|e| e.w >= 1 && e.w <= 10));
        // Same topology: every edge of g exists in w.
        for e in g.edges() {
            assert!(w.edge_weight(e.u, e.v).is_some());
        }
    }

    #[test]
    fn assign_random_weights_is_deterministic_per_seed() {
        let g = erdos_renyi(40, 0.1, 1, 3);
        let a = assign_random_weights(&g, 50, 7);
        let b = assign_random_weights(&g, 50, 7);
        let c = assign_random_weights(&g, 50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_weight_bound_values() {
        assert_eq!(paper_weight_bound(0), 1);
        assert_eq!(paper_weight_bound(1), 1);
        assert_eq!(paper_weight_bound(100), 10);
        assert_eq!(paper_weight_bound(1_000_000), 1000);
    }

    #[test]
    fn generators_produce_connected_or_expected_graphs() {
        let g = barabasi_albert(200, 3, 5);
        assert_eq!(connected_components(&g).count(), 1);
        let t = random_tree(50, 9);
        assert_eq!(t.num_edges(), 49);
        assert_eq!(connected_components(&t).count(), 1);
    }
}
