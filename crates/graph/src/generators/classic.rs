//! Classic deterministic and randomized test graphs.

use rand::Rng;

use super::rng_from_seed;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::{VertexId, Weight};

/// A simple path `0 - 1 - ... - (n-1)` with unit weights.
pub fn path_graph(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    for i in 1..n {
        b.add_edge((i - 1) as VertexId, i as VertexId, 1);
    }
    b.build().expect("path graph is always valid")
}

/// A cycle on `n` vertices with unit weights (`n >= 3` for a true cycle; for
/// smaller `n` the result degenerates to a path).
pub fn cycle_graph(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    for i in 1..n {
        b.add_edge((i - 1) as VertexId, i as VertexId, 1);
    }
    if n >= 3 {
        b.add_edge((n - 1) as VertexId, 0, 1);
    }
    b.build().expect("cycle graph is always valid")
}

/// A star with vertex 0 at the center and unit weights.
pub fn star_graph(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    for i in 1..n {
        b.add_edge(0, i as VertexId, 1);
    }
    b.build().expect("star graph is always valid")
}

/// The complete graph on `n` vertices with unit weights.
pub fn complete_graph(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as VertexId, j as VertexId, 1);
        }
    }
    b.build().expect("complete graph is always valid")
}

/// A uniformly random labeled tree on `n` vertices with weights in
/// `[1, max 16]`, built by attaching each vertex to a random earlier vertex.
pub fn random_tree(n: usize, seed: u64) -> CsrGraph {
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::new_undirected();
    b.ensure_vertices(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v) as VertexId;
        let w: Weight = rng.gen_range(1..=16);
        b.add_edge(parent, v as VertexId, w);
    }
    b.build().expect("random tree is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::sssp::dijkstra;

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(dijkstra(&g, 0)[4], 4);
    }

    #[test]
    fn cycle_graph_shape() {
        let g = cycle_graph(6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(dijkstra(&g, 0)[3], 3);
        assert_eq!(dijkstra(&g, 0)[5], 1);
        // Degenerate sizes.
        assert_eq!(cycle_graph(2).num_edges(), 1);
        assert_eq!(cycle_graph(1).num_edges(), 0);
    }

    #[test]
    fn star_graph_shape() {
        let g = star_graph(7);
        assert_eq!(g.degree(0), 6);
        assert!(g.vertices().skip(1).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn random_tree_is_connected_acyclic() {
        for seed in 0..5 {
            let g = random_tree(30, seed);
            assert_eq!(g.num_edges(), 29);
            assert_eq!(connected_components(&g).count(), 1);
        }
    }

    #[test]
    fn zero_and_one_vertex_graphs() {
        assert_eq!(path_graph(0).num_vertices(), 0);
        assert_eq!(path_graph(1).num_vertices(), 1);
        assert_eq!(star_graph(1).num_edges(), 0);
        assert_eq!(complete_graph(1).num_edges(), 0);
        assert_eq!(random_tree(1, 0).num_edges(), 0);
    }
}
