//! Connectivity helpers.
//!
//! Hub labeling only ever inserts hubs for *connected* pairs, and the paper's
//! evaluation works on the largest connected component of each dataset. This
//! module provides (weakly-)connected component extraction and largest
//! component restriction.

use crate::csr::{CsrGraph, GraphKind};
use crate::types::VertexId;

/// Result of a connected-components computation.
#[derive(Debug, Clone)]
pub struct Components {
    /// `component[v]` is the dense id of the component containing `v`.
    pub component: Vec<u32>,
    /// Number of vertices in each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// `true` when `u` and `v` lie in the same component.
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        self.component[u as usize] == self.component[v as usize]
    }

    /// Id of the largest component (ties broken by lowest id).
    pub fn largest(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// Vertices belonging to component `id`, in ascending order.
    pub fn members(&self, id: u32) -> Vec<VertexId> {
        self.component
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| (c == id).then_some(v as VertexId))
            .collect()
    }
}

/// Computes the connected components of `g`. Directed graphs are treated as
/// undirected (weak connectivity), which is what the labeling pipeline needs
/// when restricting to a single component.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    let mut component = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack: Vec<VertexId> = Vec::new();

    for start in 0..n {
        if component[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        component[start] = id;
        stack.push(start as VertexId);
        while let Some(v) = stack.pop() {
            size += 1;
            let push_unvisited =
                |u: VertexId, component: &mut Vec<u32>, stack: &mut Vec<VertexId>| {
                    if component[u as usize] == u32::MAX {
                        component[u as usize] = id;
                        stack.push(u);
                    }
                };
            for (u, _) in g.neighbors(v) {
                push_unvisited(u, &mut component, &mut stack);
            }
            if g.kind() == GraphKind::Directed {
                for (u, _) in g.in_neighbors(v) {
                    push_unvisited(u, &mut component, &mut stack);
                }
            }
        }
        sizes.push(size);
    }

    Components { component, sizes }
}

/// Returns the induced subgraph on the largest (weakly) connected component
/// together with the mapping from new vertex ids to original ids.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    if g.is_empty() {
        return (g.clone(), Vec::new());
    }
    let comps = connected_components(g);
    let members = comps.members(comps.largest());
    g.induced_subgraph(&members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn single_component_detected() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert!(c.same_component(0, 2));
        assert_eq!(c.sizes, vec![3]);
    }

    #[test]
    fn disconnected_components_and_isolated_vertices() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 4, 1);
        b.ensure_vertices(6); // vertex 5 isolated
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert!(!c.same_component(0, 2));
        assert_eq!(c.sizes.iter().sum::<usize>(), 6);
        assert_eq!(c.largest(), c.component[2]);
        assert_eq!(c.members(c.largest()), vec![2, 3, 4]);
    }

    #[test]
    fn largest_component_extraction() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 5);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 4, 2);
        b.add_edge(4, 2, 3);
        let g = b.build().unwrap();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(map, vec![2, 3, 4]);
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn directed_weak_connectivity() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(0, 1, 1);
        b.add_edge(2, 1, 1); // 2 reaches 1 but nothing reaches 2; still weakly connected
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = GraphBuilder::new_undirected().build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        let (sub, map) = largest_component(&g);
        assert!(sub.is_empty());
        assert!(map.is_empty());
    }
}
