//! Compressed sparse row (CSR) graph storage.
//!
//! The labeling algorithms traverse adjacency lists in tight inner loops
//! (millions of Dijkstra edge relaxations), so the graph is stored as three
//! flat arrays: per-vertex offsets into a concatenated neighbor array and a
//! parallel weight array. Undirected graphs store each edge in both
//! directions; directed graphs additionally keep a reverse CSR so that
//! backward searches (needed for directed hub labels) are as cheap as forward
//! ones.

use serde::{Deserialize, Serialize};

use crate::types::{Distance, Edge, VertexId, Weight};

/// Whether a [`CsrGraph`] is undirected or directed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphKind {
    /// Every edge is traversable in both directions; `num_edges` counts each
    /// undirected edge once.
    Undirected,
    /// Edges are one-way; a reverse adjacency structure is kept alongside the
    /// forward one.
    Directed,
}

/// A weighted graph in CSR form.
///
/// Construct one through [`crate::GraphBuilder`], a generator in
/// [`crate::generators`], or one of the readers in [`crate::io`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    kind: GraphKind,
    num_vertices: usize,
    /// Number of *logical* edges: undirected edges are counted once, directed
    /// edges once each.
    num_edges: usize,
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    /// Reverse adjacency (directed graphs only; empty for undirected graphs).
    rev_offsets: Vec<usize>,
    rev_targets: Vec<VertexId>,
    rev_weights: Vec<Weight>,
}

impl CsrGraph {
    /// Builds a CSR graph directly from adjacency arrays. `adjacency[u]` must
    /// list the out-neighbors of `u`. This is the low-level constructor used
    /// by [`crate::GraphBuilder`]; it assumes the adjacency is already clean
    /// (no self loops, no duplicates, positive weights).
    pub(crate) fn from_adjacency(
        kind: GraphKind,
        adjacency: Vec<Vec<(VertexId, Weight)>>,
        num_logical_edges: usize,
    ) -> Self {
        let num_vertices = adjacency.len();
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let total: usize = adjacency.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0);
        for nbrs in &adjacency {
            for &(t, w) in nbrs {
                targets.push(t);
                weights.push(w);
            }
            offsets.push(targets.len());
        }

        let (rev_offsets, rev_targets, rev_weights) = match kind {
            GraphKind::Undirected => (Vec::new(), Vec::new(), Vec::new()),
            GraphKind::Directed => Self::reverse_adjacency(num_vertices, &adjacency),
        };

        CsrGraph {
            kind,
            num_vertices,
            num_edges: num_logical_edges,
            offsets,
            targets,
            weights,
            rev_offsets,
            rev_targets,
            rev_weights,
        }
    }

    fn reverse_adjacency(
        num_vertices: usize,
        adjacency: &[Vec<(VertexId, Weight)>],
    ) -> (Vec<usize>, Vec<VertexId>, Vec<Weight>) {
        let mut in_degree = vec![0usize; num_vertices];
        for nbrs in adjacency {
            for &(t, _) in nbrs {
                in_degree[t as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0usize);
        for v in 0..num_vertices {
            offsets.push(offsets[v] + in_degree[v]);
        }
        let total = offsets[num_vertices];
        let mut targets = vec![0 as VertexId; total];
        let mut weights = vec![0 as Weight; total];
        let mut cursor = offsets.clone();
        for (u, nbrs) in adjacency.iter().enumerate() {
            for &(t, w) in nbrs {
                let slot = cursor[t as usize];
                targets[slot] = u as VertexId;
                weights[slot] = w;
                cursor[t as usize] += 1;
            }
        }
        (offsets, targets, weights)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of logical edges (undirected edges counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the graph is directed or undirected.
    #[inline]
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// `true` when the graph stores no vertices at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_vertices == 0
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices as VertexId
    }

    /// Out-degree of `v` (degree for undirected graphs).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// In-degree of `v`. Equals [`Self::degree`] for undirected graphs.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        match self.kind {
            GraphKind::Undirected => self.degree(v),
            GraphKind::Directed => {
                let v = v as usize;
                self.rev_offsets[v + 1] - self.rev_offsets[v]
            }
        }
    }

    /// Out-neighbors of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let v = v as usize;
        let range = self.offsets[v]..self.offsets[v + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// In-neighbors of `v` with edge weights. For undirected graphs this is
    /// the same set as [`Self::neighbors`].
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let v = v as usize;
        let (offsets, targets, weights) = match self.kind {
            GraphKind::Undirected => (&self.offsets, &self.targets, &self.weights),
            GraphKind::Directed => (&self.rev_offsets, &self.rev_targets, &self.rev_weights),
        };
        let range = offsets[v]..offsets[v + 1];
        targets[range.clone()]
            .iter()
            .copied()
            .zip(weights[range].iter().copied())
    }

    /// Returns the weight of edge `(u, v)` if it exists (out-direction).
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.neighbors(u).find(|&(t, _)| t == v).map(|(_, w)| w)
    }

    /// Iterates all logical edges. For undirected graphs each edge is yielded
    /// once with `u <= v`; for directed graphs each stored arc is yielded.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).filter_map(move |(v, w)| match self.kind {
                GraphKind::Undirected => {
                    if u <= v {
                        Some(Edge::new(u, v, w))
                    } else {
                        None
                    }
                }
                GraphKind::Directed => Some(Edge::new(u, v, w)),
            })
        })
    }

    /// Sum of all logical edge weights.
    pub fn total_weight(&self) -> Distance {
        self.edges().map(|e| e.w as Distance).sum()
    }

    /// Maximum edge weight, or `None` for an edgeless graph.
    pub fn max_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().max()
    }

    /// Approximate in-memory size of the CSR arrays in bytes. Used by the
    /// cluster-memory accounting in the distributed crates.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.len() * size_of::<usize>()
            + self.targets.len() * size_of::<VertexId>()
            + self.weights.len() * size_of::<Weight>()
            + self.rev_offsets.len() * size_of::<usize>()
            + self.rev_targets.len() * size_of::<VertexId>()
            + self.rev_weights.len() * size_of::<Weight>()
    }

    /// Returns a new graph with the same topology where every weight is 1.
    pub fn unweighted_clone(&self) -> CsrGraph {
        let mut g = self.clone();
        g.weights.iter_mut().for_each(|w| *w = 1);
        g.rev_weights.iter_mut().for_each(|w| *w = 1);
        g
    }

    /// Builds the induced subgraph on `keep` (a set of vertex ids), relabeling
    /// vertices densely in the order they appear in `keep`. Returns the
    /// subgraph and the mapping from new id to original id.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
        let mut new_id = vec![VertexId::MAX; self.num_vertices];
        for (new, &old) in keep.iter().enumerate() {
            new_id[old as usize] = new as VertexId;
        }
        let mut adjacency: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); keep.len()];
        let mut logical_edges = 0usize;
        for (new_u, &old_u) in keep.iter().enumerate() {
            for (old_v, w) in self.neighbors(old_u) {
                let new_v = new_id[old_v as usize];
                if new_v == VertexId::MAX {
                    continue;
                }
                adjacency[new_u].push((new_v, w));
                match self.kind {
                    GraphKind::Undirected => {
                        if (new_u as VertexId) <= new_v {
                            logical_edges += 1;
                        }
                    }
                    GraphKind::Directed => logical_edges += 1,
                }
            }
        }
        (
            CsrGraph::from_adjacency(self.kind, adjacency, logical_edges),
            keep.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(2, 0, 3);
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors_on_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.kind(), GraphKind::Undirected);
        assert!(!g.is_empty());
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.in_degree(0), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(1, 0), Some(1));
        assert_eq!(g.edge_weight(0, 0), None);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.max_weight(), Some(3));
    }

    #[test]
    fn undirected_edges_listed_once() {
        let g = triangle();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for e in &edges {
            assert!(e.u <= e.v);
        }
    }

    #[test]
    fn directed_graph_has_reverse_adjacency() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(0, 1, 5);
        b.add_edge(0, 2, 7);
        b.add_edge(2, 1, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(1), 2);
        let in1: Vec<_> = g.in_neighbors(1).collect();
        assert!(in1.contains(&(0, 5)));
        assert!(in1.contains(&(2, 1)));
        // Forward direction must not contain the reverse arc.
        assert_eq!(g.edge_weight(1, 0), None);
    }

    #[test]
    fn unweighted_clone_sets_all_weights_to_one() {
        let g = triangle().unweighted_clone();
        assert!(g.edges().all(|e| e.w == 1));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn induced_subgraph_relabels_and_filters() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(2, 3, 3);
        b.add_edge(3, 0, 4);
        let g = b.build().unwrap();
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(map, vec![1, 2, 3]);
        // Edges 1-2 and 2-3 survive; 0-1 and 3-0 are dropped.
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edge_weight(0, 1), Some(2));
        assert_eq!(sub.edge_weight(1, 2), Some(3));
    }

    #[test]
    fn memory_bytes_is_positive_and_scales() {
        let small = triangle();
        let mut b = GraphBuilder::new_undirected();
        for i in 0..100u32 {
            b.add_edge(i, (i + 1) % 100, 1);
        }
        let big = b.build().unwrap();
        assert!(small.memory_bytes() > 0);
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn empty_graph_behaves() {
        let b = GraphBuilder::new_undirected();
        let g = b.build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.total_weight(), 0);
        assert_eq!(g.max_weight(), None);
    }
}
