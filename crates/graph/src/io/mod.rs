//! Graph readers and writers.
//!
//! Three formats are supported:
//!
//! * **DIMACS** `.gr` (`dimacs` module) — the format of the 9th DIMACS
//!   shortest-path challenge used for the paper's road networks.
//! * **Edge lists** (`edge_list` module) — whitespace-separated `u v [w]`
//!   lines as distributed by SNAP and KONECT, the sources of the paper's
//!   scale-free graphs.
//! * **Binary snapshots** (`binary` module) — a compact little-endian dump of
//!   the CSR arrays for fast reload of generated datasets.

pub mod binary;
pub mod dimacs;
pub mod edge_list;

pub use binary::{read_binary, write_binary};
pub use dimacs::{read_dimacs, write_dimacs};
pub use edge_list::{read_edge_list, write_edge_list, EdgeListOptions};
