//! Whitespace-separated edge lists (SNAP / KONECT style).
//!
//! Each non-comment line is `u v` or `u v w`. Lines starting with `#` or `%`
//! are comments. Vertex ids are 0-based by default (SNAP); KONECT files are
//! 1-based and can be read with [`EdgeListOptions::one_based`].

use std::io::{BufRead, BufReader, Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, GraphKind};
use crate::error::GraphError;
use crate::types::{VertexId, Weight};

/// Options controlling edge-list parsing.
#[derive(Debug, Clone)]
pub struct EdgeListOptions {
    /// Interpret the file as a directed graph.
    pub directed: bool,
    /// Vertex ids in the file start at 1 rather than 0.
    pub one_based: bool,
    /// Weight assigned to edges that do not carry one in the file.
    pub default_weight: Weight,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            directed: false,
            one_based: false,
            default_weight: 1,
        }
    }
}

/// Reads an edge list.
pub fn read_edge_list<R: Read>(reader: R, opts: &EdgeListOptions) -> Result<CsrGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut builder = if opts.directed {
        GraphBuilder::new_directed()
    } else {
        GraphBuilder::new_undirected()
    };

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let u = parse_id(tokens.next(), line_no, opts.one_based)?;
        let v = parse_id(tokens.next(), line_no, opts.one_based)?;
        let w = match tokens.next() {
            Some(tok) => tok.parse::<Weight>().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid weight '{tok}'"),
            })?,
            None => opts.default_weight,
        };
        builder.add_edge(u, v, w);
    }
    builder.build()
}

/// Writes `g` as a `u v w` edge list (0-based ids).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# {} vertices, {} edges, {:?}",
        g.num_vertices(),
        g.num_edges(),
        g.kind()
    )?;
    for e in g.edges() {
        writeln!(writer, "{} {} {}", e.u, e.v, e.w)?;
    }
    if g.kind() == GraphKind::Undirected {
        // nothing extra: undirected edges are listed once and re-read as undirected
    }
    Ok(())
}

fn parse_id(token: Option<&str>, line: usize, one_based: bool) -> Result<VertexId, GraphError> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "missing vertex id".to_string(),
    })?;
    let raw = token.parse::<u64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid vertex id '{token}'"),
    })?;
    let id = if one_based {
        raw.checked_sub(1).ok_or_else(|| GraphError::Parse {
            line,
            message: "vertex id 0 in a 1-based file".to_string(),
        })?
    } else {
        raw
    };
    if id > u32::MAX as u64 {
        return Err(GraphError::TooManyVertices(id + 1));
    }
    Ok(id as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;

    #[test]
    fn parse_unweighted_snap_style() {
        let input = "# comment\n0 1\n1 2\n2 0\n";
        let g = read_edge_list(input.as_bytes(), &EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.edges().all(|e| e.w == 1));
    }

    #[test]
    fn parse_weighted_konect_style_one_based() {
        let input = "% konect\n1 2 7\n2 3 9\n";
        let opts = EdgeListOptions {
            one_based: true,
            ..Default::default()
        };
        let g = read_edge_list(input.as_bytes(), &opts).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(7));
        assert_eq!(g.edge_weight(1, 2), Some(9));
    }

    #[test]
    fn default_weight_is_configurable() {
        let input = "0 1\n";
        let opts = EdgeListOptions {
            default_weight: 42,
            ..Default::default()
        };
        let g = read_edge_list(input.as_bytes(), &opts).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(42));
    }

    #[test]
    fn directed_read() {
        let input = "0 1 5\n1 0 6\n";
        let opts = EdgeListOptions {
            directed: true,
            ..Default::default()
        };
        let g = read_edge_list(input.as_bytes(), &opts).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(6));
    }

    #[test]
    fn roundtrip() {
        let g = barabasi_albert(120, 3, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), &EdgeListOptions::default()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let bad_weight = "0 1 x\n";
        let err = read_edge_list(bad_weight.as_bytes(), &EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));

        let missing_endpoint = "0\n";
        assert!(read_edge_list(missing_endpoint.as_bytes(), &EdgeListOptions::default()).is_err());

        let zero_in_one_based = "0 1\n";
        let opts = EdgeListOptions {
            one_based: true,
            ..Default::default()
        };
        assert!(read_edge_list(zero_in_one_based.as_bytes(), &opts).is_err());
    }
}
