//! Compact binary snapshots of graphs.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "CHLG"            4 bytes
//! version u32                = 1
//! kind    u8                 0 = undirected, 1 = directed
//! n       u64                number of vertices
//! m       u64                number of logical edges
//! edges   m * (u32 u32 u32)  u, v, w triples
//! ```
//!
//! The snapshot stores logical edges rather than raw CSR arrays so that the
//! reader can rebuild (and thereby re-validate) the CSR through the ordinary
//! [`GraphBuilder`] path.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, GraphKind};
use crate::error::GraphError;

const MAGIC: &[u8; 4] = b"CHLG";
const VERSION: u32 = 1;

/// Serializes `g` into a byte buffer.
pub fn to_bytes(g: &CsrGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(21 + g.num_edges() * 12);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u8(match g.kind() {
        GraphKind::Undirected => 0,
        GraphKind::Directed => 1,
    });
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    for e in g.edges() {
        buf.put_u32_le(e.u);
        buf.put_u32_le(e.v);
        buf.put_u32_le(e.w);
    }
    buf.freeze()
}

/// Deserializes a graph from a byte buffer produced by [`to_bytes`].
pub fn from_bytes(mut data: Bytes) -> Result<CsrGraph, GraphError> {
    if data.remaining() < 25 {
        return Err(GraphError::Corrupt("snapshot shorter than header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(GraphError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let kind = match data.get_u8() {
        0 => GraphKind::Undirected,
        1 => GraphKind::Directed,
        other => return Err(GraphError::Corrupt(format!("unknown graph kind {other}"))),
    };
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    if data.remaining() < m * 12 {
        return Err(GraphError::Corrupt(format!(
            "expected {} bytes of edge data, found {}",
            m * 12,
            data.remaining()
        )));
    }
    let mut builder = match kind {
        GraphKind::Undirected => GraphBuilder::new_undirected(),
        GraphKind::Directed => GraphBuilder::new_directed(),
    };
    builder.ensure_vertices(n);
    for _ in 0..m {
        let u = data.get_u32_le();
        let v = data.get_u32_le();
        let w = data.get_u32_le();
        builder.add_edge(u, v, w);
    }
    builder.build()
}

/// Writes a binary snapshot to `writer`.
pub fn write_binary<W: Write>(g: &CsrGraph, mut writer: W) -> Result<(), GraphError> {
    writer.write_all(&to_bytes(g))?;
    Ok(())
}

/// Reads a binary snapshot from `reader`.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, GraphError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    from_bytes(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, grid_network, GridOptions};

    #[test]
    fn roundtrip_undirected() {
        let g = grid_network(
            &GridOptions {
                rows: 9,
                cols: 4,
                ..GridOptions::default()
            },
            2,
        );
        let bytes = to_bytes(&g);
        let back = from_bytes(bytes).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_directed() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 4);
        b.add_edge(2, 0, 5);
        let g = b.build().unwrap();
        let back = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_through_io_traits() {
        let g = barabasi_albert(80, 2, 6);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(from_bytes(Bytes::from_static(b"short")).is_err());

        let g = grid_network(
            &GridOptions {
                rows: 3,
                cols: 3,
                ..GridOptions::default()
            },
            0,
        );
        let mut bytes = to_bytes(&g).to_vec();
        bytes[0] = b'X'; // break magic
        assert!(from_bytes(Bytes::from(bytes)).is_err());

        let mut truncated = to_bytes(&g).to_vec();
        truncated.truncate(truncated.len() - 5);
        assert!(from_bytes(Bytes::from(truncated)).is_err());

        let mut bad_version = to_bytes(&g).to_vec();
        bad_version[4] = 99;
        assert!(from_bytes(Bytes::from(bad_version)).is_err());
    }
}
