//! A minimal binary min-heap keyed by distance, with lazy deletion.
//!
//! `std::collections::BinaryHeap` is a max-heap over the element type; the
//! Dijkstra variants in this workspace all want a min-heap of
//! `(distance, vertex)` pairs and tolerate stale entries (lazy deletion), so
//! this thin wrapper keeps the call sites free of `Reverse` noise and is the
//! single place to swap in a different priority queue later.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::types::{Distance, VertexId};

/// Min-heap of `(distance, vertex)` entries.
#[derive(Debug, Clone, Default)]
pub struct DistanceQueue {
    heap: BinaryHeap<Reverse<(Distance, VertexId)>>,
}

impl DistanceQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DistanceQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Creates an empty queue with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        DistanceQueue {
            heap: BinaryHeap::with_capacity(cap),
        }
    }

    /// Pushes an entry. Duplicate entries for a vertex are allowed; the caller
    /// is expected to skip stale pops by comparing against its distance array.
    #[inline]
    pub fn push(&mut self, dist: Distance, v: VertexId) {
        self.heap.push(Reverse((dist, v)));
    }

    /// Pops the entry with the smallest distance.
    #[inline]
    pub fn pop(&mut self) -> Option<(Distance, VertexId)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Peeks at the smallest entry without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(Distance, VertexId)> {
        self.heap.peek().map(|&Reverse(e)| e)
    }

    /// Number of entries currently stored (including stale duplicates).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_distance_order() {
        let mut q = DistanceQueue::new();
        q.push(5, 1);
        q.push(2, 2);
        q.push(9, 3);
        q.push(2, 4);
        let mut out = Vec::new();
        while let Some((d, v)) = q.pop() {
            out.push((d, v));
        }
        assert_eq!(out[0].0, 2);
        assert_eq!(out[1].0, 2);
        assert_eq!(out[2], (5, 1));
        assert_eq!(out[3], (9, 3));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = DistanceQueue::with_capacity(4);
        assert!(q.is_empty());
        q.push(3, 0);
        q.push(1, 1);
        assert_eq!(q.peek(), Some((1, 1)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_vertex_id() {
        let mut q = DistanceQueue::new();
        q.push(4, 9);
        q.push(4, 2);
        assert_eq!(q.pop(), Some((4, 2)));
        assert_eq!(q.pop(), Some((4, 9)));
    }
}
