//! Breadth-first search helpers (hop distances and unit-weight distances).

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::types::{Distance, VertexId, INFINITY};

/// Hop count from `source` to every vertex (`usize::MAX` when unreachable).
pub fn bfs_hops(g: &CsrGraph, source: VertexId) -> Vec<usize> {
    let n = g.num_vertices();
    let mut hops = vec![usize::MAX; n];
    if n == 0 {
        return hops;
    }
    assert!((source as usize) < n, "source vertex {source} out of range");
    let mut queue = VecDeque::new();
    hops[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let h = hops[v as usize];
        for (u, _) in g.neighbors(v) {
            if hops[u as usize] == usize::MAX {
                hops[u as usize] = h + 1;
                queue.push_back(u);
            }
        }
    }
    hops
}

/// BFS distances treating every edge as weight 1, in the same [`Distance`]
/// domain as the weighted oracles ([`INFINITY`] when unreachable).
pub fn bfs_unit_distances(g: &CsrGraph, source: VertexId) -> Vec<Distance> {
    bfs_hops(g, source)
        .into_iter()
        .map(|h| {
            if h == usize::MAX {
                INFINITY
            } else {
                h as Distance
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::sssp::dijkstra;

    #[test]
    fn hops_on_path() {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..4u32 {
            b.add_edge(i, i + 1, 9);
        }
        let g = b.build().unwrap();
        assert_eq!(bfs_hops(&g, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unit_distances_match_dijkstra_on_unit_graph() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 3, 1);
        b.add_edge(3, 2, 1);
        b.ensure_vertices(6);
        let g = b.build().unwrap();
        assert_eq!(bfs_unit_distances(&g, 0), dijkstra(&g, 0));
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.ensure_vertices(3);
        let g = b.build().unwrap();
        assert_eq!(bfs_unit_distances(&g, 0)[2], INFINITY);
        assert_eq!(bfs_hops(&g, 0)[2], usize::MAX);
    }
}
