//! Plain (unpruned) Dijkstra, the ground-truth distance oracle.

use super::heap::DistanceQueue;
use crate::csr::CsrGraph;
use crate::types::{dist_add, Distance, VertexId, INFINITY};

/// One entry of a shortest path tree produced by [`dijkstra_with_parents`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SptNode {
    /// Shortest distance from the root, [`INFINITY`] if unreachable.
    pub distance: Distance,
    /// Parent in the shortest path tree; equal to the vertex itself for the
    /// root and for unreachable vertices.
    pub parent: VertexId,
}

/// Computes shortest distances from `source` to every vertex.
pub fn dijkstra(g: &CsrGraph, source: VertexId) -> Vec<Distance> {
    dijkstra_with_parents(g, source)
        .into_iter()
        .map(|n| n.distance)
        .collect()
}

/// Computes the full shortest path tree from `source` (distances + parents).
pub fn dijkstra_with_parents(g: &CsrGraph, source: VertexId) -> Vec<SptNode> {
    let n = g.num_vertices();
    let mut nodes: Vec<SptNode> = (0..n)
        .map(|v| SptNode {
            distance: INFINITY,
            parent: v as VertexId,
        })
        .collect();
    if n == 0 {
        return nodes;
    }
    assert!((source as usize) < n, "source vertex {source} out of range");

    let mut queue = DistanceQueue::with_capacity(n);
    nodes[source as usize].distance = 0;
    queue.push(0, source);

    while let Some((dist, v)) = queue.pop() {
        if dist > nodes[v as usize].distance {
            continue; // stale entry
        }
        for (u, w) in g.neighbors(v) {
            let cand = dist_add(dist, w);
            if cand < nodes[u as usize].distance {
                nodes[u as usize].distance = cand;
                nodes[u as usize].parent = v;
                queue.push(cand, u);
            }
        }
    }
    nodes
}

/// Computes shortest distances from `source` to each vertex in `targets`,
/// terminating as soon as every target has been settled. Returns distances in
/// the same order as `targets`.
pub fn dijkstra_targets(g: &CsrGraph, source: VertexId, targets: &[VertexId]) -> Vec<Distance> {
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    let mut remaining: std::collections::HashSet<VertexId> = targets.iter().copied().collect();
    if n == 0 {
        return targets.iter().map(|_| INFINITY).collect();
    }
    let mut queue = DistanceQueue::with_capacity(n);
    dist[source as usize] = 0;
    queue.push(0, source);
    while let Some((d, v)) = queue.pop() {
        if d > dist[v as usize] {
            continue;
        }
        remaining.remove(&v);
        if remaining.is_empty() {
            break;
        }
        for (u, w) in g.neighbors(v) {
            let cand = dist_add(d, w);
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                queue.push(cand, u);
            }
        }
    }
    targets.iter().map(|&t| dist[t as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn paper_figure_graph() -> CsrGraph {
        // The 5-vertex example of Figure 1 in the paper (v1=0 ... v5=4).
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 3); // v1-v2
        b.add_edge(0, 3, 5); // v1-v4
        b.add_edge(3, 4, 4); // v4-v5
        b.add_edge(2, 4, 2); // v3-v5
        b.add_edge(1, 2, 10); // v2-v3
        b.add_edge(1, 4, 14); // v2-v5
        b.build().unwrap()
    }

    #[test]
    fn distances_on_small_weighted_graph() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 4);
        b.add_edge(0, 2, 1);
        b.add_edge(2, 1, 2);
        b.add_edge(1, 3, 5);
        b.add_edge(2, 3, 8);
        let g = b.build().unwrap();
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 3, 1, 8]);
    }

    #[test]
    fn parents_form_a_valid_tree() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 3, 10);
        let g = b.build().unwrap();
        let spt = dijkstra_with_parents(&g, 0);
        assert_eq!(spt[3].distance, 3);
        // Walk parents back to the root.
        let mut v = 3u32;
        let mut hops = 0;
        while v != 0 {
            v = spt[v as usize].parent;
            hops += 1;
            assert!(hops <= 4);
        }
        assert_eq!(hops, 3);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.ensure_vertices(4);
        let g = b.build().unwrap();
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INFINITY);
        assert_eq!(d[3], INFINITY);
    }

    #[test]
    fn directed_distances_respect_direction() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 2);
        let g = b.build().unwrap();
        assert_eq!(dijkstra(&g, 0), vec![0, 2, 4]);
        assert_eq!(dijkstra(&g, 2), vec![INFINITY, INFINITY, 0]);
    }

    #[test]
    fn targeted_search_matches_full_search() {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..20u32 {
            b.add_edge(i, i + 1, (i % 3) + 1);
        }
        let g = b.build().unwrap();
        let full = dijkstra(&g, 0);
        let targets = vec![20u32, 5, 13];
        let got = dijkstra_targets(&g, 0, &targets);
        assert_eq!(got, vec![full[20], full[5], full[13]]);
    }

    #[test]
    fn empty_graph_returns_empty() {
        let g = GraphBuilder::new_undirected().build().unwrap();
        assert!(dijkstra_with_parents(&g, 0).is_empty());
    }

    #[test]
    fn paper_figure_one_distances_from_v2() {
        // Figure 1b of the paper: distances from v2 after SPT construction.
        let g = paper_figure_graph();
        let d = dijkstra(&g, 1);
        assert_eq!(d[0], 3); // v1
        assert_eq!(d[1], 0); // v2
        assert_eq!(d[2], 10); // v3
        assert_eq!(d[3], 8); // v4
        assert_eq!(d[4], 12); // v5 via v1-v4, not the direct 14 edge
    }
}
