//! Bellman–Ford with a frontier queue (SPFA-style), used as an independent
//! cross-check for Dijkstra and as the reference for the intra-tree parallel
//! baseline discussed in the related-work section of the paper.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::types::{dist_add, Distance, VertexId, INFINITY};

/// Computes shortest distances from `source` using queue-based Bellman–Ford.
///
/// All weights in this workspace are positive, so the algorithm always
/// terminates; the queue-based formulation avoids the full `|V|·|E|` sweep on
/// sparse graphs while keeping the implementation obviously correct.
pub fn bellman_ford(g: &CsrGraph, source: VertexId) -> Vec<Distance> {
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    if n == 0 {
        return dist;
    }
    assert!((source as usize) < n, "source vertex {source} out of range");

    let mut in_queue = vec![false; n];
    let mut queue = VecDeque::with_capacity(n);
    dist[source as usize] = 0;
    queue.push_back(source);
    in_queue[source as usize] = true;

    while let Some(v) = queue.pop_front() {
        in_queue[v as usize] = false;
        let dv = dist[v as usize];
        for (u, w) in g.neighbors(v) {
            let cand = dist_add(dv, w);
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                if !in_queue[u as usize] {
                    in_queue[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::sssp::dijkstra;

    #[test]
    fn matches_dijkstra_on_small_graph() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 7);
        b.add_edge(0, 2, 9);
        b.add_edge(0, 5, 14);
        b.add_edge(1, 2, 10);
        b.add_edge(1, 3, 15);
        b.add_edge(2, 3, 11);
        b.add_edge(2, 5, 2);
        b.add_edge(3, 4, 6);
        b.add_edge(4, 5, 9);
        let g = b.build().unwrap();
        assert_eq!(bellman_ford(&g, 0), dijkstra(&g, 0));
        assert_eq!(bellman_ford(&g, 3), dijkstra(&g, 3));
    }

    #[test]
    fn unreachable_vertices_remain_infinite() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.ensure_vertices(3);
        let g = b.build().unwrap();
        let d = bellman_ford(&g, 0);
        assert_eq!(d[2], INFINITY);
    }

    #[test]
    fn directed_graph_distances() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 4);
        b.add_edge(0, 2, 10);
        let g = b.build().unwrap();
        assert_eq!(bellman_ford(&g, 0), vec![0, 3, 7]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new_undirected().build().unwrap();
        assert!(bellman_ford(&g, 0).is_empty());
    }
}
