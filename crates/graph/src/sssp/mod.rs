//! Reference single-source shortest path algorithms.
//!
//! These are the traversal primitives the paper contrasts hub labeling
//! against (Dijkstra, Bellman–Ford, Δ-stepping) and the ground truth used by
//! every correctness test in the labeling crates. They are deliberately
//! simple and well-tested rather than micro-optimized: the optimized
//! traversals live inside the labeling algorithms themselves (pruned
//! Dijkstra, PLaNT Dijkstra).

mod bellman_ford;
mod bfs;
mod delta_stepping;
mod dijkstra;
pub mod heap;

pub use bellman_ford::bellman_ford;
pub use bfs::{bfs_hops, bfs_unit_distances};
pub use delta_stepping::{delta_stepping, suggest_delta};
pub use dijkstra::{dijkstra, dijkstra_targets, dijkstra_with_parents, SptNode};

#[cfg(test)]
mod consistency_tests {
    //! All SSSP algorithms must agree with one another on arbitrary graphs.
    use super::*;
    use crate::generators::{erdos_renyi, grid_network, GridOptions};
    use crate::types::INFINITY;

    #[test]
    fn all_algorithms_agree_on_random_graph() {
        let g = erdos_renyi(120, 0.05, 50, 99);
        for src in [0u32, 7, 63] {
            let d1 = dijkstra(&g, src);
            let d2 = bellman_ford(&g, src);
            let d3 = delta_stepping(&g, src, suggest_delta(&g));
            assert_eq!(d1, d2, "dijkstra vs bellman-ford from {src}");
            assert_eq!(d1, d3, "dijkstra vs delta-stepping from {src}");
        }
    }

    #[test]
    fn all_algorithms_agree_on_grid() {
        let g = grid_network(
            &GridOptions {
                rows: 12,
                cols: 9,
                ..GridOptions::default()
            },
            3,
        );
        let d1 = dijkstra(&g, 5);
        let d2 = bellman_ford(&g, 5);
        let d3 = delta_stepping(&g, 5, 16);
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
        assert!(d1.iter().all(|&d| d != INFINITY));
    }
}
