//! Sequential Δ-stepping.
//!
//! Δ-stepping buckets tentative distances into ranges of width Δ and relaxes
//! light edges (weight < Δ) within a bucket to a fixed point before moving to
//! heavy edges. The paper cites it as the state-of-the-art traversal baseline
//! for PPSD queries; we provide a faithful sequential implementation both as
//! a third independent distance oracle for tests and as the "online
//! traversal" baseline in the example programs.

use crate::csr::CsrGraph;
use crate::types::{dist_add, Distance, VertexId, Weight, INFINITY};

/// Computes shortest distances from `source` with bucket width `delta`.
///
/// `delta` must be at least 1; [`suggest_delta`] picks a reasonable value
/// (average edge weight) for a given graph.
pub fn delta_stepping(g: &CsrGraph, source: VertexId, delta: Weight) -> Vec<Distance> {
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    if n == 0 {
        return dist;
    }
    assert!((source as usize) < n, "source vertex {source} out of range");
    let delta = delta.max(1) as Distance;

    // Buckets are kept in a Vec indexed by bucket id; ids only grow.
    let mut buckets: Vec<Vec<VertexId>> = Vec::new();
    let mut bucket_of = vec![usize::MAX; n];

    let place =
        |v: VertexId, d: Distance, buckets: &mut Vec<Vec<VertexId>>, bucket_of: &mut Vec<usize>| {
            let b = (d / delta) as usize;
            if b >= buckets.len() {
                buckets.resize_with(b + 1, Vec::new);
            }
            buckets[b].push(v);
            bucket_of[v as usize] = b;
        };

    dist[source as usize] = 0;
    place(source, 0, &mut buckets, &mut bucket_of);

    let mut current = 0usize;
    while current < buckets.len() {
        if buckets[current].is_empty() {
            current += 1;
            continue;
        }
        // Settle the current bucket: repeatedly relax light edges of vertices
        // removed from it until it stops refilling, remembering everything we
        // removed so heavy edges can be relaxed once afterwards.
        let mut removed: Vec<VertexId> = Vec::new();
        while !buckets[current].is_empty() {
            let frontier = std::mem::take(&mut buckets[current]);
            for &v in &frontier {
                // Skip stale membership (vertex moved to an earlier bucket).
                if bucket_of[v as usize] != current {
                    continue;
                }
                removed.push(v);
                let dv = dist[v as usize];
                for (u, w) in g.neighbors(v) {
                    if (w as Distance) <= delta {
                        let cand = dist_add(dv, w);
                        if cand < dist[u as usize] {
                            dist[u as usize] = cand;
                            place(u, cand, &mut buckets, &mut bucket_of);
                        }
                    }
                }
            }
        }
        // Heavy edges of everything settled in this bucket.
        for &v in &removed {
            let dv = dist[v as usize];
            for (u, w) in g.neighbors(v) {
                if (w as Distance) > delta {
                    let cand = dist_add(dv, w);
                    if cand < dist[u as usize] {
                        dist[u as usize] = cand;
                        place(u, cand, &mut buckets, &mut bucket_of);
                    }
                }
            }
        }
        current += 1;
    }
    dist
}

/// Suggests a bucket width: the rounded-up average edge weight (at least 1).
pub fn suggest_delta(g: &CsrGraph) -> Weight {
    if g.num_edges() == 0 {
        return 1;
    }
    let total = g.total_weight();
    total.div_ceil(g.num_edges() as Distance).max(1) as Weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{erdos_renyi, grid_network, GridOptions};
    use crate::sssp::dijkstra;

    #[test]
    fn matches_dijkstra_various_deltas() {
        let g = erdos_renyi(80, 0.08, 30, 7);
        let reference = dijkstra(&g, 3);
        for delta in [1u32, 2, 5, 10, 1000] {
            assert_eq!(delta_stepping(&g, 3, delta), reference, "delta={delta}");
        }
    }

    #[test]
    fn grid_with_heavy_and_light_edges() {
        let g = grid_network(
            &GridOptions {
                rows: 8,
                cols: 8,
                max_weight: 50,
                ..GridOptions::default()
            },
            11,
        );
        assert_eq!(delta_stepping(&g, 0, suggest_delta(&g)), dijkstra(&g, 0));
    }

    #[test]
    fn suggest_delta_handles_edge_cases() {
        let g = GraphBuilder::new_undirected().build().unwrap();
        assert_eq!(suggest_delta(&g), 1);
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 20);
        let g = b.build().unwrap();
        assert_eq!(suggest_delta(&g), 15);
    }

    #[test]
    fn zero_delta_is_clamped() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 2);
        let g = b.build().unwrap();
        assert_eq!(delta_stepping(&g, 0, 0), vec![0, 2]);
    }
}
