//! # chl-graph
//!
//! Weighted graph substrate used by the canonical hub labeling crates.
//!
//! The paper ("Planting Trees for scalable and efficient Canonical Hub
//! Labeling", Lakhotia et al., VLDB 2019) evaluates labeling algorithms on
//! positively-weighted road networks and scale-free networks. This crate
//! provides everything those algorithms need from a graph library:
//!
//! * a compact CSR representation ([`CsrGraph`]) for undirected and directed
//!   weighted graphs,
//! * a forgiving [`GraphBuilder`] that deduplicates parallel edges, drops
//!   self-loops and symmetrizes undirected inputs,
//! * readers/writers for the DIMACS `.gr` format (road networks), whitespace
//!   edge lists (SNAP/KONECT) and a compact binary snapshot format,
//! * synthetic generators covering the topology classes of the paper's
//!   evaluation (grid/road-like, Erdős–Rényi, Barabási–Albert, R-MAT,
//!   Watts–Strogatz plus classic shapes for tests),
//! * reference single-source shortest path algorithms (Dijkstra,
//!   Bellman–Ford, Δ-stepping, BFS) used as ground truth by the labeling
//!   crates' tests and by the approximate-betweenness ranking.
//!
//! # Example
//!
//! ```
//! use chl_graph::{GraphBuilder, sssp::dijkstra};
//!
//! let mut b = GraphBuilder::new_undirected();
//! b.add_edge(0, 1, 4);
//! b.add_edge(1, 2, 3);
//! b.add_edge(0, 2, 10);
//! let g = b.build().unwrap();
//!
//! let dist = dijkstra(&g, 0);
//! assert_eq!(dist[2], 7); // 0 -> 1 -> 2 is shorter than the direct edge
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod components;
pub mod csr;
pub mod error;
pub mod generators;
pub mod io;
pub mod properties;
pub mod sssp;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use error::GraphError;
pub use types::{Distance, Edge, VertexId, Weight, INFINITY};
