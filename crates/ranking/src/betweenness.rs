//! Approximate betweenness-centrality ordering.
//!
//! The paper ranks road-network vertices by betweenness "approximated by
//! sampling a few shortest path trees" (§7.1.1, citing Geisberger et al.).
//! This module implements exactly that: Brandes' dependency accumulation run
//! from a sample of roots, generalized to weighted graphs by replacing BFS
//! with Dijkstra.

use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use chl_graph::sssp::heap::DistanceQueue;
use chl_graph::types::{dist_add, Distance, VertexId, INFINITY};
use chl_graph::CsrGraph;

use crate::ranking::{Ranking, RankingStrategy};

/// Options for [`approx_betweenness`].
#[derive(Debug, Clone)]
pub struct BetweennessOptions {
    /// Number of sampled roots. The estimate converges quickly; the paper
    /// notes the sampling is "inexpensive to compute", so the default stays
    /// small.
    pub samples: usize,
    /// Break centrality ties by degree (helps small/synthetic graphs where
    /// many vertices have zero sampled dependency).
    pub degree_tiebreak: bool,
}

impl Default for BetweennessOptions {
    fn default() -> Self {
        BetweennessOptions {
            samples: 32,
            degree_tiebreak: true,
        }
    }
}

/// Estimates betweenness centrality of every vertex by running Brandes'
/// accumulation from `opts.samples` random roots (all roots if the graph is
/// smaller than the sample count). Returns one score per vertex.
pub fn approx_betweenness(g: &CsrGraph, opts: &BetweennessOptions, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    let mut centrality = vec![0.0f64; n];
    if n == 0 {
        return centrality;
    }

    let mut roots: Vec<VertexId> = (0..n as u32).collect();
    if opts.samples < n {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbe73_3e55);
        roots.shuffle(&mut rng);
        roots.truncate(opts.samples.max(1));
    }

    // Scratch buffers reused across roots.
    let mut dist: Vec<Distance> = vec![INFINITY; n];
    let mut sigma: Vec<f64> = vec![0.0; n]; // number of shortest paths
    let mut delta: Vec<f64> = vec![0.0; n]; // dependency
    let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut settled_order: Vec<VertexId> = Vec::with_capacity(n);

    for &s in &roots {
        dist.iter_mut().for_each(|d| *d = INFINITY);
        sigma.iter_mut().for_each(|x| *x = 0.0);
        delta.iter_mut().for_each(|x| *x = 0.0);
        preds.iter_mut().for_each(Vec::clear);
        settled_order.clear();

        // Weighted Brandes: Dijkstra keeping shortest-path counts and
        // predecessor lists.
        let mut queue = DistanceQueue::with_capacity(n);
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        queue.push(0, s);
        let mut settled = vec![false; n];
        while let Some((d, v)) = queue.pop() {
            if settled[v as usize] || d > dist[v as usize] {
                continue;
            }
            settled[v as usize] = true;
            settled_order.push(v);
            for (u, w) in g.neighbors(v) {
                let cand = dist_add(d, w);
                if cand < dist[u as usize] {
                    dist[u as usize] = cand;
                    sigma[u as usize] = sigma[v as usize];
                    preds[u as usize].clear();
                    preds[u as usize].push(v);
                    queue.push(cand, u);
                } else if cand == dist[u as usize] && cand != INFINITY {
                    sigma[u as usize] += sigma[v as usize];
                    preds[u as usize].push(v);
                }
            }
        }

        // Dependency accumulation in reverse settled order.
        for &v in settled_order.iter().rev() {
            for &p in &preds[v as usize] {
                if sigma[v as usize] > 0.0 {
                    delta[p as usize] +=
                        sigma[p as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            if v != s {
                centrality[v as usize] += delta[v as usize];
            }
        }
    }
    centrality
}

/// Ranks vertices by approximate betweenness, most central first.
pub fn betweenness_ranking(g: &CsrGraph, opts: &BetweennessOptions, seed: u64) -> Ranking {
    let mut scores = approx_betweenness(g, opts, seed);
    if opts.degree_tiebreak {
        // Perturb scores by a degree term smaller than any meaningful
        // betweenness difference so that ties fall back to degree order.
        let n = g.num_vertices().max(1) as f64;
        for v in g.vertices() {
            scores[v as usize] += g.degree(v) as f64 / (n * n);
        }
    }
    Ranking::from_scores(&scores)
}

/// [`RankingStrategy`] wrapper around [`betweenness_ranking`].
#[derive(Debug, Clone, Default)]
pub struct BetweennessOrdering {
    /// Sampling options.
    pub options: BetweennessOptions,
    /// RNG seed for root sampling.
    pub seed: u64,
}

impl RankingStrategy for BetweennessOrdering {
    fn rank(&self, g: &CsrGraph) -> Ranking {
        betweenness_ranking(g, &self.options, self.seed)
    }
    fn name(&self) -> &'static str {
        "approx-betweenness"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::generators::{grid_network, path_graph, star_graph, GridOptions};
    use chl_graph::GraphBuilder;

    fn exact_options(n: usize) -> BetweennessOptions {
        BetweennessOptions {
            samples: n,
            degree_tiebreak: false,
        }
    }

    #[test]
    fn path_center_has_highest_betweenness() {
        let g = path_graph(7);
        let c = approx_betweenness(&g, &exact_options(7), 0);
        let best = (0..7)
            .max_by(|&a, &b| c[a].partial_cmp(&c[b]).unwrap())
            .unwrap();
        assert_eq!(
            best, 3,
            "centre of a path carries the most shortest paths: {c:?}"
        );
        // Endpoints carry none.
        assert_eq!(c[0], 0.0);
        assert_eq!(c[6], 0.0);
    }

    #[test]
    fn star_center_dominates() {
        let g = star_graph(9);
        let r = betweenness_ranking(&g, &exact_options(9), 0);
        assert_eq!(r.vertex_at(0), 0);
    }

    #[test]
    fn bridge_vertex_outranks_clique_members() {
        // Two triangles joined through vertex 6: 0-1-2 and 3-4-5, bridge 6.
        let mut b = GraphBuilder::new_undirected();
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, 1);
        }
        b.add_edge(2, 6, 1);
        b.add_edge(6, 3, 1);
        let g = b.build().unwrap();
        let r = betweenness_ranking(&g, &exact_options(7), 0);
        assert_eq!(r.vertex_at(0), 6);
    }

    #[test]
    fn weighted_graph_uses_weighted_paths() {
        // 0-1-2 with cheap edges, plus an expensive direct 0-2 edge: vertex 1
        // must be the most central because all 0..2 traffic goes through it.
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 2, 100);
        let g = b.build().unwrap();
        let c = approx_betweenness(&g, &exact_options(3), 0);
        assert!(c[1] > c[0]);
        assert!(c[1] > c[2]);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let g = grid_network(
            &GridOptions {
                rows: 10,
                cols: 10,
                ..GridOptions::default()
            },
            5,
        );
        let opts = BetweennessOptions {
            samples: 16,
            degree_tiebreak: true,
        };
        let a = betweenness_ranking(&g, &opts, 11);
        let b = betweenness_ranking(&g, &opts, 11);
        assert_eq!(a, b);
        let c = betweenness_ranking(&g, &opts, 12);
        assert_eq!(c.len(), g.num_vertices());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new_undirected().build().unwrap();
        assert!(approx_betweenness(&g, &BetweennessOptions::default(), 0).is_empty());
    }

    #[test]
    fn multiple_shortest_paths_split_dependency() {
        // A 4-cycle: every pair of opposite vertices has two shortest paths,
        // so the two intermediate vertices share the dependency equally.
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 0, 1);
        let g = b.build().unwrap();
        let c = approx_betweenness(&g, &exact_options(4), 0);
        assert!((c[0] - c[1]).abs() < 1e-9);
        assert!((c[1] - c[2]).abs() < 1e-9);
        assert!((c[2] - c[3]).abs() < 1e-9);
    }
}
