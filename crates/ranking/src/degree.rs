//! Degree-based ordering.
//!
//! For scale-free networks the paper (following Akiba et al.) ranks vertices
//! by degree: the dense core of hubs covers a very large fraction of shortest
//! paths, so making them the most important vertices keeps label sets small.

use chl_graph::CsrGraph;

use crate::ranking::{Ranking, RankingStrategy};

/// Ranks vertices by descending degree (ties by vertex id).
pub fn degree_ranking(g: &CsrGraph) -> Ranking {
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v) + g.in_degree(v)).collect();
    Ranking::from_scores(&degrees)
}

/// [`RankingStrategy`] wrapper around [`degree_ranking`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeOrdering;

impl RankingStrategy for DegreeOrdering {
    fn rank(&self, g: &CsrGraph) -> Ranking {
        degree_ranking(g)
    }
    fn name(&self) -> &'static str {
        "degree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::generators::{barabasi_albert, star_graph};
    use chl_graph::GraphBuilder;

    #[test]
    fn star_center_ranks_first() {
        let g = star_graph(10);
        let r = degree_ranking(&g);
        assert_eq!(r.vertex_at(0), 0);
        assert_eq!(r.position(0), 0);
    }

    #[test]
    fn hubs_of_scale_free_graph_rank_high() {
        let g = barabasi_albert(400, 3, 3);
        let r = degree_ranking(&g);
        // The top-ranked vertex has the maximum degree.
        let top = r.vertex_at(0);
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        assert_eq!(g.degree(top), max_deg);
        // Positions are monotone in degree.
        for pos in 1..r.len() as u32 {
            let a = r.vertex_at(pos - 1);
            let b = r.vertex_at(pos);
            assert!(g.degree(a) >= g.degree(b));
        }
    }

    #[test]
    fn directed_degree_counts_both_directions() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(0, 1, 1);
        b.add_edge(2, 1, 1);
        b.add_edge(3, 1, 1);
        b.add_edge(0, 2, 1);
        let g = b.build().unwrap();
        let r = degree_ranking(&g);
        // Vertex 1 has total degree 3 (all incoming), the highest.
        assert_eq!(r.vertex_at(0), 1);
    }

    #[test]
    fn strategy_trait_reports_name() {
        let s = DegreeOrdering;
        assert_eq!(s.name(), "degree");
        let g = star_graph(4);
        assert_eq!(s.rank(&g).vertex_at(0), 0);
    }
}
