//! The [`Ranking`] type: a total order on vertices.

use serde::{Deserialize, Serialize};
use std::fmt;

use chl_graph::{CsrGraph, VertexId};

/// Errors produced when constructing a [`Ranking`] from user input.
#[derive(Debug, PartialEq, Eq)]
pub enum RankingError {
    /// The order does not contain every vertex exactly once.
    NotAPermutation {
        /// Expected number of vertices.
        expected: usize,
        /// Length of the supplied order.
        found: usize,
    },
    /// A vertex id in the order is outside `0..n`.
    VertexOutOfRange(VertexId),
    /// A vertex appears more than once in the order.
    DuplicateVertex(VertexId),
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::NotAPermutation { expected, found } => {
                write!(f, "ranking must list every vertex exactly once: expected {expected} entries, found {found}")
            }
            RankingError::VertexOutOfRange(v) => write!(f, "vertex {v} out of range"),
            RankingError::DuplicateVertex(v) => {
                write!(f, "vertex {v} appears twice in the ranking")
            }
        }
    }
}

impl std::error::Error for RankingError {}

/// A total order (network hierarchy) over the vertices of a graph.
///
/// Internally a `Ranking` stores both directions of the bijection:
/// `order[pos] = vertex` and `position[vertex] = pos`, with **position 0 being
/// the most important vertex**. The labeling algorithms compare importance
/// millions of times, so `position` lookups are a single array access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ranking {
    order: Vec<VertexId>,
    position: Vec<u32>,
}

impl Ranking {
    /// Builds a ranking from an explicit order, most important vertex first.
    pub fn from_order(order: Vec<VertexId>, num_vertices: usize) -> Result<Self, RankingError> {
        if order.len() != num_vertices {
            return Err(RankingError::NotAPermutation {
                expected: num_vertices,
                found: order.len(),
            });
        }
        let mut position = vec![u32::MAX; num_vertices];
        for (pos, &v) in order.iter().enumerate() {
            let vi = v as usize;
            if vi >= num_vertices {
                return Err(RankingError::VertexOutOfRange(v));
            }
            if position[vi] != u32::MAX {
                return Err(RankingError::DuplicateVertex(v));
            }
            position[vi] = pos as u32;
        }
        Ok(Ranking { order, position })
    }

    /// Builds a ranking by sorting vertices by a score, **highest score =
    /// most important**. Ties are broken by vertex id (lower id more
    /// important) so rankings are deterministic.
    pub fn from_scores<S: PartialOrd + Copy>(scores: &[S]) -> Self {
        let mut order: Vec<VertexId> = (0..scores.len() as u32).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Self::from_order(order, scores.len()).expect("sorted ids form a permutation")
    }

    /// The identity ranking: vertex 0 most important, vertex n-1 least.
    pub fn identity(num_vertices: usize) -> Self {
        let order: Vec<VertexId> = (0..num_vertices as u32).collect();
        Self::from_order(order, num_vertices).expect("identity is a permutation")
    }

    /// Number of ranked vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the ranking covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Rank position of `v` (0 = most important).
    #[inline]
    pub fn position(&self, v: VertexId) -> u32 {
        self.position[v as usize]
    }

    /// Vertex at rank position `pos`.
    #[inline]
    pub fn vertex_at(&self, pos: u32) -> VertexId {
        self.order[pos as usize]
    }

    /// The full order, most important first.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// `true` when `u` is strictly more important than `v` (paper: `R(u) > R(v)`).
    #[inline]
    pub fn is_more_important(&self, u: VertexId, v: VertexId) -> bool {
        self.position[u as usize] < self.position[v as usize]
    }

    /// Returns the more important of `u` and `v`.
    #[inline]
    pub fn more_important_of(&self, u: VertexId, v: VertexId) -> VertexId {
        if self.is_more_important(u, v) {
            u
        } else {
            v
        }
    }

    /// The most important vertex among the (non-empty) iterator `it`.
    pub fn most_important<I: IntoIterator<Item = VertexId>>(&self, it: I) -> Option<VertexId> {
        it.into_iter().min_by_key(|&v| self.position[v as usize])
    }

    /// Paper-style rank value: `R(v) = n - position(v)`, so higher is more
    /// important and the most important vertex has `R = n`. Only used for
    /// display/debugging parity with the paper's figures (their SPT id is
    /// `n - R(v)`, i.e. exactly [`Self::position`]).
    pub fn paper_rank(&self, v: VertexId) -> u32 {
        self.order.len() as u32 - self.position(v)
    }

    /// Checks that this ranking covers exactly the vertices of `g`.
    pub fn matches_graph(&self, g: &CsrGraph) -> bool {
        self.len() == g.num_vertices()
    }

    /// Heap bytes held by the two direction arrays (`order` and `position`),
    /// counted by index memory accounting.
    pub fn memory_bytes(&self) -> usize {
        (self.order.len() + self.position.len()) * std::mem::size_of::<VertexId>()
    }
}

/// A strategy that produces a [`Ranking`] for a graph. Implemented by the
/// degree and betweenness orderings; user code can plug in custom hierarchies
/// (e.g. highway hierarchies imported from an external tool).
pub trait RankingStrategy {
    /// Computes the ranking for `g`.
    fn rank(&self, g: &CsrGraph) -> Ranking;
    /// Human-readable name used in benchmark reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_order_roundtrips_positions() {
        let r = Ranking::from_order(vec![2, 0, 1], 3).unwrap();
        assert_eq!(r.position(2), 0);
        assert_eq!(r.position(0), 1);
        assert_eq!(r.position(1), 2);
        assert_eq!(r.vertex_at(0), 2);
        assert_eq!(r.order(), &[2, 0, 1]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn importance_comparisons() {
        let r = Ranking::from_order(vec![2, 0, 1], 3).unwrap();
        assert!(r.is_more_important(2, 0));
        assert!(r.is_more_important(0, 1));
        assert!(!r.is_more_important(1, 2));
        assert_eq!(r.more_important_of(0, 1), 0);
        assert_eq!(r.most_important([1, 0, 2]), Some(2));
        assert_eq!(r.most_important(std::iter::empty()), None);
    }

    #[test]
    fn from_scores_orders_by_score_then_id() {
        let r = Ranking::from_scores(&[5.0, 9.0, 5.0, 1.0]);
        assert_eq!(r.order(), &[1, 0, 2, 3]);
    }

    #[test]
    fn paper_rank_is_n_minus_position() {
        let r = Ranking::identity(4);
        assert_eq!(r.paper_rank(0), 4);
        assert_eq!(r.paper_rank(3), 1);
    }

    #[test]
    fn invalid_orders_are_rejected() {
        assert_eq!(
            Ranking::from_order(vec![0, 1], 3).unwrap_err(),
            RankingError::NotAPermutation {
                expected: 3,
                found: 2
            }
        );
        assert_eq!(
            Ranking::from_order(vec![0, 1, 3], 3).unwrap_err(),
            RankingError::VertexOutOfRange(3)
        );
        assert_eq!(
            Ranking::from_order(vec![0, 1, 1], 3).unwrap_err(),
            RankingError::DuplicateVertex(1)
        );
    }

    #[test]
    fn empty_ranking() {
        let r = Ranking::identity(0);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
