//! # chl-ranking
//!
//! Network hierarchies (total vertex orders) for canonical hub labeling.
//!
//! The Canonical Hub Labeling is defined *relative to a ranking* `R`: for
//! every connected pair only the highest-ranked vertex on their shortest
//! paths becomes a hub. The paper determines `R` by **approximate
//! betweenness** for road networks and by **degree** for scale-free networks
//! (§7.1.1); both are provided here, together with explicit/custom orders
//! used throughout the tests.
//!
//! Rank positions: position `0` is the *most important* vertex. The paper
//! writes `R(u) > R(v)` for "`u` is more important than `v`"; with positions
//! that becomes `pos(u) < pos(v)`. Use [`Ranking::is_more_important`] to stay
//! out of off-by-one territory.

#![forbid(unsafe_code)]

pub mod betweenness;
pub mod degree;
pub mod ranking;

pub use betweenness::{approx_betweenness, betweenness_ranking, BetweennessOptions};
pub use degree::degree_ranking;
pub use ranking::{Ranking, RankingError, RankingStrategy};

use chl_graph::CsrGraph;

/// Chooses the paper's default ranking for a graph: approximate betweenness
/// for road-like topologies (small max degree), degree ordering otherwise.
pub fn default_ranking(g: &CsrGraph, seed: u64) -> Ranking {
    if chl_graph::properties::looks_scale_free(g, 8.0) {
        degree_ranking(g)
    } else {
        betweenness_ranking(g, &BetweennessOptions::default(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::generators::{barabasi_albert, grid_network, GridOptions};

    #[test]
    fn default_ranking_picks_strategy_by_topology() {
        // Both topology families must produce valid rankings regardless of
        // which strategy fired.
        let road = grid_network(
            &GridOptions {
                rows: 12,
                cols: 12,
                ..GridOptions::default()
            },
            1,
        );
        let social = barabasi_albert(300, 4, 2);
        assert_eq!(default_ranking(&road, 7).len(), road.num_vertices());
        assert_eq!(default_ranking(&social, 7).len(), social.num_vertices());

        // An unambiguously scale-free graph (a star) must take the degree
        // path: the hub is the most important vertex.
        let star = chl_graph::generators::star_graph(50);
        let r = default_ranking(&star, 7);
        assert_eq!(r.vertex_at(0), 0);
    }
}
