//! # chl-datasets
//!
//! The paper evaluates on 12 real-world graphs (Table 2): four DIMACS road
//! networks and eight KONECT/SNAP scale-free networks. Those files are not
//! bundled with this repository, so this crate provides **synthetic
//! stand-ins**: for every dataset it generates a graph of the same topology
//! class (perturbed grid for roads, Barabási–Albert / R-MAT for scale-free),
//! scaled down to laptop size while preserving the relative size ordering,
//! with edge weights assigned the way the paper assigns them (native weights
//! for roads, uniform `[1, √n)` for originally-unweighted graphs). The
//! default ranking follows §7.1.1: approximate betweenness for road networks,
//! degree for scale-free networks.
//!
//! When the real files are available they can be loaded through
//! [`from_dimacs_file`] / [`from_edge_list_file`] and used with the same
//! downstream pipeline.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod synth;

pub use catalog::{DatasetId, DatasetInfo, Scale, Topology};
pub use synth::{load, load_graph, Dataset};

use std::path::Path;

use chl_graph::io::{read_dimacs, read_edge_list, EdgeListOptions};
use chl_graph::{CsrGraph, GraphError};

/// Loads a real DIMACS `.gr` road-network file (undirected interpretation,
/// matching the challenge files' symmetric arc lists).
pub fn from_dimacs_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_dimacs(std::io::BufReader::new(file), false)
}

/// Loads a real SNAP/KONECT whitespace edge-list file.
pub fn from_edge_list_file<P: AsRef<Path>>(
    path: P,
    opts: &EdgeListOptions,
) -> Result<CsrGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_file_loaders_report_missing_files() {
        assert!(from_dimacs_file("/nonexistent/cal.gr").is_err());
        assert!(from_edge_list_file("/nonexistent/skit.txt", &EdgeListOptions::default()).is_err());
    }
}
