//! Synthetic stand-in generation.

use chl_graph::generators::{
    barabasi_albert, grid_network, paper_weight_bound, rmat, GridOptions, RmatOptions,
};
use chl_graph::properties::graph_stats;
use chl_graph::CsrGraph;
use chl_ranking::{betweenness_ranking, degree_ranking, BetweennessOptions, Ranking};

use crate::catalog::{DatasetId, Scale, Topology};

/// A ready-to-use dataset instance: the synthetic graph plus the ranking the
/// paper would use for it.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which of the paper's datasets this stands in for.
    pub id: DatasetId,
    /// The synthetic graph.
    pub graph: CsrGraph,
    /// The network hierarchy (betweenness for roads, degree for scale-free).
    pub ranking: Ranking,
}

impl Dataset {
    /// Short name of the dataset.
    pub fn name(&self) -> &'static str {
        self.id.name()
    }
}

/// Generates the synthetic stand-in graph for `id` at the given scale.
/// Deterministic for a given `(id, scale, seed)`.
pub fn load_graph(id: DatasetId, scale: Scale, seed: u64) -> CsrGraph {
    let info = id.info();
    let target_n = scale.target_vertices(&info);
    // Per-dataset seed so different datasets are not merely rescaled copies.
    let seed = seed
        ^ (info
            .name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64)));

    match info.topology {
        Topology::Road => {
            // A near-square grid with light random perturbation reproduces the
            // degree distribution and diameter characteristics of the DIMACS
            // road networks; weights model segment travel times.
            let cols = (target_n as f64).sqrt().round().max(2.0) as usize;
            let rows = target_n.div_ceil(cols).max(2);
            grid_network(
                &GridOptions {
                    rows,
                    cols,
                    max_weight: 1000,
                    removal_fraction: 0.08,
                    shortcut_edges: target_n / 200,
                },
                seed,
            )
        }
        Topology::ScaleFree => {
            // Average degree of the real dataset determines the attachment
            // parameter; hyperlink-style graphs (BDU) use R-MAT for a more
            // skewed structure, the rest use preferential attachment.
            let avg_degree =
                (info.paper_edges as f64 / info.paper_vertices as f64).round() as usize;
            match id {
                DatasetId::BDU => {
                    let scale_log = (target_n as f64).log2().round().max(6.0) as u32;
                    rmat(
                        &RmatOptions {
                            scale: scale_log,
                            edge_factor: avg_degree.max(2),
                            max_weight: paper_weight_bound(1 << scale_log),
                            ..RmatOptions::default()
                        },
                        seed,
                    )
                }
                _ => {
                    // Attachment parameter m ≈ half the average degree (each
                    // new vertex contributes m undirected edges).
                    let m = (avg_degree / 2).clamp(2, 48);
                    barabasi_albert(target_n, m, seed)
                }
            }
        }
    }
}

/// Generates the synthetic stand-in for `id` plus the paper's ranking choice.
pub fn load(id: DatasetId, scale: Scale, seed: u64) -> Dataset {
    let graph = load_graph(id, scale, seed);
    let ranking = match id.topology() {
        Topology::Road => betweenness_ranking(
            &graph,
            &BetweennessOptions {
                samples: 48,
                degree_tiebreak: true,
            },
            seed,
        ),
        Topology::ScaleFree => degree_ranking(&graph),
    };
    Dataset { id, graph, ranking }
}

/// One row of the Table 2 reproduction: dataset name, synthetic size and the
/// paper's original size.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub name: &'static str,
    /// Synthetic stand-in vertex count.
    pub vertices: usize,
    /// Synthetic stand-in edge count.
    pub edges: usize,
    /// Paper's vertex count.
    pub paper_vertices: usize,
    /// Paper's edge count.
    pub paper_edges: usize,
    /// Topology family.
    pub topology: Topology,
    /// Estimated hop diameter of the synthetic graph.
    pub approx_diameter: usize,
}

/// Builds the Table 2 reproduction for all datasets at the given scale.
pub fn table2(scale: Scale, seed: u64) -> Vec<Table2Row> {
    DatasetId::all()
        .into_iter()
        .map(|id| {
            let info = id.info();
            let g = load_graph(id, scale, seed);
            let stats = graph_stats(&g);
            Table2Row {
                name: info.name,
                vertices: stats.num_vertices,
                edges: stats.num_edges,
                paper_vertices: info.paper_vertices,
                paper_edges: info.paper_edges,
                topology: info.topology,
                approx_diameter: stats.approx_diameter_hops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::components::connected_components;
    use chl_graph::properties::looks_scale_free;

    #[test]
    fn road_stand_ins_look_like_roads() {
        for id in [DatasetId::CAL, DatasetId::USA] {
            let g = load_graph(id, Scale::Tiny, 1);
            assert!(
                !looks_scale_free(&g, 8.0),
                "{:?} should not be scale-free",
                id
            );
            let stats = graph_stats(&g);
            assert!(stats.max_degree <= 8);
            assert!(
                stats.approx_diameter_hops > 10,
                "road networks have large diameter"
            );
        }
    }

    #[test]
    fn scale_free_stand_ins_have_hubs() {
        for id in [DatasetId::SKIT, DatasetId::YTB, DatasetId::BDU] {
            let g = load_graph(id, Scale::Small, 1);
            assert!(looks_scale_free(&g, 5.0), "{:?} should be scale-free", id);
        }
    }

    #[test]
    fn relative_size_ordering_is_preserved() {
        let cal = load_graph(DatasetId::CAL, Scale::Tiny, 3).num_vertices();
        let usa = load_graph(DatasetId::USA, Scale::Tiny, 3).num_vertices();
        let skit = load_graph(DatasetId::SKIT, Scale::Tiny, 3).num_vertices();
        let lij = load_graph(DatasetId::LIJ, Scale::Tiny, 3).num_vertices();
        assert!(usa > cal);
        assert!(lij > skit);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = load_graph(DatasetId::AUT, Scale::Tiny, 9);
        let b = load_graph(DatasetId::AUT, Scale::Tiny, 9);
        let c = load_graph(DatasetId::AUT, Scale::Tiny, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn load_attaches_the_right_ranking() {
        let road = load(DatasetId::CAL, Scale::Tiny, 5);
        assert_eq!(road.ranking.len(), road.graph.num_vertices());
        assert_eq!(road.name(), "CAL");

        let social = load(DatasetId::YTB, Scale::Tiny, 5);
        // Degree ranking: the top vertex has maximum degree.
        let top = social.ranking.vertex_at(0);
        let max_deg = social
            .graph
            .vertices()
            .map(|v| social.graph.degree(v))
            .max()
            .unwrap();
        assert_eq!(social.graph.degree(top), max_deg);
        // Scale-free stand-ins are connected by construction (BA model).
        assert_eq!(connected_components(&social.graph).count(), 1);
    }

    #[test]
    fn table2_lists_all_datasets() {
        let rows = table2(Scale::Tiny, 1);
        assert_eq!(rows.len(), 12);
        for row in &rows {
            assert!(row.vertices >= 64);
            assert!(row.edges > 0);
            assert!(row.paper_vertices > row.vertices);
        }
    }
}
