//! The dataset catalog: Table 2 of the paper plus the synthetic scaling
//! policy.

use serde::{Deserialize, Serialize};

/// Topology family of a dataset, the axis along which every qualitative
//  result in the paper splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// High-diameter, near-planar, small-degree road network.
    Road,
    /// Low-diameter, heavy-tailed scale-free network.
    ScaleFree,
}

/// Identifier of one of the paper's 12 evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum DatasetId {
    /// California road network (DIMACS).
    CAL,
    /// East-USA road network (DIMACS).
    EAS,
    /// Center-USA road network (DIMACS).
    CTR,
    /// Full USA road network (DIMACS).
    USA,
    /// Skitter autonomous-systems links.
    SKIT,
    /// University of Notre Dame web pages (directed in the paper).
    WND,
    /// Citeseer collaboration network.
    AUT,
    /// YouTube social network.
    YTB,
    /// Actor collaboration network.
    ACT,
    /// Baidu hyperlink network (directed in the paper).
    BDU,
    /// Pokec social network (directed in the paper).
    POK,
    /// LiveJournal social network (directed in the paper).
    LIJ,
}

/// Static information about one dataset, as reported in Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Dataset identifier.
    pub id: DatasetId,
    /// Short name used throughout the paper's tables and figures.
    pub name: &'static str,
    /// Human-readable description (Table 2's "Description" column).
    pub description: &'static str,
    /// Topology family.
    pub topology: Topology,
    /// Vertex count of the real dataset.
    pub paper_vertices: usize,
    /// Edge count of the real dataset.
    pub paper_edges: usize,
    /// Whether the paper's source file is directed.
    pub directed_in_paper: bool,
}

impl DatasetId {
    /// All 12 datasets in the order of Table 2.
    pub fn all() -> [DatasetId; 12] {
        use DatasetId::*;
        [CAL, EAS, CTR, USA, SKIT, WND, AUT, YTB, ACT, BDU, POK, LIJ]
    }

    /// The subset of datasets the shared-memory evaluation (Table 3, Figures
    /// 5 and 7) concentrates on — everything except the two largest.
    pub fn shared_memory_set() -> [DatasetId; 10] {
        use DatasetId::*;
        [CAL, EAS, CTR, USA, SKIT, WND, AUT, YTB, ACT, BDU]
    }

    /// Static catalog information.
    pub fn info(self) -> DatasetInfo {
        use DatasetId::*;
        use Topology::*;
        let (name, description, topology, n, m, directed) = match self {
            CAL => (
                "CAL",
                "California road network",
                Road,
                1_890_815,
                4_657_742,
                false,
            ),
            EAS => (
                "EAS",
                "East USA road network",
                Road,
                3_598_623,
                8_778_114,
                false,
            ),
            CTR => (
                "CTR",
                "Center USA road network",
                Road,
                14_081_816,
                34_292_496,
                false,
            ),
            USA => (
                "USA",
                "Full USA road network",
                Road,
                23_947_347,
                58_333_344,
                false,
            ),
            SKIT => (
                "SKIT",
                "Skitter autonomous systems",
                ScaleFree,
                192_244,
                636_643,
                false,
            ),
            WND => (
                "WND",
                "Univ. Notre Dame webpages",
                ScaleFree,
                325_729,
                1_497_134,
                true,
            ),
            AUT => (
                "AUT",
                "Citeseer collaboration",
                ScaleFree,
                227_320,
                814_134,
                false,
            ),
            YTB => (
                "YTB",
                "Youtube social network",
                ScaleFree,
                1_134_890,
                2_987_624,
                false,
            ),
            ACT => (
                "ACT",
                "Actor collaboration network",
                ScaleFree,
                382_219,
                33_115_812,
                false,
            ),
            BDU => (
                "BDU",
                "Baidu hyperlink network",
                ScaleFree,
                2_141_300,
                17_794_839,
                true,
            ),
            POK => (
                "POK",
                "Social network Pokec",
                ScaleFree,
                1_632_803,
                30_622_564,
                true,
            ),
            LIJ => (
                "LIJ",
                "LiveJournal social network",
                ScaleFree,
                4_847_571,
                68_993_773,
                true,
            ),
        };
        DatasetInfo {
            id: self,
            name,
            description,
            topology,
            paper_vertices: n,
            paper_edges: m,
            directed_in_paper: directed,
        }
    }

    /// Short name (e.g. `"CAL"`).
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Topology family.
    pub fn topology(self) -> Topology {
        self.info().topology
    }
}

/// How aggressively the synthetic stand-ins are scaled down from the real
/// dataset sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~1/20000 of the paper sizes: hundreds of vertices, for unit tests.
    Tiny,
    /// ~1/1000 of the paper sizes: thousands of vertices, the default for
    /// benchmarks on a laptop.
    Small,
    /// ~1/200 of the paper sizes: tens of thousands of vertices, for longer
    /// benchmark runs.
    Medium,
}

impl Scale {
    /// Divisor applied to the paper's vertex counts.
    pub fn divisor(self) -> usize {
        match self {
            Scale::Tiny => 20_000,
            Scale::Small => 1_000,
            Scale::Medium => 200,
        }
    }

    /// Target vertex count for a dataset at this scale (at least 64).
    pub fn target_vertices(self, info: &DatasetInfo) -> usize {
        (info.paper_vertices / self.divisor()).max(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        assert_eq!(DatasetId::all().len(), 12);
        let cal = DatasetId::CAL.info();
        assert_eq!(cal.paper_vertices, 1_890_815);
        assert_eq!(cal.topology, Topology::Road);
        assert!(!cal.directed_in_paper);
        let lij = DatasetId::LIJ.info();
        assert_eq!(lij.paper_edges, 68_993_773);
        assert!(lij.directed_in_paper);
        assert_eq!(DatasetId::SKIT.name(), "SKIT");
        assert_eq!(DatasetId::USA.topology(), Topology::Road);
    }

    #[test]
    fn all_names_are_unique() {
        let mut names: Vec<&str> = DatasetId::all().iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn scales_order_correctly() {
        let info = DatasetId::YTB.info();
        let tiny = Scale::Tiny.target_vertices(&info);
        let small = Scale::Small.target_vertices(&info);
        let medium = Scale::Medium.target_vertices(&info);
        assert!(tiny < small);
        assert!(small < medium);
        assert!(tiny >= 64);
    }

    #[test]
    fn shared_memory_set_excludes_largest() {
        let set = DatasetId::shared_memory_set();
        assert!(!set.contains(&DatasetId::POK));
        assert!(!set.contains(&DatasetId::LIJ));
        assert_eq!(set.len(), 10);
    }
}
