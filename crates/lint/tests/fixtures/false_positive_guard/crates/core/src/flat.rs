//! False-positive guard: the word unsafe in this doc comment is not code.

/// Mentions `unsafe { ... }` in a doc comment — still not code.
pub fn describe() -> &'static str {
    "strings may say unsafe { } and .unwrap() and Ordering::Relaxed freely"
}

// unsafe in a line comment is not code either.
/* nor is unsafe (or panic!(".."))
   inside a block comment */

pub fn raw() -> &'static str {
    r#"raw string with v[0].unwrap() and unreachable!()"#
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_constructs_are_fine_under_cfg_test() {
        let v = vec![1u32];
        assert_eq!(v[0], 1);
        let _ = v.first().unwrap();
        if v.len() > 1 {
            panic!("impossible");
        }
    }
}
