//! Bad fixture: an unsafe block with no SAFETY comment.

pub fn first_byte(data: &[u8]) -> u8 {
    unsafe { *data.as_ptr() }
}
