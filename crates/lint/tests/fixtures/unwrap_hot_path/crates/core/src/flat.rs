//! Bad fixture: panicking constructs on a hot-path file.

pub fn head(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    v[1]
}
