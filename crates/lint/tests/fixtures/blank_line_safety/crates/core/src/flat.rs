//! Bad fixture: a SAFETY comment separated from its unsafe block by a
//! blank line does not count — the justification must be contiguous.

pub fn first_byte(data: &[u8]) -> u8 {
    // SAFETY: the caller promises data is non-empty.

    unsafe { *data.as_ptr() }
}
