//! Fixture: a hot-path unwrap that the sibling lint.allow exempts.

pub fn head(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
