//! Bad fixture: `Ordering::Relaxed` without an `// ORDERING:` argument.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static HITS: AtomicUsize = AtomicUsize::new(0);

pub fn bump() {
    HITS.fetch_add(1, Ordering::Relaxed);
}
