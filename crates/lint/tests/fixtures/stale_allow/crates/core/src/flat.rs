//! Fixture: clean code, but the sibling lint.allow has a stale entry.

pub fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}
