//! Clean fixture: justified unsafe, justified Relaxed, no panics.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static HITS: AtomicUsize = AtomicUsize::new(0);

/// Reads the first byte of a non-empty buffer.
pub fn first_byte(data: &[u8]) -> Option<u8> {
    if data.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above guarantees index 0 is in bounds.
    let b = unsafe { *data.get_unchecked(0) };
    Some(b)
}

pub fn bump() {
    // ORDERING: advisory counter with no ordering dependencies.
    HITS.fetch_add(1, Ordering::Relaxed);
}
