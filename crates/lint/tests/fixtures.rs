//! Drives the `chl-lint` binary over the fixture corpus in
//! `tests/fixtures/` — each fixture is a miniature workspace root — and
//! over the real workspace, asserting exit codes and `file:line`
//! diagnostics.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_check(root: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chl-lint"))
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("spawn chl-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_fixture_passes() {
    let out = run_check(&fixture("clean"));
    let text = stdout(&out);
    assert!(out.status.success(), "expected success, got:\n{text}");
    assert!(text.contains("chl-lint: OK"), "{text}");
}

#[test]
fn missing_safety_fails_with_file_and_line() {
    let out = run_check(&fixture("missing_safety"));
    let text = stdout(&out);
    assert!(!out.status.success(), "expected failure, got:\n{text}");
    assert!(
        text.contains("crates/core/src/flat.rs:4: [unsafe-audit]"),
        "diagnostic should carry file:line, got:\n{text}"
    );
}

#[test]
fn safety_comment_before_blank_line_does_not_count() {
    let out = run_check(&fixture("blank_line_safety"));
    let text = stdout(&out);
    assert!(!out.status.success(), "expected failure, got:\n{text}");
    assert!(
        text.contains("crates/core/src/flat.rs:7: [unsafe-audit]"),
        "{text}"
    );
}

#[test]
fn unwrap_and_indexing_on_hot_path_fail() {
    let out = run_check(&fixture("unwrap_hot_path"));
    let text = stdout(&out);
    assert!(!out.status.success(), "expected failure, got:\n{text}");
    assert!(
        text.contains("crates/core/src/flat.rs:4: [panic-surface]"),
        "unwrap should be flagged, got:\n{text}"
    );
    assert!(
        text.contains("crates/core/src/flat.rs:8: [panic-surface]"),
        "indexing should be flagged, got:\n{text}"
    );
}

#[test]
fn unjustified_relaxed_fails() {
    let out = run_check(&fixture("unjustified_relaxed"));
    let text = stdout(&out);
    assert!(!out.status.success(), "expected failure, got:\n{text}");
    assert!(
        text.contains("crates/core/src/flat.rs:8: [atomic-ordering]"),
        "{text}"
    );
}

#[test]
fn strings_comments_and_cfg_test_do_not_trip_the_rules() {
    let out = run_check(&fixture("false_positive_guard"));
    let text = stdout(&out);
    assert!(
        out.status.success(),
        "unsafe/unwrap in strings, comments or #[cfg(test)] must not be findings:\n{text}"
    );
}

#[test]
fn allowlisted_finding_is_suppressed() {
    let out = run_check(&fixture("allowlisted"));
    let text = stdout(&out);
    assert!(out.status.success(), "expected success, got:\n{text}");
    assert!(
        text.contains("1 finding(s) suppressed"),
        "suppression should be counted, got:\n{text}"
    );
}

#[test]
fn stale_allow_entry_is_a_finding() {
    let out = run_check(&fixture("stale_allow"));
    let text = stdout(&out);
    assert!(!out.status.success(), "expected failure, got:\n{text}");
    assert!(
        text.contains("exemption matched nothing"),
        "stale entries must be reported, got:\n{text}"
    );
}

/// The real workspace must stay green — the same invocation CI runs.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = run_check(&root);
    let text = stdout(&out);
    assert!(out.status.success(), "workspace lint failed:\n{text}");
}

/// `inventory` lists every unsafe site and none is unjustified.
#[test]
fn inventory_reports_fully_justified_unsafe_surface() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_chl-lint"))
        .args(["inventory", "--root"])
        .arg(&root)
        .output()
        .expect("spawn chl-lint");
    let text = stdout(&out);
    assert!(out.status.success(), "{text}");
    assert!(
        text.contains("0 without justification"),
        "every live unsafe site must carry a SAFETY argument:\n{text}"
    );
}
