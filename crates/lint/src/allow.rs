//! The `lint.allow` exemption file.
//!
//! Format: one exemption per line, four `|`-separated fields —
//!
//! ```text
//! rule | file | needle | reason
//! ```
//!
//! A finding is suppressed when its rule and workspace-relative file match
//! and the offending source line contains `needle` (so exemptions survive
//! line-number churn; one entry may legitimately cover several identical
//! sites in a file). A needle of `*` matches any line of the file for that
//! rule — a deliberate, visible blanket exemption whose reason must carry
//! the argument for the whole file. Blank lines and `#` comments are
//! ignored. Entries that suppress nothing are themselves reported as
//! findings, so the file can never silently rot.

use crate::rules::Finding;

/// One parsed exemption line.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule identifier the entry applies to.
    pub rule: String,
    /// Workspace-relative, `/`-separated file path.
    pub file: String,
    /// Substring of the offending line, or `*` for any line.
    pub needle: String,
    /// Why the exemption is sound (required, surfaced in diagnostics).
    pub reason: String,
    /// 1-based line number inside `lint.allow`.
    pub line_no: u32,
}

/// Parses the allowlist text; malformed lines are hard errors.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('|').map(str::trim).collect();
        if parts.len() != 4 || parts.iter().take(3).any(|p| p.is_empty()) {
            return Err(format!(
                "lint.allow:{line_no}: expected `rule | file | needle | reason`, got: {line}"
            ));
        }
        if parts[3].is_empty() {
            return Err(format!(
                "lint.allow:{line_no}: exemption needs a non-empty reason"
            ));
        }
        entries.push(AllowEntry {
            rule: parts[0].to_string(),
            file: parts[1].to_string(),
            needle: parts[2].to_string(),
            reason: parts[3].to_string(),
            line_no,
        });
    }
    Ok(entries)
}

/// Splits findings into (kept, suppressed-count) and returns the entries
/// that never matched anything.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, usize, Vec<AllowEntry>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for finding in findings {
        let hit = entries.iter().enumerate().find(|(_, e)| {
            e.rule == finding.rule
                && e.file == finding.file
                && (e.needle == "*" || finding.line_text.contains(&e.needle))
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(finding),
        }
    }
    let unused = entries
        .iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_PANIC;

    fn finding(file: &str, line_text: &str) -> Finding {
        Finding {
            rule: RULE_PANIC,
            file: file.to_string(),
            line: 1,
            message: "m".to_string(),
            line_text: line_text.to_string(),
        }
    }

    #[test]
    fn needle_matching_suppresses_and_tracks_usage() {
        let entries = parse(
            "# comment\n\
             panic-surface | a.rs | .unwrap() | startup only\n\
             panic-surface | b.rs | * | whole file argued elsewhere\n\
             atomic-ordering | c.rs | load | never matches\n",
        )
        .expect("parse");
        let findings = vec![
            finding("a.rs", "x.unwrap();"),
            finding("a.rs", "y[3]"),
            finding("b.rs", "anything at all"),
        ];
        let (kept, suppressed, unused) = apply(findings, &entries);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line_text, "y[3]");
        assert_eq!(suppressed, 2);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "atomic-ordering");
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("just three | fields | here\n").is_err());
        assert!(parse("rule | file | needle |\n").is_err());
    }
}
