//! The `chl-lint` binary: `check` (run the three rules + allowlist) and
//! `inventory` (print the workspace unsafe inventory). See the library
//! crate docs and `docs/ARCHITECTURE.md` for rule semantics.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
chl-lint — workspace static analysis for the unsafe/parallel core

USAGE:
    chl-lint check [--root DIR] [--allow FILE]
    chl-lint inventory [--root DIR]

COMMANDS:
    check       Run unsafe-audit, panic-surface and atomic-ordering over
                every .rs file under crates/, shims/ and src/; apply
                lint.allow; exit nonzero on any finding or stale exemption.
    inventory   Print every `unsafe` occurrence (file:line, kind, first
                SAFETY line) so reviews can diff the unsafe surface.

OPTIONS:
    --root DIR     Workspace root (default: nearest ancestor of the current
                   directory containing crates/ or shims/).
    --allow FILE   Allowlist path (default: <root>/lint.allow).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("chl-lint: error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing command\n\n{USAGE}"));
    };
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = Some(PathBuf::from(args.get(i).ok_or("--root needs a value")?));
            }
            "--allow" => {
                i += 1;
                allow = Some(PathBuf::from(args.get(i).ok_or("--allow needs a value")?));
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
        i += 1;
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            chl_lint::find_root(&cwd)
                .ok_or("no workspace root (crates/ or shims/) found above the current directory")?
        }
    };

    match command.as_str() {
        "check" => check(&root, allow.as_deref()),
        "inventory" => inventory(&root),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn check(root: &std::path::Path, allow: Option<&std::path::Path>) -> Result<bool, String> {
    let report = chl_lint::run_check(root, allow)?;
    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.line_text.is_empty() {
            println!("    {}", f.line_text);
        }
    }
    for e in &report.unused_allow {
        println!(
            "lint.allow:{}: [allowlist] exemption matched nothing ({} | {} | {}) — remove it or \
             fix the needle",
            e.line_no, e.rule, e.file, e.needle
        );
    }
    if report.is_clean() {
        println!(
            "chl-lint: OK — {} files scanned, {} finding(s) suppressed by lint.allow",
            report.files_scanned, report.suppressed
        );
        Ok(true)
    } else {
        println!(
            "chl-lint: FAILED — {} finding(s), {} stale exemption(s) across {} files",
            report.findings.len(),
            report.unused_allow.len(),
            report.files_scanned
        );
        Ok(false)
    }
}

fn inventory(root: &std::path::Path) -> Result<bool, String> {
    let sites = chl_lint::run_inventory(root)?;
    let live = sites.iter().filter(|(_, s)| !s.in_test).count();
    for (file, site) in &sites {
        let marker = if site.in_test { " (test)" } else { "" };
        let safety = site.safety.as_deref().unwrap_or("— NO SAFETY COMMENT —");
        println!("{file}:{}: {}{marker}  {safety}", site.line, site.kind);
    }
    println!(
        "chl-lint: {} unsafe site(s), {live} in live code, {} without justification",
        sites.len(),
        sites.iter().filter(|(_, s)| s.safety.is_none()).count()
    );
    Ok(true)
}
