//! The three lint rules, expressed over [`FileScan`] token streams.
//!
//! * **unsafe-audit** — every live (non-test) `unsafe` block / `unsafe fn` /
//!   `unsafe impl` must be immediately preceded by a `// SAFETY:` comment
//!   block (attribute lines in between are allowed, blank lines are not).
//!   `unsafe fn` / `unsafe impl` may alternatively carry a doc comment with a
//!   `# Safety` section, matching the public-API style already used in the
//!   workspace.
//! * **panic-surface** — `.unwrap()`, `.expect(`, `panic!`, `unreachable!`,
//!   `todo!`, `unimplemented!` and `[...]` indexing are forbidden in the
//!   serving hot-path files outside `#[cfg(test)]`; exemptions live in
//!   `lint.allow` with a reason each.
//! * **atomic-ordering** — every live `Ordering::Relaxed` must carry an
//!   `// ORDERING:` justification, either trailing on the statement or in
//!   the comment block immediately above it. Whether a given atomic is
//!   actually cross-thread is undecidable from source, so the rule asks for
//!   the one-line argument unconditionally — a Relaxed access that is not
//!   shared is exactly one sentence to justify.

use crate::lexer::{FileScan, TokKind};

/// Rule identifier: unsafe sites need SAFETY comments.
pub const RULE_UNSAFE: &str = "unsafe-audit";
/// Rule identifier: no panics/indexing on the serving hot path.
pub const RULE_PANIC: &str = "panic-surface";
/// Rule identifier: Relaxed atomics need ORDERING justifications.
pub const RULE_ORDERING: &str = "atomic-ordering";

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Workspace-relative, `/`-separated file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Raw text of the offending source line (used for allowlist needles).
    pub line_text: String,
}

/// One `unsafe` occurrence, for the inventory and the audit rule.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Site kind: `unsafe block`, `unsafe fn`, `unsafe impl`, `unsafe trait`.
    pub kind: &'static str,
    /// First line of the justification (`SAFETY:` text or `# Safety` doc
    /// contract), when one is present.
    pub safety: Option<String>,
    /// The site sits inside `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
}

/// Collects every `unsafe` keyword occurrence in the file.
pub fn unsafe_sites(scan: &FileScan) -> Vec<UnsafeSite> {
    let toks = &scan.tokens;
    let mut out = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let kind = match toks.get(idx + 1) {
            Some(n) if n.kind == TokKind::Ident && n.text == "fn" => "unsafe fn",
            Some(n) if n.kind == TokKind::Ident && n.text == "impl" => "unsafe impl",
            Some(n) if n.kind == TokKind::Ident && n.text == "trait" => "unsafe trait",
            Some(n) if n.kind == TokKind::Punct('{') => "unsafe block",
            _ => "unsafe block",
        };
        out.push(UnsafeSite {
            line: t.line,
            kind,
            safety: safety_comment(scan, t.line as usize, kind),
            in_test: t.in_test,
        });
    }
    out
}

/// Looks for the justification of an unsafe site at `line`: a contiguous
/// comment block directly above (attribute lines may intervene, blank lines
/// may not) containing `SAFETY:`, or — for `unsafe fn` / `unsafe impl` /
/// `unsafe trait` — a doc comment with a `# Safety` section. When the
/// `unsafe` keyword sits on a wrapped continuation line (e.g. `let x =` /
/// `unsafe { ... }`), the comment is searched above the statement's first
/// line.
fn safety_comment(scan: &FileScan, line: usize, kind: &str) -> Option<String> {
    let line = statement_start(scan, line);
    let mut l = line.saturating_sub(1);
    while l >= 1 && scan.is_attr_only(l) && !scan.is_comment_only(l) {
        l -= 1;
    }
    let mut block: Vec<&str> = Vec::new();
    while l >= 1 && scan.is_comment_only(l) {
        block.push(scan.lines[l].comment.as_str());
        l -= 1;
    }
    block.reverse();
    if let Some(text) = block.iter().find(|c| c.contains("SAFETY:")) {
        let after = &text[text.find("SAFETY:").unwrap_or(0)..];
        return Some(after.trim().to_string());
    }
    if kind != "unsafe block" && block.iter().any(|c| c.contains("# Safety")) {
        return Some("# Safety (documented contract)".to_string());
    }
    None
}

/// unsafe-audit: every live unsafe site must carry a justification.
pub fn check_unsafe_audit(scan: &FileScan, file: &str, out: &mut Vec<Finding>) {
    for site in unsafe_sites(scan) {
        if site.in_test || site.safety.is_some() {
            continue;
        }
        out.push(Finding {
            rule: RULE_UNSAFE,
            file: file.to_string(),
            line: site.line,
            message: format!(
                "{} without an immediately preceding `// SAFETY:` comment",
                site.kind
            ),
            line_text: line_text(scan, site.line),
        });
    }
}

/// Keywords that may legitimately precede `[` without it being an index
/// expression (slice types, attribute openers are handled separately).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// panic-surface: `.unwrap()`, `.expect(`, panicking macros, `[...]`
/// indexing — forbidden in hot-path files outside `#[cfg(test)]`.
pub fn check_panic_surface(scan: &FileScan, file: &str, out: &mut Vec<Finding>) {
    let toks = &scan.tokens;
    for idx in 0..toks.len() {
        let t = &toks[idx];
        if t.in_test {
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let prev_dot = idx
                    .checked_sub(1)
                    .is_some_and(|p| toks[p].kind == TokKind::Punct('.'));
                let next_paren = toks.get(idx + 1).map(|n| n.kind) == Some(TokKind::Punct('('));
                if prev_dot && next_paren {
                    out.push(Finding {
                        rule: RULE_PANIC,
                        file: file.to_string(),
                        line: t.line,
                        message: format!("`.{}(...)` on the serving hot path", t.text),
                        line_text: line_text(scan, t.line),
                    });
                }
            }
            TokKind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(idx + 1).map(|n| n.kind) == Some(TokKind::Punct('!')) =>
            {
                out.push(Finding {
                    rule: RULE_PANIC,
                    file: file.to_string(),
                    line: t.line,
                    message: format!("`{}!` on the serving hot path", t.text),
                    line_text: line_text(scan, t.line),
                });
            }
            TokKind::Punct('[') => {
                let Some(p) = idx.checked_sub(1).map(|p| &toks[p]) else {
                    continue;
                };
                let indexish = match p.kind {
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                    _ => false,
                };
                if indexish {
                    out.push(Finding {
                        rule: RULE_PANIC,
                        file: file.to_string(),
                        line: t.line,
                        message: "`[...]` indexing on the serving hot path (can panic on \
                                  out-of-range)"
                            .to_string(),
                        line_text: line_text(scan, t.line),
                    });
                }
            }
            _ => {}
        }
    }
}

/// atomic-ordering: each live `Ordering::Relaxed` needs an `// ORDERING:`
/// justification on the statement or immediately above it.
pub fn check_atomic_ordering(scan: &FileScan, file: &str, out: &mut Vec<Finding>) {
    let toks = &scan.tokens;
    let mut flagged_lines: Vec<u32> = Vec::new();
    for idx in 3..toks.len() {
        let t = &toks[idx];
        if t.in_test || t.kind != TokKind::Ident || t.text != "Relaxed" {
            continue;
        }
        let path_like = toks[idx - 1].kind == TokKind::Punct(':')
            && toks[idx - 2].kind == TokKind::Punct(':')
            && toks[idx - 3].kind == TokKind::Ident
            && toks[idx - 3].text == "Ordering";
        if !path_like || ordering_justified(scan, t.line as usize) {
            continue;
        }
        if flagged_lines.contains(&t.line) {
            continue;
        }
        flagged_lines.push(t.line);
        out.push(Finding {
            rule: RULE_ORDERING,
            file: file.to_string(),
            line: t.line,
            message: "`Ordering::Relaxed` without an `// ORDERING:` justification".to_string(),
            line_text: line_text(scan, t.line),
        });
    }
}

/// A Relaxed use at `line` is justified when an `ORDERING:` comment trails
/// any line of the enclosing statement or sits in the comment block directly
/// above the statement's first line.
fn ordering_justified(scan: &FileScan, line: usize) -> bool {
    let start = statement_start(scan, line);
    for l in start..=line {
        if scan
            .lines
            .get(l)
            .is_some_and(|i| i.comment.contains("ORDERING:"))
        {
            return true;
        }
    }
    let mut l = start.saturating_sub(1);
    while l >= 1 && scan.is_attr_only(l) && !scan.is_comment_only(l) {
        l -= 1;
    }
    while l >= 1 && scan.is_comment_only(l) {
        if scan.lines[l].comment.contains("ORDERING:") {
            return true;
        }
        l -= 1;
    }
    false
}

/// Walks up from `line` to the first line of the enclosing statement:
/// predecessors that are code and do not end a statement or block belong to
/// the same (rustfmt-wrapped) statement.
fn statement_start(scan: &FileScan, line: usize) -> usize {
    let mut start = line;
    while start > 1 {
        let p = start - 1;
        let info = match scan.lines.get(p) {
            Some(info) => info,
            None => break,
        };
        if !info.code || info.attr {
            break;
        }
        let text = scan.code_text(p).trim_end();
        if text.is_empty() || text.ends_with(';') || text.ends_with('{') || text.ends_with('}') {
            break;
        }
        start = p;
    }
    start
}

fn line_text(scan: &FileScan, line: u32) -> String {
    scan.raw_lines
        .get(line as usize)
        .map(|s| s.trim().to_string())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run_all(src: &str) -> Vec<Finding> {
        let scan = scan(src);
        let mut out = Vec::new();
        check_unsafe_audit(&scan, "f.rs", &mut out);
        check_panic_surface(&scan, "f.rs", &mut out);
        check_atomic_ordering(&scan, "f.rs", &mut out);
        out
    }

    #[test]
    fn commented_unsafe_block_passes() {
        let src = "fn f() {\n    // SAFETY: bounds were checked above.\n    unsafe { g() }\n}\n";
        assert!(run_all(src).iter().all(|f| f.rule != RULE_UNSAFE));
    }

    #[test]
    fn uncommented_unsafe_block_fails() {
        let src = "fn f() {\n    unsafe { g() }\n}\n";
        let findings = run_all(src);
        assert!(findings
            .iter()
            .any(|f| f.rule == RULE_UNSAFE && f.line == 2));
    }

    #[test]
    fn blank_line_breaks_the_safety_block() {
        let src = "fn f() {\n    // SAFETY: stale.\n\n    unsafe { g() }\n}\n";
        let findings = run_all(src);
        assert!(findings
            .iter()
            .any(|f| f.rule == RULE_UNSAFE && f.line == 4));
    }

    #[test]
    fn doc_safety_section_covers_unsafe_fn() {
        let src = "/// Does things.\n///\n/// # Safety\n///\n/// Caller checks x.\npub unsafe fn f() {}\n";
        assert!(run_all(src).iter().all(|f| f.rule != RULE_UNSAFE));
    }

    #[test]
    fn attribute_between_comment_and_unsafe_is_fine() {
        let src = "// SAFETY: immutable mapping.\n#[cfg(unix)]\nunsafe impl Send for M {}\n";
        assert!(run_all(src).iter().all(|f| f.rule != RULE_UNSAFE));
    }

    #[test]
    fn panic_surface_catches_the_panicking_family() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n\
                   let a = v.get(i).unwrap();\n\
                   let b: u32 = \"7\".parse().expect(\"num\");\n\
                   if i > 9 { panic!(\"big\"); }\n\
                   if i > 8 { unreachable!(); }\n\
                   a + b + v[i]\n}\n";
        let findings = run_all(src);
        let panics: Vec<u32> = findings
            .iter()
            .filter(|f| f.rule == RULE_PANIC)
            .map(|f| f.line)
            .collect();
        assert_eq!(panics, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn non_index_bracket_positions_do_not_fire() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\n\
                   fn f(x: &[u8], s: &S) -> Vec<u8> { let _ = &s.a; vec![0, x.len() as u8] }\n";
        assert!(run_all(src).iter().all(|f| f.rule != RULE_PANIC));
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).min(x.unwrap_or_else(|| 1)) }\n";
        assert!(run_all(src).iter().all(|f| f.rule != RULE_PANIC));
    }

    #[test]
    fn relaxed_needs_ordering_comment() {
        let src = "fn f(a: &A) {\n    a.x.store(1, Ordering::Relaxed);\n}\n";
        let findings = run_all(src);
        assert!(findings
            .iter()
            .any(|f| f.rule == RULE_ORDERING && f.line == 2));
    }

    #[test]
    fn trailing_and_preceding_ordering_comments_both_work() {
        let src = "fn f(a: &A) {\n\
                   a.x.store(1, Ordering::Relaxed); // ORDERING: advisory flag.\n\
                   // ORDERING: monotonic counter, no ordering needed.\n\
                   a.y.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(run_all(src).iter().all(|f| f.rule != RULE_ORDERING));
    }

    #[test]
    fn ordering_comment_covers_wrapped_method_chains() {
        let src = "fn f(a: &A) {\n\
                   // ORDERING: counter only.\n\
                   a.broadcast_bytes\n\
                       .fetch_add(n, Ordering::Relaxed);\n}\n";
        assert!(run_all(src).iter().all(|f| f.rule != RULE_ORDERING));
    }

    #[test]
    fn test_code_is_exempt_from_all_rules() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn t(v: &[u32]) { let _ = unsafe { g() }; v.iter().next().unwrap();\n\
                   x.store(1, Ordering::Relaxed); }\n}\n";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn unsafe_inside_strings_and_comments_is_invisible() {
        let src = "fn f() -> &'static str {\n\
                   // this mentions unsafe { } in prose\n\
                   \"unsafe { code }\"\n}\n";
        assert!(run_all(src).is_empty());
        let sites = unsafe_sites(&scan(src));
        assert!(sites.is_empty());
    }
}
