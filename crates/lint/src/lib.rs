//! `chl-lint`: the workspace's own static-analysis pass, plus the
//! deterministic-scheduler race harness ([`sched`]).
//!
//! The lint walks every `.rs` file under `crates/`, `shims/` and `src/`
//! with a hand-written lexer ([`lexer`]) and enforces three rules
//! ([`rules`]): `unsafe-audit`, `panic-surface` and `atomic-ordering`.
//! Exemptions live in a checked-in `lint.allow` file ([`allow`]); unused
//! exemptions are themselves findings. The crate has **no dependencies**,
//! so any member of the workspace — including the shims the lint watches —
//! can use it as a dev-dependency without cycles.
//!
//! See `docs/ARCHITECTURE.md` ("Safety & concurrency invariants") for the
//! contracts these rules pin down.

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod sched;

use std::path::{Path, PathBuf};

use allow::AllowEntry;
use rules::{Finding, UnsafeSite};

/// Files (exact) and directories (trailing `/`) where the panic-surface
/// rule applies: the library query/serving hot paths.
pub const HOT_PATHS: &[&str] = &[
    "crates/core/src/flat.rs",
    "crates/core/src/kernel.rs",
    "crates/core/src/mapped.rs",
    "crates/core/src/labels.rs",
    "crates/core/src/persist.rs",
    "crates/serve/src/",
    "crates/cli/src/route.rs",
    "shims/rayon/src/",
    "shims/memmap2/src/",
];

/// Directories under the root that are scanned for `.rs` files.
const SCAN_ROOTS: &[&str] = &["crates", "shims", "src"];

/// Directory names never descended into: build output and the lint's own
/// corpus of intentionally-bad fixture files.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Everything `check` produced for one workspace.
#[derive(Debug)]
pub struct CheckReport {
    /// Findings that survived the allowlist, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by `lint.allow`.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (also a failure).
    pub unused_allow: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl CheckReport {
    /// `true` when the workspace is clean (no findings, no stale allows).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_allow.is_empty()
    }
}

/// `true` when the panic-surface rule applies to this relative path.
pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATHS.iter().any(|h| {
        if let Some(dir) = h.strip_suffix('/') {
            rel.starts_with(dir) && rel.as_bytes().get(dir.len()) == Some(&b'/')
        } else {
            rel == *h
        }
    })
}

/// `true` when the path is test-only code by location (`tests/` or
/// `benches/` directory); in-file `#[cfg(test)]` is handled by the lexer.
fn is_test_context(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

/// Collects every `.rs` file under the scan roots, sorted for determinism.
/// Paths are returned workspace-relative with `/` separators.
pub fn collect_files(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Runs all three rules over one file's source, honoring hot-path and
/// test-context classification.
pub fn check_source(rel: &str, src: &str) -> Vec<Finding> {
    let scan = lexer::scan(src);
    let test_context = is_test_context(rel);
    let mut findings = Vec::new();
    if !test_context {
        rules::check_unsafe_audit(&scan, rel, &mut findings);
        rules::check_atomic_ordering(&scan, rel, &mut findings);
        if is_hot_path(rel) {
            rules::check_panic_surface(&scan, rel, &mut findings);
        }
    }
    findings
}

/// Runs the full check over a workspace root, applying `lint.allow` when
/// present (or an explicit allowlist path).
pub fn run_check(root: &Path, allow_path: Option<&Path>) -> Result<CheckReport, String> {
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let src = read(root, rel)?;
        findings.extend(check_source(rel, &src));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let default_allow = root.join("lint.allow");
    let allow_file = allow_path.map(Path::to_path_buf).unwrap_or(default_allow);
    let entries = if allow_file.is_file() {
        let text = std::fs::read_to_string(&allow_file)
            .map_err(|e| format!("reading {}: {e}", allow_file.display()))?;
        allow::parse(&text)?
    } else {
        Vec::new()
    };
    let (kept, suppressed, unused_allow) = allow::apply(findings, &entries);

    Ok(CheckReport {
        findings: kept,
        suppressed,
        unused_allow,
        files_scanned: files.len(),
    })
}

/// Builds the workspace-wide unsafe inventory: every `unsafe` occurrence
/// (test code included, marked as such) with its justification's first line.
pub fn run_inventory(root: &Path) -> Result<Vec<(String, UnsafeSite)>, String> {
    let mut out = Vec::new();
    for rel in collect_files(root)? {
        let src = read(root, &rel)?;
        let scan = lexer::scan(&src);
        for site in rules::unsafe_sites(&scan) {
            out.push((rel.clone(), site));
        }
    }
    Ok(out)
}

fn read(root: &Path, rel: &str) -> Result<String, String> {
    let path = root.join(rel);
    std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))
}

/// Finds the workspace root: the nearest ancestor of `start` (inclusive)
/// containing a `crates` or `shims` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("crates").is_dir() || d.join("shims").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_path_matching_is_exact_for_files_and_prefix_for_dirs() {
        assert!(is_hot_path("crates/core/src/flat.rs"));
        assert!(is_hot_path("shims/rayon/src/lib.rs"));
        assert!(is_hot_path("crates/serve/src/server.rs"));
        assert!(!is_hot_path("crates/core/src/gll.rs"));
        assert!(!is_hot_path("crates/serve/tests/protocol.rs"));
        assert!(!is_hot_path("shims/rayon/tests/interleavings.rs"));
        assert!(!is_hot_path("shims/rayon_extra/src/lib.rs"));
    }

    #[test]
    fn test_context_files_skip_live_rules() {
        let src = "fn f() { unsafe { g() } }\n";
        assert!(!check_source("crates/core/src/extra.rs", src).is_empty());
        assert!(check_source("crates/core/tests/extra.rs", src).is_empty());
        assert!(check_source("crates/bench/benches/extra.rs", src).is_empty());
    }

    #[test]
    fn panic_surface_only_fires_on_hot_paths() {
        let src = "fn f(v: &[u32]) -> u32 { v.iter().next().copied().unwrap() }\n";
        assert!(check_source("crates/core/src/gll.rs", src).is_empty());
        assert_eq!(check_source("crates/core/src/flat.rs", src).len(), 1);
    }
}
