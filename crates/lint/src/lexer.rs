//! A small hand-written Rust lexer — just enough structure for the lint
//! rules in this crate, with no external parser dependency.
//!
//! The scanner is string/char/comment-aware: `unsafe` inside a string
//! literal or a comment never becomes an identifier token, raw strings
//! (`r#"..."#`) and nested block comments are handled, and lifetimes
//! (`'static`) are distinguished from char literals (`'a'`). It does **not**
//! build an AST; rules work over the token stream plus per-line metadata
//! (comment text, attribute spans), which is exactly the granularity the
//! three rules need.
//!
//! `#[cfg(test)]`- and `#[test]`-gated items are detected with a
//! brace-matching pass and their tokens are flagged `in_test`, so rules can
//! exclude test code without evaluating `cfg` for real. The heuristic
//! treats an attribute as test-gating when it mentions the identifier
//! `test` and not `not` (so `#[cfg(not(test))]` stays live code).

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (text carried on the token).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Single punctuation character.
    Punct(char),
    /// String, char, byte or numeric literal (contents not preserved).
    Literal,
}

/// One token with its source line and test-context flag.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Identifier text; empty for non-identifier tokens.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// `true` when the token is inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// Per-line metadata derived during scanning.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// The line carries at least one non-comment token.
    pub code: bool,
    /// The line is (part of) an outer attribute like `#[inline]`.
    pub attr: bool,
    /// Concatenated text of comments on this line (empty when none).
    pub comment: String,
}

/// The full scan of one source file.
#[derive(Debug)]
pub struct FileScan {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Per-line info, 1-indexed (`lines[0]` is unused).
    pub lines: Vec<LineInfo>,
    /// Raw source lines, 1-indexed (`raw_lines[0]` is empty).
    pub raw_lines: Vec<String>,
}

impl FileScan {
    /// `true` when the line holds only comment text (no code, no attribute).
    pub fn is_comment_only(&self, line: usize) -> bool {
        self.lines
            .get(line)
            .is_some_and(|l| !l.code && !l.comment.is_empty())
    }

    /// `true` when the line is attribute-only (e.g. `#[cfg(unix)]`).
    pub fn is_attr_only(&self, line: usize) -> bool {
        self.lines.get(line).is_some_and(|l| l.attr)
    }

    /// Raw text of a line with any trailing `//` comment stripped.
    pub fn code_text(&self, line: usize) -> &str {
        let raw = self.raw_lines.get(line).map(String::as_str).unwrap_or("");
        if self.lines.get(line).is_some_and(|l| !l.comment.is_empty()) {
            if let Some(pos) = raw.find("//") {
                return &raw[..pos];
            }
        }
        raw
    }
}

/// Scans `src` into tokens and per-line metadata.
pub fn scan(src: &str) -> FileScan {
    let raw_lines: Vec<String> = std::iter::once(String::new())
        .chain(src.lines().map(str::to_string))
        .collect();
    let mut lines = vec![LineInfo::default(); raw_lines.len().max(2)];
    let chars: Vec<char> = src.chars().collect();
    let mut tokens: Vec<Token> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    fn add_comment(lines: &mut [LineInfo], line: u32, text: &str) {
        if let Some(info) = lines.get_mut(line as usize) {
            if !info.comment.is_empty() {
                info.comment.push(' ');
            }
            info.comment.push_str(text.trim());
        }
    }

    fn mark_code(lines: &mut [LineInfo], line: u32) {
        if let Some(info) = lines.get_mut(line as usize) {
            info.code = true;
        }
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                add_comment(&mut lines, line, &text);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                let mut depth = 1usize;
                let mut buf = String::new();
                while i < chars.len() && depth > 0 {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                        continue;
                    }
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\n' {
                        add_comment(&mut lines, line, &buf);
                        buf.clear();
                        line += 1;
                    } else {
                        buf.push(chars[i]);
                    }
                    i += 1;
                }
                add_comment(&mut lines, line, &buf);
            }
            '"' => {
                let start_line = line;
                i = skip_string(&chars, i, &mut line);
                for l in start_line..=line {
                    mark_code(&mut lines, l);
                }
                tokens.push(token(TokKind::Literal, start_line));
            }
            '\'' => {
                let next = chars.get(i + 1).copied();
                let is_lifetime = matches!(next, Some(n) if n == '_' || n.is_alphabetic())
                    && chars.get(i + 2) != Some(&'\'');
                mark_code(&mut lines, line);
                if is_lifetime {
                    i += 2;
                    while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                        i += 1;
                    }
                    tokens.push(token(TokKind::Lifetime, line));
                } else {
                    i += 1;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                // Malformed source; tolerate and resync.
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    tokens.push(token(TokKind::Literal, line));
                }
            }
            c if c == '_' || c.is_alphabetic() => {
                let start = i;
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                mark_code(&mut lines, line);
                let raw_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
                if raw_prefix && matches!(chars.get(i), Some('"') | Some('#')) {
                    let start_line = line;
                    if chars.get(i) == Some(&'#') {
                        i = skip_raw_string(&chars, i, &mut line);
                    } else {
                        i = skip_string(&chars, i, &mut line);
                    }
                    for l in start_line..=line {
                        mark_code(&mut lines, l);
                    }
                    tokens.push(token(TokKind::Literal, start_line));
                } else {
                    tokens.push(Token {
                        kind: TokKind::Ident,
                        text,
                        line,
                        in_test: false,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                mark_code(&mut lines, line);
                tokens.push(token(TokKind::Literal, line));
            }
            _ => {
                mark_code(&mut lines, line);
                tokens.push(token(TokKind::Punct(c), line));
                i += 1;
            }
        }
    }

    mark_attrs_and_tests(&mut tokens, &mut lines);

    FileScan {
        tokens,
        lines,
        raw_lines,
    }
}

fn token(kind: TokKind, line: u32) -> Token {
    Token {
        kind,
        text: String::new(),
        line,
        in_test: false,
    }
}

/// Skips a `"..."` literal starting at the opening quote; returns the index
/// just past the closing quote and updates `line` across embedded newlines.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(chars[i], '"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // An escaped newline (string continuation) still advances
                // the line counter.
                if chars.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string `#"..."#` (any number of hashes) starting at the first
/// `#`; returns the index just past the closing delimiter.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i;
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
        } else if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Marks attribute line spans and flags tokens of `#[cfg(test)]`/`#[test]`
/// items as `in_test`.
fn mark_attrs_and_tests(tokens: &mut [Token], lines: &mut [LineInfo]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = tokens.get(j).map(|t| t.kind) == Some(TokKind::Punct('!'));
        if inner {
            j += 1;
        }
        if tokens.get(j).map(|t| t.kind) != Some(TokKind::Punct('[')) {
            i += 1;
            continue;
        }
        // Find the matching `]` of the attribute.
        let mut depth = 0usize;
        let mut k = j;
        let mut has_test = false;
        let mut has_not = false;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident => {
                    if tokens[k].text == "test" {
                        has_test = true;
                    } else if tokens[k].text == "not" {
                        has_not = true;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let end_tok = k.min(tokens.len() - 1);
        for l in tokens[i].line..=tokens[end_tok].line {
            if let Some(info) = lines.get_mut(l as usize) {
                info.attr = true;
            }
        }
        if has_test && !has_not && !inner {
            let item_end = item_end(tokens, end_tok + 1);
            for t in tokens[i..item_end].iter_mut() {
                t.in_test = true;
            }
            i = item_end;
        } else {
            i = end_tok + 1;
        }
    }
}

/// Returns the exclusive token index where the item starting at `from` ends:
/// either at the `;` of a braceless item or at the `}` closing its body.
/// Leading further attributes are absorbed into the item.
fn item_end(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0usize;
    let mut in_body = false;
    let mut k = from;
    while k < tokens.len() {
        match tokens[k].kind {
            TokKind::Punct('{') => {
                if depth == 0 {
                    in_body = true;
                }
                depth += 1;
            }
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth = depth.saturating_sub(1),
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if in_body && depth == 0 {
                    return k + 1;
                }
            }
            TokKind::Punct(';') if depth == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_hide_keywords() {
        let scan = scan(
            r##"
let a = "unsafe { }"; // unsafe in comment
let b = r#"unsafe"#;
/* unsafe block comment */
let c = 'u';
"##,
        );
        assert!(!scan
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let scan = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = scan
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let literals = scan
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn cfg_test_items_are_flagged() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn also_live() {}\n";
        let scan = scan(src);
        let unwraps: Vec<bool> = scan
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let live = scan
            .tokens
            .iter()
            .find(|t| t.text == "also_live")
            .expect("token");
        assert!(!live.in_test);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn guard() { x.unwrap(); }\n";
        let scan = scan(src);
        let t = scan
            .tokens
            .iter()
            .find(|t| t.text == "unwrap")
            .expect("tok");
        assert!(!t.in_test);
    }

    #[test]
    fn line_info_classifies_comments_and_attrs() {
        let src = "// SAFETY: fine\n#[inline]\nfn f() {}\n";
        let scan = scan(src);
        assert!(scan.is_comment_only(1));
        assert!(scan.lines[1].comment.contains("SAFETY:"));
        assert!(scan.is_attr_only(2));
        assert!(scan.lines[3].code);
    }
}
