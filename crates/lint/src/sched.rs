//! A deterministic-scheduler exploration harness, loom-style but
//! hand-rolled: model a small concurrent algorithm as a [`World`] state
//! machine and the explorer drives it through **every** interleaving of its
//! virtual threads by depth-first search with state cloning.
//!
//! Each `step(tid)` must model one *atomic* action of thread `tid` — one
//! atomic load, store or read-modify-write, or one private-state
//! transition. The explorer then enumerates all schedules (sequentially
//! consistent interleavings) of those atomic actions. That is exactly the
//! right tool for the races this workspace cares about — program-order
//! races such as "flag published before the value it guards" — which are
//! observable under sequential consistency already. Weak-memory
//! reorderings (visible only under relaxed hardware models) are *not*
//! modeled; the rayon shim's single-word protocols are chosen so they do
//! not depend on any (see `shims/rayon/tests/interleavings.rs`).
//!
//! Worlds are plain `Clone` structs, so exploring is allocation-cheap and
//! fully deterministic: a reported schedule (a `Vec` of thread ids) replays
//! a failure exactly.

/// A model of a concurrent algorithm under exploration.
pub trait World: Clone {
    /// Number of virtual threads in the model.
    fn thread_count(&self) -> usize;
    /// `true` while thread `tid` still has an atomic action to run.
    fn is_runnable(&self, tid: usize) -> bool;
    /// Runs exactly one atomic action of thread `tid`.
    ///
    /// Only called when `is_runnable(tid)` is true.
    fn step(&mut self, tid: usize);
}

/// Result of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Number of complete schedules (leaves) visited.
    pub schedules: usize,
    /// `true` when the schedule cap stopped the search early — an
    /// exhaustiveness assertion should require this to be `false`.
    pub truncated: bool,
}

/// Hard cap on schedules so a mis-sized model fails loudly instead of
/// hanging the test suite. 3 threads × a handful of steps each stays far
/// below this.
pub const MAX_SCHEDULES: usize = 2_000_000;

/// Explores every interleaving of `initial`, invoking `check` on each final
/// state together with the schedule (sequence of thread ids) that produced
/// it. Panics in `check` (assertions) abort the search with the failing
/// schedule visible in the panic message's context.
pub fn explore<W: World>(initial: &W, check: &mut dyn FnMut(&W, &[usize])) -> Exploration {
    let mut result = Exploration {
        schedules: 0,
        truncated: false,
    };
    let mut schedule = Vec::new();
    dfs(initial, &mut schedule, check, &mut result);
    result
}

fn dfs<W: World>(
    world: &W,
    schedule: &mut Vec<usize>,
    check: &mut dyn FnMut(&W, &[usize]),
    result: &mut Exploration,
) {
    if result.truncated {
        return;
    }
    let mut any_ran = false;
    for tid in 0..world.thread_count() {
        if !world.is_runnable(tid) {
            continue;
        }
        any_ran = true;
        let mut next = world.clone();
        next.step(tid);
        schedule.push(tid);
        dfs(&next, schedule, check, result);
        schedule.pop();
    }
    if !any_ran {
        result.schedules += 1;
        if result.schedules >= MAX_SCHEDULES {
            result.truncated = true;
        }
        check(world, schedule);
    }
}

/// Convenience: explores all interleavings and returns the first schedule
/// whose final state satisfies `bad`, or `None` when no interleaving can
/// reach a bad state. Use a `Some` assertion to prove the harness *finds* a
/// known bug, and a `None` assertion to prove a fix closes it.
pub fn find_violation<W: World>(initial: &W, bad: impl Fn(&W) -> bool) -> Option<Vec<usize>> {
    let mut found: Option<Vec<usize>> = None;
    explore(initial, &mut |world, schedule| {
        if found.is_none() && bad(world) {
            found = Some(schedule.to_vec());
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter. In `atomic` mode the
    /// increment is one fetch_add step; otherwise it is a separate read and
    /// write, which allows the classic lost update.
    #[derive(Clone)]
    struct Counter {
        value: u32,
        atomic: bool,
        // Per-thread program counter: 0 = before read, 1 = holds `loaded`
        // and still has to write, 2 = done.
        pc: [u8; 2],
        loaded: [u32; 2],
    }

    impl Counter {
        fn new(atomic: bool) -> Self {
            Counter {
                value: 0,
                atomic,
                pc: [0; 2],
                loaded: [0; 2],
            }
        }
    }

    impl World for Counter {
        fn thread_count(&self) -> usize {
            2
        }

        fn is_runnable(&self, tid: usize) -> bool {
            self.pc[tid] != 2
        }

        fn step(&mut self, tid: usize) {
            if self.atomic {
                self.value += 1;
                self.pc[tid] = 2;
                return;
            }
            match self.pc[tid] {
                0 => {
                    self.loaded[tid] = self.value;
                    self.pc[tid] = 1;
                }
                _ => {
                    self.value = self.loaded[tid] + 1;
                    self.pc[tid] = 2;
                }
            }
        }
    }

    #[test]
    fn explorer_finds_the_lost_update() {
        let schedule = find_violation(&Counter::new(false), |w| w.value != 2);
        let schedule = schedule.expect("non-atomic increment must lose an update somewhere");
        // Replay the reported schedule and confirm it reproduces the bug.
        let mut world = Counter::new(false);
        for &tid in &schedule {
            world.step(tid);
        }
        assert_ne!(world.value, 2);
    }

    #[test]
    fn explorer_proves_the_atomic_version_correct() {
        assert_eq!(find_violation(&Counter::new(true), |w| w.value != 2), None);
    }

    #[test]
    fn exploration_is_exhaustive_and_counts_schedules() {
        // Two threads with two steps each: C(4,2) = 6 interleavings.
        let result = explore(&Counter::new(false), &mut |_, _| {});
        assert_eq!(result.schedules, 6);
        assert!(!result.truncated);
        // One step each: C(2,1) = 2.
        let result = explore(&Counter::new(true), &mut |_, _| {});
        assert_eq!(result.schedules, 2);
        assert!(!result.truncated);
    }
}
