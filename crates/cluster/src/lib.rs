//! # chl-cluster
//!
//! A simulated distributed-memory cluster, the substrate on which the
//! distributed labeling algorithms (`chl-distributed`) and query modes
//! (`chl-query`) run.
//!
//! The paper evaluates on a 64-node MPI cluster. This workspace has no MPI
//! and no cluster, so the substitution (documented in DESIGN.md §4) is an
//! **in-process simulation** that preserves the properties the paper's claims
//! rest on:
//!
//! * every simulated node owns only its partition of the labeling — nothing
//!   is shared behind its back;
//! * all cross-node data movement goes through explicit communication
//!   primitives ([`comm::CommTracker`]) that count bytes and messages exactly
//!   as `MPI_Bcast` / `MPI_Allreduce` / `MPI_Send` would carry them;
//! * per-node compute time is measured per superstep, and a simple α-β
//!   [`spec::NetworkModel`] converts (compute, traffic) into a modeled
//!   cluster execution time used for the strong-scaling figures, alongside
//!   the measured wall time.
//!
//! The communication-avoidance argument for PLaNT, the memory-partitioning
//! argument for DGLL/Hybrid and the label-explosion argument against
//! DparaPLL are all *structural* — they survive the substitution intact.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod comm;
pub mod metrics;
pub mod partition;
pub mod spec;

pub use cluster::{NodeHandle, SimulatedCluster};
pub use comm::{CommTracker, CommVolume};
pub use metrics::{RunMetrics, SuperstepMetrics};
pub use partition::{SuperstepSchedule, TaskPartition};
pub use spec::{ClusterSpec, NetworkModel};
