//! Communication accounting.
//!
//! Every byte the distributed algorithms move between simulated nodes is
//! recorded here. The totals feed the cost model (modeled superstep time) and
//! the communication-volume comparisons that underpin the paper's argument
//! for PLaNT (zero label traffic) over DGLL / DparaPLL (label broadcast every
//! superstep).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A snapshot of accumulated communication volumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommVolume {
    /// Bytes moved by broadcasts (payload size × one, not × receivers —
    /// matching how the paper reports "data broadcast").
    pub broadcast_bytes: u64,
    /// Bytes moved by point-to-point messages.
    pub p2p_bytes: u64,
    /// Bytes reduced by all-reduce operations.
    pub allreduce_bytes: u64,
    /// Number of broadcast operations.
    pub broadcasts: u64,
    /// Number of point-to-point messages.
    pub p2p_messages: u64,
    /// Number of all-reduce operations.
    pub allreduces: u64,
}

impl CommVolume {
    /// Total payload bytes across all primitive kinds.
    pub fn total_bytes(&self) -> u64 {
        self.broadcast_bytes + self.p2p_bytes + self.allreduce_bytes
    }

    /// Total number of communication operations.
    pub fn total_operations(&self) -> u64 {
        self.broadcasts + self.p2p_messages + self.allreduces
    }

    /// Component-wise sum.
    pub fn combined(&self, other: &CommVolume) -> CommVolume {
        CommVolume {
            broadcast_bytes: self.broadcast_bytes + other.broadcast_bytes,
            p2p_bytes: self.p2p_bytes + other.p2p_bytes,
            allreduce_bytes: self.allreduce_bytes + other.allreduce_bytes,
            broadcasts: self.broadcasts + other.broadcasts,
            p2p_messages: self.p2p_messages + other.p2p_messages,
            allreduces: self.allreduces + other.allreduces,
        }
    }
}

/// Thread-safe accumulator for communication volumes; shared by all simulated
/// nodes of one run.
#[derive(Debug, Default)]
pub struct CommTracker {
    broadcast_bytes: AtomicU64,
    p2p_bytes: AtomicU64,
    allreduce_bytes: AtomicU64,
    broadcasts: AtomicU64,
    p2p_messages: AtomicU64,
    allreduces: AtomicU64,
}

impl CommTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a broadcast of `bytes` of payload.
    pub fn record_broadcast(&self, bytes: usize) {
        bump(&self.broadcast_bytes, bytes as u64);
        bump(&self.broadcasts, 1);
    }

    /// Records a point-to-point message of `bytes`.
    pub fn record_p2p(&self, bytes: usize) {
        bump(&self.p2p_bytes, bytes as u64);
        bump(&self.p2p_messages, 1);
    }

    /// Records an all-reduce of `bytes` of payload.
    pub fn record_allreduce(&self, bytes: usize) {
        bump(&self.allreduce_bytes, bytes as u64);
        bump(&self.allreduces, 1);
    }

    /// Reads the accumulated totals.
    pub fn snapshot(&self) -> CommVolume {
        CommVolume {
            broadcast_bytes: read(&self.broadcast_bytes),
            p2p_bytes: read(&self.p2p_bytes),
            allreduce_bytes: read(&self.allreduce_bytes),
            broadcasts: read(&self.broadcasts),
            p2p_messages: read(&self.p2p_messages),
            allreduces: read(&self.allreduces),
        }
    }

    /// Resets all counters to zero and returns what they held.
    pub fn take(&self) -> CommVolume {
        CommVolume {
            broadcast_bytes: drain(&self.broadcast_bytes),
            p2p_bytes: drain(&self.p2p_bytes),
            allreduce_bytes: drain(&self.allreduce_bytes),
            broadcasts: drain(&self.broadcasts),
            p2p_messages: drain(&self.p2p_messages),
            allreduces: drain(&self.allreduces),
        }
    }
}

// The tracker's fields are independent monotonic statistics totals with no
// cross-field invariant, so all three accessors below use Relaxed: the
// counters publish no other memory, and slightly stale or mutually skewed
// snapshots are acceptable by design.

fn bump(counter: &AtomicU64, delta: u64) {
    // ORDERING: monotonic statistics counter; the RMW's atomicity alone
    // guarantees no lost increment, and nothing orders against it.
    counter.fetch_add(delta, Ordering::Relaxed);
}

fn read(counter: &AtomicU64) -> u64 {
    // ORDERING: statistics snapshot; cross-counter skew is acceptable.
    counter.load(Ordering::Relaxed)
}

fn drain(counter: &AtomicU64) -> u64 {
    // ORDERING: statistics reset; the swap's atomicity guarantees no lost
    // increment, and cross-counter skew is acceptable.
    counter.swap(0, Ordering::Relaxed)
}

/// Size in bytes of one serialized hub label on the wire: vertex id (4),
/// hub rank position (4) and distance (8). Used consistently by the
/// distributed algorithms when they account label exchanges.
pub const LABEL_WIRE_BYTES: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates_and_snapshots() {
        let t = CommTracker::new();
        t.record_broadcast(100);
        t.record_broadcast(50);
        t.record_p2p(8);
        t.record_allreduce(4);
        let v = t.snapshot();
        assert_eq!(v.broadcast_bytes, 150);
        assert_eq!(v.broadcasts, 2);
        assert_eq!(v.p2p_bytes, 8);
        assert_eq!(v.allreduce_bytes, 4);
        assert_eq!(v.total_bytes(), 162);
        assert_eq!(v.total_operations(), 4);
    }

    #[test]
    fn take_resets_counters() {
        let t = CommTracker::new();
        t.record_p2p(10);
        let first = t.take();
        assert_eq!(first.p2p_bytes, 10);
        let second = t.snapshot();
        assert_eq!(second.p2p_bytes, 0);
        assert_eq!(second.total_operations(), 0);
    }

    #[test]
    fn combined_adds_component_wise() {
        let a = CommVolume {
            broadcast_bytes: 5,
            p2p_messages: 2,
            ..Default::default()
        };
        let b = CommVolume {
            broadcast_bytes: 7,
            allreduces: 1,
            ..Default::default()
        };
        let c = a.combined(&b);
        assert_eq!(c.broadcast_bytes, 12);
        assert_eq!(c.p2p_messages, 2);
        assert_eq!(c.allreduces, 1);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = CommTracker::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.record_broadcast(3);
                    }
                });
            }
        });
        assert_eq!(t.snapshot().broadcast_bytes, 12_000);
        assert_eq!(t.snapshot().broadcasts, 4_000);
    }
}
