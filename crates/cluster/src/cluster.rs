//! Execution of per-node work on the simulated cluster.
//!
//! A "round" hands every simulated node a closure to run; nodes execute
//! concurrently on their own OS threads (one thread per node — the
//! intra-node thread pool is the node closure's own business) and the round
//! returns each node's result plus its measured busy time. This mirrors the
//! bulk-synchronous structure of the distributed algorithms in the paper:
//! compute locally, then synchronize and exchange.

use std::time::{Duration, Instant};

use crate::comm::CommTracker;
use crate::spec::ClusterSpec;

/// Identity and environment of one simulated node inside a round.
#[derive(Debug, Clone, Copy)]
pub struct NodeHandle {
    /// This node's id in `0..spec.nodes`.
    pub node_id: usize,
    /// Total number of nodes.
    pub nodes: usize,
    /// Worker threads this node may use for its local computation.
    pub threads: usize,
}

/// The simulated cluster: a spec plus a shared communication tracker.
#[derive(Debug)]
pub struct SimulatedCluster {
    spec: ClusterSpec,
    comm: CommTracker,
}

impl SimulatedCluster {
    /// Creates a cluster with the given spec.
    pub fn new(spec: ClusterSpec) -> Self {
        SimulatedCluster {
            spec,
            comm: CommTracker::new(),
        }
    }

    /// The cluster's static description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of nodes (`q`).
    pub fn nodes(&self) -> usize {
        self.spec.nodes
    }

    /// The shared communication tracker. Algorithms record every simulated
    /// exchange here.
    pub fn comm(&self) -> &CommTracker {
        &self.comm
    }

    /// Runs one bulk-synchronous round: `work(node)` executes concurrently on
    /// every node and the round ends when all nodes finish. Returns each
    /// node's result together with its measured busy time, indexed by node
    /// id.
    pub fn run_round<R, F>(&self, work: F) -> Vec<(R, Duration)>
    where
        R: Send,
        F: Fn(NodeHandle) -> R + Sync,
    {
        let q = self.spec.nodes;
        let threads = self.spec.threads_per_node;
        let mut results: Vec<Option<(R, Duration)>> = (0..q).map(|_| None).collect();

        std::thread::scope(|scope| {
            let work = &work;
            for (node_id, slot) in results.iter_mut().enumerate() {
                scope.spawn(move || {
                    let handle = NodeHandle {
                        node_id,
                        nodes: q,
                        threads,
                    };
                    let start = Instant::now();
                    let out = work(handle);
                    *slot = Some((out, start.elapsed()));
                });
            }
        });

        results
            .into_iter()
            .map(|r| r.expect("every node thread writes its slot before the scope ends"))
            .collect()
    }

    /// Like [`Self::run_round`] but executes the nodes one after another on
    /// the calling thread. The results are identical; the per-node busy times
    /// are free of any oversubscription effect, which makes this the mode of
    /// choice when the measured times feed the scaling cost model (the
    /// simulated node count can far exceed the physical core count).
    pub fn run_round_sequential<R, F>(&self, work: F) -> Vec<(R, Duration)>
    where
        F: Fn(NodeHandle) -> R,
    {
        let q = self.spec.nodes;
        let threads = self.spec.threads_per_node;
        (0..q)
            .map(|node_id| {
                let handle = NodeHandle {
                    node_id,
                    nodes: q,
                    threads,
                };
                let start = Instant::now();
                let out = work(handle);
                (out, start.elapsed())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_node_runs_exactly_once() {
        let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(6));
        let counter = AtomicUsize::new(0);
        let results = cluster.run_round(|node| {
            counter.fetch_add(1, Ordering::Relaxed);
            node.node_id * 10
        });
        assert_eq!(results.len(), 6);
        assert_eq!(counter.load(Ordering::Relaxed), 6);
        for (node_id, (value, time)) in results.iter().enumerate() {
            assert_eq!(*value, node_id * 10);
            assert!(*time < Duration::from_secs(5));
        }
    }

    #[test]
    fn node_handles_describe_the_cluster() {
        let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(3));
        let results = cluster.run_round(|node| (node.node_id, node.nodes, node.threads));
        for (node_id, ((id, nodes, threads), _)) in results.iter().enumerate() {
            assert_eq!(*id, node_id);
            assert_eq!(*nodes, 3);
            assert!(*threads >= 1);
        }
    }

    #[test]
    fn comm_tracker_is_shared_across_rounds() {
        let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(4));
        cluster.run_round(|node| {
            cluster.comm().record_broadcast(node.node_id * 10);
        });
        cluster.run_round(|_| {
            cluster.comm().record_p2p(1);
        });
        let v = cluster.comm().snapshot();
        assert_eq!(v.broadcast_bytes, 10 + 20 + 30);
        assert_eq!(v.p2p_messages, 4);
    }

    #[test]
    fn sequential_round_matches_concurrent_round() {
        let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(5));
        let concurrent: Vec<usize> = cluster
            .run_round(|node| node.node_id + 1)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let sequential: Vec<usize> = cluster
            .run_round_sequential(|node| node.node_id + 1)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(concurrent, sequential);
        assert_eq!(sequential, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn rounds_measure_busy_time() {
        let cluster = SimulatedCluster::new(ClusterSpec::with_nodes(2));
        let results = cluster.run_round(|node| {
            if node.node_id == 0 {
                // Busy-wait a little so node 0 measurably outlasts node 1.
                let start = Instant::now();
                while start.elapsed() < Duration::from_millis(20) {}
            }
        });
        assert!(results[0].1 >= Duration::from_millis(15));
        assert!(results[0].1 > results[1].1);
    }
}
