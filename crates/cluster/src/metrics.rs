//! Per-superstep and per-run metrics plus the modeled-time computation.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::comm::CommVolume;
use crate::spec::ClusterSpec;

/// Everything measured during one superstep of a distributed run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SuperstepMetrics {
    /// Wall-clock compute time measured on each simulated node (the node's
    /// thread-local busy time for this superstep).
    pub per_node_compute: Vec<Duration>,
    /// Communication performed during / at the end of the superstep.
    pub comm: CommVolume,
    /// Labels generated during this superstep (before any cleaning).
    pub labels_generated: usize,
    /// Labels deleted by the superstep's cleaning pass.
    pub labels_deleted: usize,
}

impl SuperstepMetrics {
    /// The superstep's critical-path compute time: the slowest node.
    pub fn max_compute(&self) -> Duration {
        self.per_node_compute
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Modeled wall time of the superstep on the given cluster: slowest node
    /// compute plus the cost of its communication on the modeled network.
    pub fn modeled_time(&self, spec: &ClusterSpec) -> Duration {
        let q = spec.nodes;
        let net = &spec.network;
        let comm_time = net.broadcast_cost(self.comm.broadcast_bytes as usize, q)
            + net.allreduce_cost(self.comm.allreduce_bytes as usize, q)
            + if self.comm.p2p_messages > 0 {
                net.p2p_cost(self.comm.p2p_bytes as usize)
            } else {
                Duration::ZERO
            };
        self.max_compute() + comm_time
    }
}

/// Aggregate metrics of one distributed run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Name of the algorithm.
    pub algorithm: String,
    /// Cluster size used (`q`).
    pub nodes: usize,
    /// Per-superstep measurements, in execution order.
    pub supersteps: Vec<SuperstepMetrics>,
    /// Measured wall-clock time of the whole simulated run (all nodes share
    /// one machine, so this under-reports the scaling a real cluster gets).
    pub wall_time: Duration,
    /// Peak per-node label memory in bytes (max over nodes of that node's
    /// label partition plus any replicated tables it holds).
    pub peak_node_label_bytes: usize,
    /// Labels stored per node at the end of the run.
    pub labels_per_node: Vec<usize>,
    /// Whether any node exceeded the spec's per-node memory (the analogue of
    /// the paper's OOM failures for DparaPLL at large `q`).
    pub out_of_memory: bool,
}

impl RunMetrics {
    /// Creates an empty record for `algorithm` on `nodes` nodes.
    pub fn new(algorithm: impl Into<String>, nodes: usize) -> Self {
        RunMetrics {
            algorithm: algorithm.into(),
            nodes,
            ..Default::default()
        }
    }

    /// Total communication volume over all supersteps.
    pub fn total_comm(&self) -> CommVolume {
        self.supersteps
            .iter()
            .fold(CommVolume::default(), |acc, s| acc.combined(&s.comm))
    }

    /// Modeled cluster execution time: the sum of modeled superstep times.
    /// This is the series plotted for Figure 8 alongside measured wall time.
    pub fn modeled_time(&self, spec: &ClusterSpec) -> Duration {
        self.supersteps.iter().map(|s| s.modeled_time(spec)).sum()
    }

    /// Modeled critical-path compute time only (no communication).
    pub fn modeled_compute_time(&self) -> Duration {
        self.supersteps.iter().map(|s| s.max_compute()).sum()
    }

    /// Total labels generated before cleaning.
    pub fn labels_generated(&self) -> usize {
        self.supersteps.iter().map(|s| s.labels_generated).sum()
    }

    /// Total labels deleted by cleaning.
    pub fn labels_deleted(&self) -> usize {
        self.supersteps.iter().map(|s| s.labels_deleted).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetworkModel;

    fn superstep(compute_ms: &[u64], broadcast: u64) -> SuperstepMetrics {
        SuperstepMetrics {
            per_node_compute: compute_ms
                .iter()
                .map(|&m| Duration::from_millis(m))
                .collect(),
            comm: CommVolume {
                broadcast_bytes: broadcast,
                broadcasts: 1,
                ..Default::default()
            },
            labels_generated: 10,
            labels_deleted: 2,
        }
    }

    #[test]
    fn max_compute_is_critical_path() {
        let s = superstep(&[5, 20, 10], 0);
        assert_eq!(s.max_compute(), Duration::from_millis(20));
        assert_eq!(SuperstepMetrics::default().max_compute(), Duration::ZERO);
    }

    #[test]
    fn modeled_time_adds_communication() {
        let spec = ClusterSpec {
            nodes: 8,
            network: NetworkModel::default(),
            ..Default::default()
        };
        let without_comm = superstep(&[10, 10], 0).modeled_time(&spec);
        let with_comm = superstep(&[10, 10], 100 << 20).modeled_time(&spec);
        assert!(with_comm > without_comm);
    }

    #[test]
    fn run_metrics_aggregate() {
        let mut run = RunMetrics::new("DGLL", 4);
        run.supersteps.push(superstep(&[5, 6, 7, 8], 1000));
        run.supersteps.push(superstep(&[1, 2, 3, 4], 500));
        assert_eq!(run.total_comm().broadcast_bytes, 1500);
        assert_eq!(run.labels_generated(), 20);
        assert_eq!(run.labels_deleted(), 4);
        assert_eq!(run.modeled_compute_time(), Duration::from_millis(12));
        let spec = ClusterSpec::with_nodes(4);
        assert!(run.modeled_time(&spec) >= run.modeled_compute_time());
    }
}
