//! Cluster description and the α-β communication cost model.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Parameters of the simulated interconnect, used to convert communication
/// volumes into modeled time (the classic α-β a.k.a. latency-bandwidth
/// model: a message of `s` bytes costs `α + s·β`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message latency (α).
    pub latency: Duration,
    /// Link bandwidth in bytes per second (1/β).
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // Values typical of the HPC-class interconnects the paper's cluster
        // uses: ~5 µs end-to-end message latency, ~3 GB/s effective
        // point-to-point bandwidth.
        NetworkModel {
            latency: Duration::from_micros(5),
            bandwidth_bytes_per_sec: 3.0e9,
        }
    }
}

impl NetworkModel {
    /// Cost of one point-to-point message of `bytes`.
    pub fn p2p_cost(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Cost of broadcasting `bytes` from one node to the other `q - 1` nodes
    /// using a binomial tree (`⌈log2 q⌉` rounds, full payload per round).
    pub fn broadcast_cost(&self, bytes: usize, q: usize) -> Duration {
        if q <= 1 || bytes == 0 {
            return Duration::ZERO;
        }
        let rounds = (q as f64).log2().ceil().max(1.0);
        Duration::from_secs_f64(
            rounds * (self.latency.as_secs_f64() + bytes as f64 / self.bandwidth_bytes_per_sec),
        )
    }

    /// Cost of an all-reduce of `bytes` over `q` nodes (recursive doubling:
    /// `⌈log2 q⌉` rounds of the full payload).
    pub fn allreduce_cost(&self, bytes: usize, q: usize) -> Duration {
        // Same round structure as the broadcast for this model's purposes.
        self.broadcast_cost(bytes, q)
    }

    /// Cost of an all-to-all personalized exchange where every node sends
    /// `bytes_per_pair` to every other node.
    pub fn all_to_all_cost(&self, bytes_per_pair: usize, q: usize) -> Duration {
        if q <= 1 {
            return Duration::ZERO;
        }
        let per_node = bytes_per_pair.saturating_mul(q - 1);
        Duration::from_secs_f64(
            (q - 1) as f64 * self.latency.as_secs_f64()
                + per_node as f64 / self.bandwidth_bytes_per_sec,
        )
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes (`q` in the paper).
    pub nodes: usize,
    /// Hardware threads per node (the paper's nodes run 8 cores / 16 threads).
    pub threads_per_node: usize,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Main memory per node in bytes, used to flag out-of-memory conditions
    /// the way the paper reports OOM for DparaPLL at high node counts.
    pub memory_per_node_bytes: usize,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 4,
            threads_per_node: 2,
            network: NetworkModel::default(),
            memory_per_node_bytes: 64 * (1 << 30),
        }
    }
}

impl ClusterSpec {
    /// Creates a spec with `nodes` nodes and defaults for everything else.
    pub fn with_nodes(nodes: usize) -> Self {
        ClusterSpec {
            nodes: nodes.max(1),
            ..Default::default()
        }
    }

    /// Total hardware threads across the cluster ("# compute cores" on the
    /// x-axis of Figure 8 counts 8 per node).
    pub fn total_threads(&self) -> usize {
        self.nodes * self.threads_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_cost_scales_with_bytes() {
        let net = NetworkModel::default();
        let small = net.p2p_cost(1_000);
        let large = net.p2p_cost(10_000_000);
        assert!(large > small);
        assert!(small >= net.latency);
    }

    #[test]
    fn broadcast_cost_grows_logarithmically_with_nodes() {
        let net = NetworkModel::default();
        let b = 1 << 20;
        let c2 = net.broadcast_cost(b, 2);
        let c4 = net.broadcast_cost(b, 4);
        let c64 = net.broadcast_cost(b, 64);
        assert!(c4 > c2);
        assert!(c64 > c4);
        // log2(64) = 6 rounds vs 1 round.
        assert!(c64.as_secs_f64() / c2.as_secs_f64() < 7.0);
        assert_eq!(net.broadcast_cost(0, 64), Duration::ZERO);
        assert_eq!(net.broadcast_cost(b, 1), Duration::ZERO);
    }

    #[test]
    fn all_to_all_cost_scales_with_cluster_size() {
        let net = NetworkModel::default();
        assert_eq!(net.all_to_all_cost(1000, 1), Duration::ZERO);
        assert!(net.all_to_all_cost(1000, 8) > net.all_to_all_cost(1000, 2));
    }

    #[test]
    fn spec_helpers() {
        let spec = ClusterSpec::with_nodes(16);
        assert_eq!(spec.nodes, 16);
        assert_eq!(spec.total_threads(), 16 * spec.threads_per_node);
        assert_eq!(ClusterSpec::with_nodes(0).nodes, 1);
    }
}
