//! Property-based tests: the distributed constructors must produce the
//! Canonical Hub Labeling for arbitrary graphs, rankings and cluster sizes,
//! and the label partitions must respect rank-circular ownership.

use proptest::prelude::*;

use chl_cluster::{ClusterSpec, SimulatedCluster, TaskPartition};
use chl_core::canonical::{brute_force_chl, satisfies_cover_property};
use chl_distributed::{
    distributed_gll, distributed_hybrid, distributed_parapll, distributed_plant, DistributedConfig,
};
use chl_graph::{CsrGraph, GraphBuilder};
use chl_ranking::Ranking;

fn arb_graph_and_ranking() -> impl Strategy<Value = (CsrGraph, Ranking)> {
    (
        4usize..24,
        proptest::collection::vec((0u32..24, 0u32..24, 1u32..16), 3..90),
        any::<u64>(),
    )
        .prop_map(|(n, edges, seed)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            let g = b.build().expect("positive weights");
            let mut order: Vec<u32> = (0..n as u32).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            (g, Ranking::from_order(order, n).expect("permutation"))
        })
}

fn cluster(q: usize) -> SimulatedCluster {
    SimulatedCluster::new(ClusterSpec::with_nodes(q))
}

fn config() -> DistributedConfig {
    DistributedConfig {
        initial_superstep: 4,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DGLL equals the brute-force CHL for any cluster size.
    #[test]
    fn dgll_is_canonical((g, ranking) in arb_graph_and_ranking(), q in 1usize..6) {
        let reference = brute_force_chl(&g, &ranking);
        let d = distributed_gll(&g, &ranking, &cluster(q), &config());
        prop_assert_eq!(d.assemble(), reference);
    }

    /// Distributed PLaNT equals the CHL and never communicates.
    #[test]
    fn plant_is_canonical_and_silent((g, ranking) in arb_graph_and_ranking(), q in 1usize..6) {
        let reference = brute_force_chl(&g, &ranking);
        let d = distributed_plant(&g, &ranking, &cluster(q), &config());
        prop_assert_eq!(d.assemble(), reference);
        prop_assert_eq!(d.metrics.total_comm().total_bytes(), 0);
    }

    /// The distributed Hybrid equals the CHL for aggressive and lazy switch
    /// thresholds alike.
    #[test]
    fn hybrid_is_canonical((g, ranking) in arb_graph_and_ranking(), q in 1usize..6, psi in 1.0f64..200.0) {
        let reference = brute_force_chl(&g, &ranking);
        let d = distributed_hybrid(&g, &ranking, &cluster(q), &config().with_psi_threshold(psi));
        prop_assert_eq!(d.assemble(), reference);
    }

    /// DparaPLL satisfies the cover property (exact queries) and produces at
    /// least as many labels as the CHL.
    #[test]
    fn dparapll_covers((g, ranking) in arb_graph_and_ranking(), q in 1usize..6) {
        let reference = brute_force_chl(&g, &ranking);
        let d = distributed_parapll(&g, &ranking, &cluster(q), &config());
        let assembled = d.assemble();
        prop_assert!(satisfies_cover_property(&g, &assembled));
        prop_assert!(assembled.total_labels() >= reference.total_labels());
    }

    /// Partitioned algorithms place every label on the node owning its hub,
    /// and the partitions reassemble without losing or duplicating labels.
    #[test]
    fn partitions_respect_ownership((g, ranking) in arb_graph_and_ranking(), q in 2usize..6) {
        let d = distributed_gll(&g, &ranking, &cluster(q), &config());
        let partition = TaskPartition::new(q, g.num_vertices());
        for node in 0..q {
            for v in 0..g.num_vertices() as u32 {
                for e in d.labels_on_node(node, v).entries() {
                    prop_assert_eq!(partition.owner_of(e.hub), node);
                }
            }
        }
        prop_assert_eq!(d.labels_per_node().iter().sum::<usize>(), d.assemble().total_labels());
    }

    /// The QFDL-style distributed query over partitions equals the assembled
    /// index's answer for every pair.
    #[test]
    fn distributed_query_matches_assembled((g, ranking) in arb_graph_and_ranking(), q in 1usize..6) {
        let d = distributed_hybrid(&g, &ranking, &cluster(q), &config());
        let assembled = d.assemble();
        let n = g.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(d.query_distributed(u, v), assembled.query(u, v));
            }
        }
    }
}
