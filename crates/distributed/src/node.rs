//! Per-node construction state and kernels.
//!
//! Each simulated node owns: the labels it generated itself (its partition,
//! committed at superstep boundaries), any labels replicated to it (the full
//! table for DparaPLL, the Common Label Table for DGLL/Hybrid) and a local
//! table for labels generated during the current superstep. The pruning
//! kernels of `chl-core` read through the [`NodeView`] adapter so they see
//! exactly — and only — what a real cluster node would see.

use chl_core::labels::{LabelEntry, LabelSet};
use chl_core::plant::CommonLabelTable;
use chl_core::pruned_dijkstra::{pruned_dijkstra, DijkstraScratch, PruneOptions};
use chl_core::stats::SptRecord;
use chl_core::table::{ConcurrentLabelTable, LabelAccess};
use chl_graph::types::VertexId;
use chl_graph::CsrGraph;
use chl_ranking::Ranking;

/// The labels a node can consult while constructing an SPT.
pub struct NodeView<'a> {
    /// Labels this node generated in earlier supersteps (its own partition).
    pub own: &'a [LabelSet],
    /// Labels replicated from other nodes (empty slice entries when nothing
    /// is replicated; the full labeling for DparaPLL).
    pub replicated: &'a [LabelSet],
    /// The Common Label Table (labels of the top-η hubs), if maintained.
    pub common: Option<&'a CommonLabelTable>,
    /// Labels generated during the current superstep on this node.
    pub local: &'a ConcurrentLabelTable,
}

impl LabelAccess for NodeView<'_> {
    fn collect_labels(&self, v: VertexId, out: &mut Vec<LabelEntry>) {
        out.extend_from_slice(self.own[v as usize].entries());
        if !self.replicated.is_empty() {
            out.extend_from_slice(self.replicated[v as usize].entries());
        }
        if let Some(common) = self.common {
            out.extend_from_slice(common.labels_of(v).entries());
        }
        self.local.collect_into(v, out);
    }

    fn append(&self, v: VertexId, entry: LabelEntry) {
        self.local.append(v, entry);
    }
}

/// Runs pruned Dijkstra (Algorithm 1) from every root position in
/// `positions`, reading labels through `view` and appending new labels to the
/// view's local table. Returns one record per SPT.
#[allow(clippy::too_many_arguments)]
pub fn construct_positions(
    g: &CsrGraph,
    ranking: &Ranking,
    positions: &[u32],
    view: &NodeView<'_>,
    rank_query: bool,
    scratch: &mut DijkstraScratch,
) -> Vec<SptRecord> {
    let opts = PruneOptions {
        rank_query,
        ..Default::default()
    };
    positions
        .iter()
        .map(|&pos| {
            let root = ranking.vertex_at(pos);
            let (record, _queries) = pruned_dijkstra(g, ranking, root, view, opts, scratch);
            record
        })
        .collect()
}

/// Merges raw label entries (as drained from a local table) into a node's
/// committed per-vertex label sets.
pub fn commit_entries(own: &mut [LabelSet], entries: Vec<Vec<LabelEntry>>) {
    for (set, raw) in own.iter_mut().zip(entries) {
        if !raw.is_empty() {
            set.merge(&LabelSet::from_entries(raw));
        }
    }
}

/// Serialized wire size of a batch of labels (used for traffic accounting).
pub fn wire_bytes(label_count: usize) -> usize {
    label_count * chl_cluster::comm::LABEL_WIRE_BYTES
}

/// Runs one bulk-synchronous round on the cluster in the configured execution
/// mode, returning each node's result and measured busy time.
pub fn run_nodes<R, F>(
    cluster: &chl_cluster::SimulatedCluster,
    mode: crate::config::ExecutionMode,
    work: F,
) -> Vec<(R, std::time::Duration)>
where
    R: Send,
    F: Fn(chl_cluster::NodeHandle) -> R + Sync,
{
    match mode {
        crate::config::ExecutionMode::Concurrent => cluster.run_round(work),
        crate::config::ExecutionMode::Sequential => cluster.run_round_sequential(work),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::generators::path_graph;

    #[test]
    fn node_view_reads_all_layers() {
        let own = vec![LabelSet::from_entries(vec![LabelEntry::new(0, 1)]); 2];
        let replicated = vec![LabelSet::from_entries(vec![LabelEntry::new(1, 2)]); 2];
        let common_src = vec![LabelSet::from_entries(vec![LabelEntry::new(2, 3)]); 2];
        let common = CommonLabelTable::from_labels(&common_src, 16);
        let local = ConcurrentLabelTable::new(2);
        local.append(0, LabelEntry::new(3, 4));

        let view = NodeView {
            own: &own,
            replicated: &replicated,
            common: Some(&common),
            local: &local,
        };
        let mut out = Vec::new();
        view.collect_labels(0, &mut out);
        assert_eq!(out.len(), 4);

        view.append(1, LabelEntry::new(9, 9));
        assert_eq!(local.len_of(1), 1);
    }

    #[test]
    fn construct_positions_generates_labels_on_local_table() {
        let g = path_graph(5);
        let ranking = Ranking::identity(5);
        let own = vec![LabelSet::new(); 5];
        let local = ConcurrentLabelTable::new(5);
        let view = NodeView {
            own: &own,
            replicated: &[],
            common: None,
            local: &local,
        };
        let mut scratch = DijkstraScratch::new(5);
        let records = construct_positions(&g, &ranking, &[0, 2], &view, true, &mut scratch);
        assert_eq!(records.len(), 2);
        assert!(local.total_labels() > 0);
        // Root position 0 (vertex 0) labels the whole path.
        assert_eq!(records[0].labels_generated, 5);
    }

    #[test]
    fn commit_entries_merges_into_own_partition() {
        let mut own = vec![LabelSet::new(); 3];
        let entries = vec![
            vec![LabelEntry::new(1, 5)],
            vec![],
            vec![LabelEntry::new(0, 2), LabelEntry::new(2, 0)],
        ];
        commit_entries(&mut own, entries);
        assert_eq!(own[0].len(), 1);
        assert_eq!(own[1].len(), 0);
        assert_eq!(own[2].len(), 2);
    }

    #[test]
    fn wire_bytes_scale_with_labels() {
        assert_eq!(wire_bytes(0), 0);
        assert_eq!(wire_bytes(10), 160);
    }
}
