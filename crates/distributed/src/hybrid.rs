//! The Hybrid distributed constructor (§5.2.1 + §5.3): PLaNT while it is
//! cheap, DGLL once it is not.
//!
//! Supersteps follow the same geometric schedule as DGLL. As long as the
//! running ratio Ψ (vertices explored per label generated, measured per
//! superstep and agreed on through a tiny all-reduce) stays below `Ψ_th`,
//! roots are PLaNTed: no pruning-label traffic, embarrassing parallelism, and
//! the bulk of the labeling — which the most important roots generate — never
//! crosses the network. Labels whose hub ranks inside the top `η` are
//! broadcast into the Common Label Table so that both later PLaNTed trees and
//! the post-switch DGLL phase can prune with them (§5.3). Once Ψ exceeds the
//! threshold the remaining roots are processed with DGLL supersteps, which
//! prune aggressively exactly where PLaNT would waste exploration.

use std::time::Instant;

use chl_cluster::{
    RunMetrics, SimulatedCluster, SuperstepMetrics, SuperstepSchedule, TaskPartition,
};
use chl_core::labels::{LabelEntry, LabelSet};
use chl_core::plant::{plant_dijkstra, CommonLabelTable, PlantScratch};
use chl_graph::CsrGraph;
use chl_ranking::Ranking;

use crate::config::DistributedConfig;
use crate::dgll::{dgll_superstep, finalize_metrics};
use crate::node::{commit_entries, run_nodes, wire_bytes};
use crate::result::DistributedLabeling;

/// Runs the Hybrid PLaNT + DGLL constructor on the simulated cluster.
pub fn distributed_hybrid(
    g: &CsrGraph,
    ranking: &Ranking,
    cluster: &SimulatedCluster,
    config: &DistributedConfig,
) -> DistributedLabeling {
    let start = Instant::now();
    let n = g.num_vertices();
    let q = cluster.nodes();
    let partition = TaskPartition::new(q, n);
    let schedule = SuperstepSchedule::geometric(n, config.initial_superstep, config.beta);

    let mut own_partitions: Vec<Vec<LabelSet>> = vec![vec![LabelSet::new(); n]; q];
    let mut common = CommonLabelTable::with_eta(n, config.common_hubs);
    let mut metrics = RunMetrics::new("Hybrid", q);
    let mut planted_supersteps = 0usize;
    let mut switched = false;

    for (from, to) in schedule.ranges() {
        if switched {
            let superstep = dgll_superstep(
                g,
                ranking,
                cluster,
                config,
                &partition,
                (from, to),
                &mut own_partitions,
                &mut common,
            );
            metrics.supersteps.push(superstep);
            continue;
        }

        // ---- PLaNT superstep ----
        planted_supersteps += 1;
        let positions: Vec<Vec<u32>> = (0..q)
            .map(|node| partition.positions_of_in_range(node, from, to))
            .collect();
        let own_ref: &[Vec<LabelSet>] = &own_partitions;
        let common_ref: &CommonLabelTable = &common;
        let _ = own_ref; // nodes do not consult other labels while PLaNTing
        let outputs = run_nodes(cluster, config.execution, |node| {
            let mut scratch = PlantScratch::new(n);
            let mut labels: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
            let mut explored = 0usize;
            for &pos in &positions[node.node_id] {
                let root = ranking.vertex_at(pos);
                let tree = plant_dijkstra(
                    g,
                    ranking,
                    root,
                    config.early_termination,
                    common_ref,
                    &mut scratch,
                );
                explored += tree.vertices_explored;
                for &(v, d) in &tree.labels {
                    labels[v as usize].push(LabelEntry::new(pos, d));
                }
            }
            (labels, explored)
        });

        let mut superstep = SuperstepMetrics::default();
        let mut explored_total = 0usize;
        for (node, ((labels, explored), busy)) in outputs.into_iter().enumerate() {
            superstep.per_node_compute.push(busy);
            explored_total += explored;
            let generated: usize = labels.iter().map(Vec::len).sum();
            superstep.labels_generated += generated;

            // Labels of top-η hubs are broadcast into the Common Label Table;
            // everything else stays put (no communication).
            let mut common_count = 0usize;
            for (v, raw) in labels.iter().enumerate() {
                for e in raw {
                    if e.hub < common.eta() {
                        common.insert(v as u32, *e);
                        common_count += 1;
                    }
                }
            }
            if common_count > 0 {
                cluster.comm().record_broadcast(wire_bytes(common_count));
            }
            commit_entries(&mut own_partitions[node], labels);
        }

        // Tiny all-reduce to agree on the superstep's Ψ.
        cluster.comm().record_allreduce(16);
        superstep.comm = cluster.comm().take();
        let psi = if superstep.labels_generated == 0 {
            f64::INFINITY
        } else {
            explored_total as f64 / superstep.labels_generated as f64
        };
        metrics.supersteps.push(superstep);

        if psi > config.psi_threshold {
            switched = true;
        }
    }

    finalize_metrics(&mut metrics, cluster, &own_partitions, &common, start);
    metrics.algorithm = format!("Hybrid(planted_supersteps={planted_supersteps})");
    DistributedLabeling::new(own_partitions, ranking.clone(), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_cluster::ClusterSpec;
    use chl_core::canonical::is_canonical;
    use chl_core::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi, grid_network, GridOptions};
    use chl_ranking::degree_ranking;

    fn cluster(q: usize) -> SimulatedCluster {
        SimulatedCluster::new(ClusterSpec::with_nodes(q))
    }

    fn config() -> DistributedConfig {
        DistributedConfig {
            initial_superstep: 8,
            ..Default::default()
        }
    }

    #[test]
    fn hybrid_produces_the_canonical_labeling() {
        let g = erdos_renyi(70, 0.08, 12, 53);
        let ranking = degree_ranking(&g);
        let d = distributed_hybrid(&g, &ranking, &cluster(4), &config());
        assert_eq!(d.assemble(), sequential_pll(&g, &ranking).index);
    }

    #[test]
    fn hybrid_with_aggressive_switch_is_still_canonical() {
        let g = barabasi_albert(140, 3, 19);
        let ranking = degree_ranking(&g);
        let cfg = config().with_psi_threshold(1.5);
        let d = distributed_hybrid(&g, &ranking, &cluster(4), &cfg);
        assert!(is_canonical(&g, &ranking, &d.assemble()));
        // The aggressive threshold must actually force a switch: later
        // supersteps show cleaning activity (a DGLL-only phenomenon).
        assert!(d.metrics.supersteps.len() > 1);
    }

    #[test]
    fn hybrid_with_huge_threshold_behaves_like_plant() {
        let g = erdos_renyi(60, 0.1, 8, 7);
        let ranking = degree_ranking(&g);
        let cfg = config().with_psi_threshold(f64::MAX);
        let d = distributed_hybrid(&g, &ranking, &cluster(4), &cfg);
        assert_eq!(d.assemble(), sequential_pll(&g, &ranking).index);
        // Only common-table broadcasts and Ψ all-reduces, no label cleaning.
        assert_eq!(d.metrics.labels_deleted(), 0);
    }

    #[test]
    fn hybrid_is_canonical_on_road_like_graph() {
        let g = grid_network(
            &GridOptions {
                rows: 9,
                cols: 8,
                ..GridOptions::default()
            },
            31,
        );
        let ranking = chl_ranking::betweenness_ranking(
            &g,
            &chl_ranking::BetweennessOptions {
                samples: 16,
                degree_tiebreak: true,
            },
            4,
        );
        let cfg = config().with_psi_threshold(3.0);
        let d = distributed_hybrid(&g, &ranking, &cluster(6), &cfg);
        assert!(is_canonical(&g, &ranking, &d.assemble()));
    }

    #[test]
    fn hybrid_broadcasts_less_than_dgll() {
        let g = barabasi_albert(150, 3, 29);
        let ranking = degree_ranking(&g);
        let dgll = crate::dgll::distributed_gll(&g, &ranking, &cluster(4), &config());
        let hybrid = distributed_hybrid(&g, &ranking, &cluster(4), &config());
        assert_eq!(dgll.assemble(), hybrid.assemble());
        assert!(
            hybrid.metrics.total_comm().broadcast_bytes
                <= dgll.metrics.total_comm().broadcast_bytes,
            "hybrid must not broadcast more label data than DGLL"
        );
    }

    #[test]
    fn labels_remain_partitioned() {
        let g = erdos_renyi(60, 0.1, 8, 61);
        let ranking = degree_ranking(&g);
        let q = 4;
        let d = distributed_hybrid(&g, &ranking, &cluster(q), &config());
        let partition = TaskPartition::new(q, g.num_vertices());
        for node in 0..q {
            for v in 0..g.num_vertices() as u32 {
                for e in d.labels_on_node(node, v).entries() {
                    assert_eq!(partition.owner_of(e.hub), node);
                }
            }
        }
    }
}
