//! Configuration of the distributed constructors.

use serde::{Deserialize, Serialize};

/// How the simulated nodes of a superstep are executed on the host machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// One OS thread per simulated node. Fast wall-clock, but per-node busy
    /// times are distorted once the node count exceeds the physical cores.
    Concurrent,
    /// Nodes run one after another. Slower wall-clock, but per-node busy
    /// times are contention-free, which is what the scaling cost model needs.
    Sequential,
}

/// Parameters of the distributed constructors. Names follow the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Number of SPTs in the first DGLL superstep.
    pub initial_superstep: usize,
    /// Geometric growth factor `β` between consecutive DGLL supersteps.
    pub beta: f64,
    /// Size `η` of the Common Label Table (labels of the `η` most important
    /// hubs are replicated on every node). The paper uses 16.
    pub common_hubs: u32,
    /// Hybrid switching threshold `Ψ_th` (average vertices explored per label
    /// over a superstep above which the Hybrid moves from PLaNT to DGLL).
    pub psi_threshold: f64,
    /// Enable PLaNT's early-termination optimization.
    pub early_termination: bool,
    /// Number of fixed-size supersteps used by the DparaPLL baseline (the
    /// paper's implementation synchronizes `log_8 n` times).
    pub dparapll_supersteps: usize,
    /// How simulated nodes are scheduled on the host.
    pub execution: ExecutionMode,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            initial_superstep: 32,
            beta: 2.0,
            common_hubs: 16,
            psi_threshold: 100.0,
            early_termination: true,
            dparapll_supersteps: 0, // 0 = derive log_8(n) at run time
            execution: ExecutionMode::Sequential,
        }
    }
}

impl DistributedConfig {
    /// Builder-style helper: sets the Common Label Table size.
    pub fn with_common_hubs(mut self, eta: u32) -> Self {
        self.common_hubs = eta;
        self
    }

    /// Builder-style helper: sets the Hybrid switching threshold.
    pub fn with_psi_threshold(mut self, psi: f64) -> Self {
        self.psi_threshold = psi;
        self
    }

    /// Builder-style helper: sets the execution mode.
    pub fn with_execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// Number of DparaPLL supersteps for a graph with `n` vertices: the
    /// configured value, or `log_8 n` (at least 1) when left at 0.
    pub fn dparapll_superstep_count(&self, n: usize) -> usize {
        if self.dparapll_supersteps > 0 {
            self.dparapll_supersteps
        } else {
            ((n.max(2) as f64).ln() / 8f64.ln()).ceil().max(1.0) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = DistributedConfig::default();
        assert_eq!(c.common_hubs, 16);
        assert_eq!(c.beta, 2.0);
        assert!(c.early_termination);
        assert_eq!(c.execution, ExecutionMode::Sequential);
    }

    #[test]
    fn builders() {
        let c = DistributedConfig::default()
            .with_common_hubs(8)
            .with_psi_threshold(500.0)
            .with_execution(ExecutionMode::Concurrent);
        assert_eq!(c.common_hubs, 8);
        assert_eq!(c.psi_threshold, 500.0);
        assert_eq!(c.execution, ExecutionMode::Concurrent);
    }

    #[test]
    fn dparapll_superstep_count_scales_logarithmically() {
        let c = DistributedConfig::default();
        assert_eq!(c.dparapll_superstep_count(8), 1);
        assert!(c.dparapll_superstep_count(1_000_000) >= 6);
        let fixed = DistributedConfig {
            dparapll_supersteps: 3,
            ..Default::default()
        };
        assert_eq!(fixed.dparapll_superstep_count(1_000_000), 3);
    }
}
