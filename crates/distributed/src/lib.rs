//! # chl-distributed
//!
//! Distributed-memory Canonical Hub Labeling over the simulated cluster of
//! [`chl_cluster`]: the paper's DGLL (§5.1), PLaNT (§5.2), Hybrid (§5.2.1,
//! §5.3) and the DparaPLL baseline it compares against.
//!
//! All four algorithms share the same skeleton:
//!
//! * the SPT roots are assigned to nodes **rank-circularly**
//!   (`position mod q`, [`chl_cluster::TaskPartition`]);
//! * every node holds the full graph and the full ranking, but only *its own*
//!   label partition (except DparaPLL, which replicates everything — the very
//!   property that makes it run out of memory at scale);
//! * execution proceeds in supersteps; any label data that crosses node
//!   boundaries is pushed through the cluster's [`chl_cluster::CommTracker`]
//!   so the traffic the paper reasons about is measured, not assumed.
//!
//! The output of every constructor is a [`DistributedLabeling`]: the per-node
//! label partitions plus run metrics. `assemble()` unions the partitions into
//! a plain [`chl_core::HubLabelIndex`] for verification; the query crate
//! (`chl-query`) instead consumes the partitions directly, the way the
//! paper's QFDL/QDOL modes do.

#![forbid(unsafe_code)]

pub mod config;
pub mod dgll;
pub mod dparapll;
pub mod dplant;
pub mod hybrid;
pub mod node;
pub mod result;

pub use config::{DistributedConfig, ExecutionMode};
pub use dgll::distributed_gll;
pub use dparapll::distributed_parapll;
pub use dplant::distributed_plant;
pub use hybrid::distributed_hybrid;
pub use result::DistributedLabeling;
