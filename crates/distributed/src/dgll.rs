//! DGLL — Distributed Global Local Labeling (§5.1 of the paper).
//!
//! Each node runs GLL-style pruned construction (rank + distance queries)
//! over its rank-circular share of the roots. Because a node can only prune
//! with the labels it generated itself (plus the small Common Label Table of
//! §5.3), it produces more redundant labels than shared-memory GLL; those are
//! removed by the interleaved cleaning that follows every superstep:
//!
//! 1. every node broadcasts the labels it generated in the superstep,
//! 2. every node evaluates cleaning queries and contributes its verdicts to a
//!    bit-vector all-reduce,
//! 3. surviving labels are committed to the *generating* node's partition —
//!    labels stay distributed at all times, which is how the cluster's
//!    collective memory is harnessed.
//!
//! Superstep sizes grow geometrically by `β`, matching the paper's
//! observation that label volume per SPT drops exponentially with rank.

use std::time::Instant;

use chl_cluster::{
    RunMetrics, SimulatedCluster, SuperstepMetrics, SuperstepSchedule, TaskPartition,
};
use chl_core::labels::{LabelEntry, LabelSet};
use chl_core::plant::CommonLabelTable;
use chl_core::pruned_dijkstra::DijkstraScratch;
use chl_core::table::ConcurrentLabelTable;
use chl_graph::CsrGraph;
use chl_ranking::Ranking;

use crate::config::DistributedConfig;
use crate::node::{commit_entries, construct_positions, run_nodes, wire_bytes, NodeView};
use crate::result::DistributedLabeling;

/// Runs DGLL on the simulated cluster.
pub fn distributed_gll(
    g: &CsrGraph,
    ranking: &Ranking,
    cluster: &SimulatedCluster,
    config: &DistributedConfig,
) -> DistributedLabeling {
    let start = Instant::now();
    let n = g.num_vertices();
    let q = cluster.nodes();
    let partition = TaskPartition::new(q, n);
    let schedule = SuperstepSchedule::geometric(n, config.initial_superstep, config.beta);

    let mut own_partitions: Vec<Vec<LabelSet>> = vec![vec![LabelSet::new(); n]; q];
    let mut common = CommonLabelTable::with_eta(n, config.common_hubs);
    let mut metrics = RunMetrics::new("DGLL", q);

    for (from, to) in schedule.ranges() {
        let superstep = dgll_superstep(
            g,
            ranking,
            cluster,
            config,
            &partition,
            (from, to),
            &mut own_partitions,
            &mut common,
        );
        metrics.supersteps.push(superstep);
    }

    finalize_metrics(&mut metrics, cluster, &own_partitions, &common, start);
    DistributedLabeling::new(own_partitions, ranking.clone(), metrics)
}

/// One DGLL superstep over rank positions `[range.0, range.1)`: pruned
/// construction on every node, label broadcast, bit-vector cleaning and
/// commit. Shared with the Hybrid algorithm's post-switch phase.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dgll_superstep(
    g: &CsrGraph,
    ranking: &Ranking,
    cluster: &SimulatedCluster,
    config: &DistributedConfig,
    partition: &TaskPartition,
    range: (u32, u32),
    own_partitions: &mut [Vec<LabelSet>],
    common: &mut CommonLabelTable,
) -> SuperstepMetrics {
    let n = g.num_vertices();
    let q = own_partitions.len();
    let positions: Vec<Vec<u32>> = (0..q)
        .map(|node| partition.positions_of_in_range(node, range.0, range.1))
        .collect();

    // --- Construction phase (per node, rank + distance queries) ---
    let own_ref: &[Vec<LabelSet>] = own_partitions;
    let common_ref: &CommonLabelTable = common;
    let outputs = run_nodes(cluster, config.execution, |node| {
        let local = ConcurrentLabelTable::new(n);
        let view = NodeView {
            own: &own_ref[node.node_id],
            replicated: &[],
            common: Some(common_ref),
            local: &local,
        };
        let mut scratch = DijkstraScratch::new(n);
        let records = construct_positions(
            g,
            ranking,
            &positions[node.node_id],
            &view,
            true,
            &mut scratch,
        );
        (records, local.drain_all())
    });

    let mut superstep = SuperstepMetrics::default();
    let mut per_node_new: Vec<Vec<Vec<LabelEntry>>> = Vec::with_capacity(q);
    for ((records, entries), busy) in outputs {
        let generated: usize = records.iter().map(|r| r.labels_generated).sum();
        superstep.labels_generated += generated;
        superstep.per_node_compute.push(busy);
        // Broadcast of this node's freshly generated labels (redundant +
        // non-redundant — that is exactly the traffic the paper complains
        // about).
        cluster.comm().record_broadcast(wire_bytes(generated));
        per_node_new.push(entries);
    }

    // --- Cleaning phase ---
    // Every node evaluates the cleaning queries over the union of committed
    // labels and the broadcast superstep labels; verdict bit-vectors are
    // combined with an all-reduce.
    let combined = combined_view(own_partitions, &per_node_new, n);
    cluster
        .comm()
        .record_allreduce(superstep.labels_generated.div_ceil(8).max(1));

    for (node, entries) in per_node_new.into_iter().enumerate() {
        let mut kept: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        for (v, raw) in entries.into_iter().enumerate() {
            for e in raw {
                let hub_vertex = ranking.vertex_at(e.hub);
                let redundant = hub_vertex != v as u32
                    && combined[v].is_redundant_label(
                        e.hub,
                        e.dist,
                        &combined[hub_vertex as usize],
                    );
                if redundant {
                    superstep.labels_deleted += 1;
                } else {
                    if e.hub < common.eta() {
                        common.insert(v as u32, e);
                    }
                    kept[v].push(e);
                }
            }
        }
        commit_entries(&mut own_partitions[node], kept);
    }

    superstep.comm = cluster.comm().take();
    superstep
}

/// Union of all committed partitions plus all in-flight superstep labels,
/// per vertex — the labeling the cleaning queries run against.
fn combined_view(
    own_partitions: &[Vec<LabelSet>],
    per_node_new: &[Vec<Vec<LabelEntry>>],
    n: usize,
) -> Vec<LabelSet> {
    let mut combined: Vec<LabelSet> = vec![LabelSet::new(); n];
    for partition in own_partitions {
        for (v, set) in partition.iter().enumerate() {
            combined[v].merge(set);
        }
    }
    for entries in per_node_new {
        for (v, raw) in entries.iter().enumerate() {
            if !raw.is_empty() {
                combined[v].merge(&LabelSet::from_entries(raw.clone()));
            }
        }
    }
    combined
}

/// Fills in the final run-level metrics shared by DGLL, PLaNT and Hybrid.
pub(crate) fn finalize_metrics(
    metrics: &mut RunMetrics,
    cluster: &SimulatedCluster,
    own_partitions: &[Vec<LabelSet>],
    common: &CommonLabelTable,
    start: Instant,
) {
    metrics.wall_time = start.elapsed();
    metrics.labels_per_node = own_partitions
        .iter()
        .map(|p| p.iter().map(LabelSet::len).sum())
        .collect();
    metrics.peak_node_label_bytes = own_partitions
        .iter()
        .map(|p| p.iter().map(LabelSet::memory_bytes).sum::<usize>() + common.memory_bytes())
        .max()
        .unwrap_or(0);
    metrics.out_of_memory = metrics.peak_node_label_bytes > cluster.spec().memory_per_node_bytes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_cluster::ClusterSpec;
    use chl_core::canonical::is_canonical;
    use chl_core::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi, grid_network, GridOptions};
    use chl_ranking::degree_ranking;

    fn cluster(q: usize) -> SimulatedCluster {
        SimulatedCluster::new(ClusterSpec::with_nodes(q))
    }

    fn config() -> DistributedConfig {
        DistributedConfig {
            initial_superstep: 8,
            ..Default::default()
        }
    }

    #[test]
    fn dgll_produces_the_canonical_labeling() {
        let g = erdos_renyi(70, 0.08, 12, 27);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let d = distributed_gll(&g, &ranking, &cluster(4), &config());
        assert_eq!(d.assemble(), canonical);
    }

    #[test]
    fn dgll_is_canonical_on_road_like_graph() {
        let g = grid_network(
            &GridOptions {
                rows: 8,
                cols: 8,
                ..GridOptions::default()
            },
            3,
        );
        let ranking = chl_ranking::betweenness_ranking(
            &g,
            &chl_ranking::BetweennessOptions {
                samples: 16,
                degree_tiebreak: true,
            },
            9,
        );
        let d = distributed_gll(&g, &ranking, &cluster(6), &config());
        assert!(is_canonical(&g, &ranking, &d.assemble()));
    }

    #[test]
    fn labels_are_partitioned_not_replicated() {
        let g = barabasi_albert(120, 3, 5);
        let ranking = degree_ranking(&g);
        let d = distributed_gll(&g, &ranking, &cluster(4), &config());
        let per_node = d.labels_per_node();
        let assembled = d.assemble().total_labels();
        assert_eq!(per_node.iter().sum::<usize>(), assembled);
        // Several nodes must hold a non-trivial share.
        assert!(per_node.iter().filter(|&&c| c > 0).count() >= 2);
    }

    #[test]
    fn labels_stay_on_the_owning_node() {
        let g = erdos_renyi(50, 0.1, 8, 33);
        let ranking = degree_ranking(&g);
        let q = 3;
        let d = distributed_gll(&g, &ranking, &cluster(q), &config());
        let partition = TaskPartition::new(q, g.num_vertices());
        for node in 0..q {
            for v in 0..g.num_vertices() as u32 {
                for e in d.labels_on_node(node, v).entries() {
                    assert_eq!(
                        partition.owner_of(e.hub),
                        node,
                        "hub {} stored off its owner",
                        e.hub
                    );
                }
            }
        }
    }

    #[test]
    fn cleaning_and_broadcast_traffic_are_recorded() {
        let g = barabasi_albert(100, 3, 9);
        let ranking = degree_ranking(&g);
        let d = distributed_gll(&g, &ranking, &cluster(4), &config());
        let comm = d.metrics.total_comm();
        assert!(comm.broadcast_bytes > 0);
        assert!(comm.allreduces as usize >= d.metrics.supersteps.len());
        // DGLL produces redundant labels that cleaning removes.
        assert!(d.metrics.labels_generated() >= d.assemble().total_labels());
    }

    #[test]
    fn single_node_dgll_matches_canonical() {
        let g = erdos_renyi(40, 0.1, 6, 2);
        let ranking = degree_ranking(&g);
        let d = distributed_gll(&g, &ranking, &cluster(1), &config());
        assert_eq!(d.assemble(), sequential_pll(&g, &ranking).index);
    }
}
