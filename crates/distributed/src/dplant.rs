//! Distributed PLaNT (§5.2): the embarrassingly parallel constructor.
//!
//! Every node PLaNTs the SPTs of its rank-circular share of roots. No label
//! is ever sent to another node during construction — the defining property
//! that gives PLaNT its near-linear strong scaling — and the emitted labels
//! are canonical by construction, so no cleaning pass exists either. Labels
//! remain partitioned across the cluster.

use std::time::Instant;

use chl_cluster::{RunMetrics, SimulatedCluster, SuperstepMetrics, TaskPartition};
use chl_core::labels::{LabelEntry, LabelSet};
use chl_core::plant::{plant_dijkstra, CommonLabelTable, PlantScratch};
use chl_graph::CsrGraph;
use chl_ranking::Ranking;

use crate::config::DistributedConfig;
use crate::dgll::finalize_metrics;
use crate::node::run_nodes;
use crate::result::DistributedLabeling;

/// Runs distributed PLaNT on the simulated cluster.
pub fn distributed_plant(
    g: &CsrGraph,
    ranking: &Ranking,
    cluster: &SimulatedCluster,
    config: &DistributedConfig,
) -> DistributedLabeling {
    let start = Instant::now();
    let n = g.num_vertices();
    let q = cluster.nodes();
    let partition = TaskPartition::new(q, n);
    let empty_common = CommonLabelTable::empty(n);

    let positions: Vec<Vec<u32>> = (0..q)
        .map(|node| partition.positions_of(node).collect())
        .collect();

    let outputs = run_nodes(cluster, config.execution, |node| {
        let mut scratch = PlantScratch::new(n);
        let mut labels: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        let mut explored = 0usize;
        let mut generated = 0usize;
        for &pos in &positions[node.node_id] {
            let root = ranking.vertex_at(pos);
            let tree = plant_dijkstra(
                g,
                ranking,
                root,
                config.early_termination,
                &empty_common,
                &mut scratch,
            );
            explored += tree.vertices_explored;
            generated += tree.labels.len();
            for &(v, d) in &tree.labels {
                labels[v as usize].push(LabelEntry::new(pos, d));
            }
        }
        (labels, explored, generated)
    });

    let mut metrics = RunMetrics::new("PLaNT", q);
    let mut superstep = SuperstepMetrics::default();
    let mut own_partitions: Vec<Vec<LabelSet>> = Vec::with_capacity(q);
    for ((labels, _explored, generated), busy) in outputs {
        superstep.per_node_compute.push(busy);
        superstep.labels_generated += generated;
        own_partitions.push(labels.into_iter().map(LabelSet::from_entries).collect());
    }
    // No communication at all: take() documents that nothing was recorded.
    superstep.comm = cluster.comm().take();
    metrics.supersteps.push(superstep);

    let common = CommonLabelTable::empty(n);
    finalize_metrics(&mut metrics, cluster, &own_partitions, &common, start);
    DistributedLabeling::new(own_partitions, ranking.clone(), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_cluster::ClusterSpec;
    use chl_core::canonical::is_canonical;
    use chl_core::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi, grid_network, GridOptions};
    use chl_ranking::degree_ranking;

    fn cluster(q: usize) -> SimulatedCluster {
        SimulatedCluster::new(ClusterSpec::with_nodes(q))
    }

    #[test]
    fn plant_produces_the_canonical_labeling() {
        let g = erdos_renyi(70, 0.08, 10, 41);
        let ranking = degree_ranking(&g);
        let d = distributed_plant(&g, &ranking, &cluster(4), &DistributedConfig::default());
        assert_eq!(d.assemble(), sequential_pll(&g, &ranking).index);
    }

    #[test]
    fn plant_is_canonical_on_road_like_graph() {
        let g = grid_network(
            &GridOptions {
                rows: 9,
                cols: 9,
                ..GridOptions::default()
            },
            8,
        );
        let ranking = chl_ranking::betweenness_ranking(
            &g,
            &chl_ranking::BetweennessOptions {
                samples: 16,
                degree_tiebreak: true,
            },
            2,
        );
        let d = distributed_plant(&g, &ranking, &cluster(8), &DistributedConfig::default());
        assert!(is_canonical(&g, &ranking, &d.assemble()));
    }

    #[test]
    fn no_communication_happens() {
        let g = barabasi_albert(120, 3, 3);
        let ranking = degree_ranking(&g);
        let d = distributed_plant(&g, &ranking, &cluster(8), &DistributedConfig::default());
        let comm = d.metrics.total_comm();
        assert_eq!(comm.total_bytes(), 0);
        assert_eq!(comm.total_operations(), 0);
    }

    #[test]
    fn labels_are_partitioned_by_owner() {
        let g = erdos_renyi(60, 0.1, 8, 11);
        let ranking = degree_ranking(&g);
        let q = 5;
        let d = distributed_plant(&g, &ranking, &cluster(q), &DistributedConfig::default());
        let partition = TaskPartition::new(q, g.num_vertices());
        for node in 0..q {
            for v in 0..g.num_vertices() as u32 {
                for e in d.labels_on_node(node, v).entries() {
                    assert_eq!(partition.owner_of(e.hub), node);
                }
            }
        }
        assert_eq!(
            d.labels_per_node().iter().sum::<usize>(),
            d.assemble().total_labels()
        );
    }

    #[test]
    fn compute_work_splits_across_nodes() {
        // The labeling is identical for every q, but the per-node share of
        // labels shrinks as q grows.
        let g = barabasi_albert(150, 3, 17);
        let ranking = degree_ranking(&g);
        let d1 = distributed_plant(&g, &ranking, &cluster(1), &DistributedConfig::default());
        let d8 = distributed_plant(&g, &ranking, &cluster(8), &DistributedConfig::default());
        assert_eq!(d1.assemble(), d8.assemble());
        let max_share_8 = *d8.labels_per_node().iter().max().unwrap();
        let total = d1.assemble().total_labels();
        assert!(max_share_8 < total, "labels must spread across the 8 nodes");
    }
}
