//! DparaPLL — the distributed paraPLL baseline (Qiu et al., described in §3
//! and §7.1 of the paper).
//!
//! Characteristics faithfully reproduced here:
//!
//! * roots are split across nodes rank-circularly and processed with pruned
//!   Dijkstra **without rank queries**;
//! * execution is split into a fixed number of equally sized supersteps
//!   (the paper's implementation synchronizes `log_8 n` times); at each
//!   synchronization every node broadcasts all labels it generated so the
//!   other nodes can prune with them;
//! * **every node stores the complete labeling** — the effective cluster
//!   memory is that of a single node, which is why DparaPLL runs out of
//!   memory at scale;
//! * no rank queries and no cleaning, so the label size grows with the node
//!   count (Figure 9) and the labeling is not canonical.

use std::time::Instant;

use chl_cluster::{RunMetrics, SimulatedCluster, SuperstepMetrics, TaskPartition};
use chl_core::labels::LabelSet;
use chl_core::pruned_dijkstra::DijkstraScratch;
use chl_core::table::ConcurrentLabelTable;
use chl_graph::CsrGraph;
use chl_ranking::Ranking;

use crate::config::DistributedConfig;
use crate::node::{commit_entries, construct_positions, run_nodes, wire_bytes, NodeView};
use crate::result::DistributedLabeling;

/// Runs DparaPLL on the simulated cluster.
pub fn distributed_parapll(
    g: &CsrGraph,
    ranking: &Ranking,
    cluster: &SimulatedCluster,
    config: &DistributedConfig,
) -> DistributedLabeling {
    let start = Instant::now();
    let n = g.num_vertices();
    let q = cluster.nodes();
    let partition = TaskPartition::new(q, n);
    let supersteps = config.dparapll_superstep_count(n);

    // Per-node replicated full table (every node keeps everything) and the
    // node's own contribution (used as its partition in the result).
    let mut full_tables: Vec<Vec<LabelSet>> = vec![vec![LabelSet::new(); n]; q];
    let mut own_partitions: Vec<Vec<LabelSet>> = vec![vec![LabelSet::new(); n]; q];

    let mut metrics = RunMetrics::new("DparaPLL", q);

    // Equal-size superstep ranges over rank positions.
    let step = n.div_ceil(supersteps.max(1)).max(1);
    let mut from = 0usize;
    while from < n {
        let to = (from + step).min(n);
        let range: Vec<(usize, Vec<u32>)> = (0..q)
            .map(|node| {
                (
                    node,
                    partition.positions_of_in_range(node, from as u32, to as u32),
                )
            })
            .collect();

        let outputs = run_nodes(cluster, config.execution, |node| {
            let positions = &range[node.node_id].1;
            let local = ConcurrentLabelTable::new(n);
            let view = NodeView {
                own: &full_tables[node.node_id],
                replicated: &[],
                common: None,
                local: &local,
            };
            let mut scratch = DijkstraScratch::new(n);
            // paraPLL: no rank queries.
            let records = construct_positions(g, ranking, positions, &view, false, &mut scratch);
            (records, local.drain_all())
        });

        // Synchronization: every node broadcasts the labels it generated.
        let mut superstep = SuperstepMetrics::default();
        let mut per_node_new: Vec<Vec<Vec<chl_core::labels::LabelEntry>>> = Vec::with_capacity(q);
        for (node, ((records, entries), busy)) in outputs.into_iter().enumerate() {
            let generated: usize = records.iter().map(|r| r.labels_generated).sum();
            superstep.labels_generated += generated;
            superstep.per_node_compute.push(busy);
            cluster.comm().record_broadcast(wire_bytes(generated));
            let _ = node;
            per_node_new.push(entries);
        }
        superstep.comm = cluster.comm().take();

        // Apply the exchange: every node's new labels land in every full
        // table; the generating node also keeps them as its own partition.
        for (node, entries) in per_node_new.into_iter().enumerate() {
            commit_entries(&mut own_partitions[node], entries.clone());
            for table in full_tables.iter_mut() {
                commit_entries(table, entries.clone());
            }
        }

        metrics.supersteps.push(superstep);
        from = to;
    }

    metrics.wall_time = start.elapsed();
    metrics.labels_per_node = full_tables
        .iter()
        .map(|t| t.iter().map(LabelSet::len).sum())
        .collect();
    metrics.peak_node_label_bytes = full_tables
        .iter()
        .map(|t| t.iter().map(LabelSet::memory_bytes).sum())
        .max()
        .unwrap_or(0);
    metrics.out_of_memory = metrics.peak_node_label_bytes > cluster.spec().memory_per_node_bytes;

    // DparaPLL replicates storage: the result's partitions are the full
    // tables so per-node memory accounting reflects the replication.
    DistributedLabeling::new(full_tables, ranking.clone(), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_cluster::ClusterSpec;
    use chl_core::canonical::satisfies_cover_property;
    use chl_core::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi};
    use chl_ranking::degree_ranking;

    fn cluster(q: usize) -> SimulatedCluster {
        SimulatedCluster::new(ClusterSpec::with_nodes(q))
    }

    #[test]
    fn queries_are_exact() {
        let g = erdos_renyi(60, 0.08, 12, 5);
        let ranking = degree_ranking(&g);
        let d = distributed_parapll(&g, &ranking, &cluster(4), &DistributedConfig::default());
        assert!(satisfies_cover_property(&g, &d.assemble()));
    }

    #[test]
    fn label_size_grows_with_node_count() {
        let g = barabasi_albert(150, 3, 7);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index.average_label_size();
        let als1 = distributed_parapll(&g, &ranking, &cluster(1), &DistributedConfig::default())
            .average_label_size();
        let als8 = distributed_parapll(&g, &ranking, &cluster(8), &DistributedConfig::default())
            .average_label_size();
        assert!(als1 >= canonical - 1e-9);
        assert!(
            als8 >= als1,
            "ALS must not shrink with more nodes (als1={als1}, als8={als8})"
        );
    }

    #[test]
    fn every_node_stores_the_full_labeling() {
        let g = erdos_renyi(50, 0.1, 8, 3);
        let ranking = degree_ranking(&g);
        let d = distributed_parapll(&g, &ranking, &cluster(4), &DistributedConfig::default());
        let per_node = d.labels_per_node();
        let assembled = d.assemble().total_labels();
        for &count in &per_node {
            assert_eq!(
                count, assembled,
                "replicated storage: every node holds everything"
            );
        }
    }

    #[test]
    fn broadcasts_happen_every_superstep() {
        let g = erdos_renyi(60, 0.08, 8, 9);
        let ranking = degree_ranking(&g);
        let d = distributed_parapll(&g, &ranking, &cluster(4), &DistributedConfig::default());
        let comm = d.metrics.total_comm();
        assert!(comm.broadcast_bytes > 0);
        assert!(comm.broadcasts >= d.metrics.supersteps.len() as u64);
        assert!(d.metrics.labels_generated() > 0);
    }

    #[test]
    fn single_node_matches_sequential_pll() {
        let g = erdos_renyi(40, 0.12, 6, 13);
        let ranking = degree_ranking(&g);
        let d = distributed_parapll(&g, &ranking, &cluster(1), &DistributedConfig::default());
        assert_eq!(d.assemble(), sequential_pll(&g, &ranking).index);
    }
}
