//! Differential property tests for path reconstruction, distance matrices
//! and top-k / within-radius queries, proven against Dijkstra ground truth
//! on every storage backend: owned [`FlatIndex`], borrowed flat view,
//! compressed view, mmap (flat and compressed) and sharded restrictions.
//!
//! The properties:
//!
//! - every reconstructed path is a **contiguous edge walk** of the source
//!   graph whose weight sum is exactly `distance(u, v)` — exactly what
//!   Dijkstra reports — with `Ok(None)` on disconnected and out-of-range
//!   pairs and `Ok(Some([u]))` on the diagonal;
//! - `matrix` / `topk` / `within_radius` answer byte-identically to the
//!   brute-force per-pair map of the same backend, at 1, 2 and 8 rayon
//!   threads (the pivoted kernel must not reorder or approximate);
//! - the hub witness reported by `query_with_hub` is a real witness:
//!   `dist(u, h) + dist(h, v) == dist(u, v)` against Dijkstra truth, on
//!   both the flat and the compressed storage (the deduplicated join is
//!   shared, so parity here pins the regression fixed in the dedupe);
//! - sharded restrictions are shard-honest: foreign endpoints answer
//!   [`PathError::NotThisShard`]; pairs they do answer answer exactly like
//!   the unsharded index.

use std::collections::HashMap;

use proptest::prelude::*;

use chl_core::flat::FlatIndex;
use chl_core::mapped::MmapIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::paths::{attach_parents, PathError, PathOracle};
use chl_core::persist::{self, AlignedBytes, SaveOptions, ShardSpec};
use chl_core::pll::sequential_pll;
use chl_graph::sssp::dijkstra;
use chl_graph::types::{Distance, VertexId, INFINITY};
use chl_graph::{CsrGraph, GraphBuilder};
use chl_ranking::degree_ranking;

/// Strategy: a small weighted undirected graph — sparse enough for
/// disconnected components to occur, dense enough for multi-hop paths.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..20,
        proptest::collection::vec((0u32..20, 0u32..20, 1u32..30), 1..60),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("positive weights")
        })
}

/// All-pairs Dijkstra ground truth: `truth[u][v]`.
fn ground_truth(g: &CsrGraph) -> Vec<Vec<Distance>> {
    (0..g.num_vertices() as VertexId)
        .map(|s| dijkstra(g, s))
        .collect()
}

/// Undirected edge-weight lookup for walk verification.
fn edge_weights(g: &CsrGraph) -> HashMap<(VertexId, VertexId), u64> {
    g.edges()
        .flat_map(|e| [((e.u, e.v), e.w as u64), ((e.v, e.u), e.w as u64)])
        .collect()
}

/// Asserts one backend's `path()` against Dijkstra truth for every pair,
/// including out-of-range ids: `None` exactly where Dijkstra says
/// `INFINITY`, otherwise a contiguous edge walk with the exact weight sum.
fn assert_paths_match_truth<O: PathOracle>(
    oracle: &O,
    truth: &[Vec<Distance>],
    weights: &HashMap<(VertexId, VertexId), u64>,
    n: u32,
    tag: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(oracle.has_path_data(), "{} should carry path data", tag);
    for u in 0..n + 2 {
        for v in 0..n + 2 {
            let walk = oracle.path(u, v);
            if u >= n || v >= n {
                prop_assert_eq!(walk, Ok(None), "{} oor ({}, {})", tag, u, v);
                continue;
            }
            let d = truth[u as usize][v as usize];
            if d == INFINITY {
                prop_assert_eq!(walk, Ok(None), "{} disconnected ({}, {})", tag, u, v);
                continue;
            }
            let walk = match walk {
                Ok(Some(walk)) => walk,
                other => {
                    return Err(TestCaseError::fail(format!(
                        "{tag}: reachable pair ({u}, {v}) answered {other:?}"
                    )))
                }
            };
            prop_assert_eq!(walk.first().copied(), Some(u), "{} starts at u", tag);
            prop_assert_eq!(walk.last().copied(), Some(v), "{} ends at v", tag);
            if u == v {
                prop_assert_eq!(&walk, &vec![u], "{} diagonal is [u]", tag);
            }
            let mut sum = 0u64;
            for hop in walk.windows(2) {
                match weights.get(&(hop[0], hop[1])) {
                    Some(&w) => sum += w,
                    None => {
                        return Err(TestCaseError::fail(format!(
                            "{tag}: ({}, {}) in path {walk:?} is not an edge",
                            hop[0], hop[1]
                        )))
                    }
                }
            }
            prop_assert_eq!(
                sum,
                d,
                "{} weight sum of {:?} for ({}, {})",
                tag,
                &walk,
                u,
                v
            );
        }
    }
    Ok(())
}

/// Asserts `matrix` / `topk` / `within_radius` against the brute-force
/// per-pair map of the same backend, at 1, 2 and 8 rayon threads.
fn assert_batch_ops_match_brute_force<O: DistanceOracle>(
    oracle: &O,
    sources: &[VertexId],
    targets: &[VertexId],
    tag: &str,
) -> Result<(), TestCaseError> {
    let brute: Vec<Distance> = sources
        .iter()
        .flat_map(|&s| targets.iter().map(move |&t| oracle.distance(s, t)))
        .collect();
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("test pool");
        let block = pool.install(|| oracle.matrix(sources, targets));
        prop_assert_eq!(&block, &brute, "{} matrix at {} threads", tag, threads);
    }
    if let Some(&source) = sources.first() {
        // Brute-force top-k: the same (distance, id) ascending order the
        // provided method documents, truncated after the sort.
        let mut hits: Vec<(VertexId, Distance)> = targets
            .iter()
            .map(|&t| (t, oracle.distance(source, t)))
            .filter(|&(_, d)| d != INFINITY)
            .collect();
        hits.sort_unstable_by_key(|&(t, d)| (d, t));
        for k in [0usize, 1, 2, targets.len(), targets.len() + 3] {
            let mut expect = hits.clone();
            expect.truncate(k);
            prop_assert_eq!(
                oracle.topk(source, targets, k),
                expect,
                "{} topk k={}",
                tag,
                k
            );
        }
        let radii: Vec<Distance> = [0, 1]
            .into_iter()
            .chain(hits.iter().map(|&(_, d)| d))
            .collect();
        for radius in radii {
            let expect: Vec<(VertexId, Distance)> =
                hits.iter().copied().filter(|&(_, d)| d <= radius).collect();
            prop_assert_eq!(
                oracle.within_radius(source, targets, radius),
                expect,
                "{} within_radius r={}",
                tag,
                radius
            );
        }
    }
    Ok(())
}

fn scratch_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "chl-proptest-paths-{}-{:?}-{tag}.chl",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole differential: paths, matrices and top-k on all five
    /// backends against Dijkstra ground truth.
    #[test]
    fn paths_and_batch_ops_match_dijkstra_on_every_backend(
        g in arb_graph(),
        picks in proptest::collection::vec(any::<u32>(), 2..10),
    ) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = attach_parents(&g, FlatIndex::from_index(&index)).expect("graph matches");
        let n = g.num_vertices() as u32;
        let truth = ground_truth(&g);
        let weights = edge_weights(&g);

        let flat_bytes = AlignedBytes::from_slice(&flat.to_bytes());
        let flat_view = persist::open_view(&flat_bytes).expect("flat bytes view");
        let comp_bytes =
            AlignedBytes::from_slice(&flat.to_bytes_with(&SaveOptions::compressed()));
        let comp_view = persist::open_view(&comp_bytes).expect("compressed bytes view");
        let flat_path = scratch_file("flat", &flat_bytes);
        let comp_path = scratch_file("comp", &comp_bytes);
        let mmap_flat = MmapIndex::open(&flat_path).expect("flat file maps");
        let mmap_comp = MmapIndex::open(&comp_path).expect("compressed file maps");

        assert_paths_match_truth(&flat, &truth, &weights, n, "flat")?;
        assert_paths_match_truth(&flat_view, &truth, &weights, n, "flat view")?;
        assert_paths_match_truth(&comp_view, &truth, &weights, n, "compressed view")?;
        assert_paths_match_truth(&mmap_flat, &truth, &weights, n, "mmap flat")?;
        assert_paths_match_truth(&mmap_comp, &truth, &weights, n, "mmap compressed")?;

        // Duplicate ids are legal in matrix/topk inputs and contribute one
        // row/column per occurrence; fold a few in deliberately.
        let sources: Vec<VertexId> = picks.iter().map(|&p| p % n).collect();
        let mut targets: Vec<VertexId> = picks.iter().rev().map(|&p| p.rotate_left(7) % n).collect();
        targets.push(sources[0]);
        assert_batch_ops_match_brute_force(&flat, &sources, &targets, "flat")?;
        assert_batch_ops_match_brute_force(&flat_view, &sources, &targets, "flat view")?;
        assert_batch_ops_match_brute_force(&comp_view, &sources, &targets, "compressed view")?;
        assert_batch_ops_match_brute_force(&mmap_flat, &sources, &targets, "mmap flat")?;
        assert_batch_ops_match_brute_force(&mmap_comp, &sources, &targets, "mmap compressed")?;

        // Empty sides: a 0×t and s×0 block are both the empty vector.
        prop_assert_eq!(flat.matrix(&[], &targets), Vec::<Distance>::new());
        prop_assert_eq!(flat.matrix(&sources, &[]), Vec::<Distance>::new());

        std::fs::remove_file(&flat_path).ok();
        std::fs::remove_file(&comp_path).ok();
    }

    /// The hub witness of `query_with_hub` is a real witness against
    /// Dijkstra truth, and flat/compressed storage agree on it exactly
    /// (both go through the deduplicated join; this is the parity property
    /// for the dedupe that replaced the three per-backend copies).
    #[test]
    fn hub_witness_parity_against_dijkstra(g in arb_graph()) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = FlatIndex::from_index(&index);
        let n = g.num_vertices() as u32;
        let truth = ground_truth(&g);

        let comp_bytes =
            AlignedBytes::from_slice(&flat.to_bytes_with(&SaveOptions::compressed()));
        let comp_view = persist::open_view(&comp_bytes).expect("compressed bytes view");

        for u in 0..n {
            for v in 0..n {
                let d = truth[u as usize][v as usize];
                let witness = flat.query_with_hub(u, v);
                prop_assert_eq!(
                    comp_view.query_with_hub(u, v),
                    witness,
                    "storage parity ({}, {})", u, v
                );
                match witness {
                    None => prop_assert_eq!(d, INFINITY, "({}, {})", u, v),
                    Some((hub, dist)) => {
                        prop_assert_eq!(dist, d, "({}, {})", u, v);
                        // A witness hub lies ON a shortest path: the two
                        // legs through it sum to the distance exactly.
                        let through = truth[u as usize][hub as usize]
                            .saturating_add(truth[hub as usize][v as usize]);
                        prop_assert_eq!(through, d, "hub {} for ({}, {})", hub, u, v);
                    }
                }
            }
        }
    }

    /// Sharded restrictions are shard-honest on paths and exact on the
    /// batch ops they answer.
    #[test]
    fn sharded_backends_are_shard_honest(g in arb_graph(), stride in 2u32..4) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = attach_parents(&g, FlatIndex::from_index(&index)).expect("graph matches");
        let n = g.num_vertices() as u32;

        let spec = ShardSpec {
            shard_id: 0,
            shard_count: 3,
            zeta: 2,
            owned: (0..n).step_by(stride as usize).collect(),
        };
        let owned: Vec<VertexId> = spec.owned.clone();
        let shard = flat.restrict_to_shard(spec).expect("valid shard spec");
        prop_assert!(shard.has_path_data(), "parents survive restriction");
        let shard_path = scratch_file("shard", &shard.to_bytes());
        let mapped = MmapIndex::open(&shard_path).expect("shard file maps");

        for u in 0..n {
            for v in 0..n {
                let expect = flat.path(u, v);
                for (backend, tag) in [(shard.path(u, v), "owned"), (mapped.path(u, v), "mmap")] {
                    if !owned.contains(&u) || !owned.contains(&v) {
                        // A foreign endpoint is refused by name, never
                        // half-answered.
                        let foreign = if owned.contains(&u) { v } else { u };
                        prop_assert_eq!(
                            backend,
                            Err(PathError::NotThisShard { vertex: foreign }),
                            "{} foreign endpoint ({}, {})", tag, u, v
                        );
                        continue;
                    }
                    // Both endpoints owned: the shard either answers exactly
                    // like the full index or names the interior vertex whose
                    // chain left the shard — it never fabricates a path.
                    match backend {
                        Err(PathError::NotThisShard { vertex }) => prop_assert!(
                            !owned.contains(&vertex),
                            "{} blamed owned vertex {} for ({}, {})", tag, vertex, u, v
                        ),
                        other => prop_assert_eq!(
                            other,
                            expect.clone(),
                            "{} owned pair ({}, {})", tag, u, v
                        ),
                    }
                }
            }
        }

        // Batch ops stay self-consistent on the shard's own (partial)
        // labeling: the pivoted matrix equals the shard's per-pair answers.
        if !owned.is_empty() {
            assert_batch_ops_match_brute_force(&shard, &owned, &owned, "shard owned")?;
            assert_batch_ops_match_brute_force(&mapped, &owned, &owned, "shard mmap")?;
        }
        std::fs::remove_file(&shard_path).ok();
    }
}
