//! Property-based tests for the persistence subsystem: for arbitrary graphs,
//! every serving path over the `.chl` format — the copying loader, the
//! zero-copy borrowed view and the mmap-backed index — answers every query
//! byte-identically to the in-memory index it came from, for both entries
//! encodings (flat records and delta+varint compressed); flat↔compressed
//! round trips are lossless and re-encoding is byte-stable; and random
//! single-byte corruption (anywhere in the file, skip table and padding
//! included) never loads successfully and never panics, in either format
//! version and either encoding.

use proptest::prelude::*;

use chl_core::flat::FlatIndex;
use chl_core::mapped::MmapIndex;
use chl_core::persist::{self, AlignedBytes, SaveOptions};
use chl_core::pll::sequential_pll;
use chl_graph::{CsrGraph, GraphBuilder};
use chl_ranking::degree_ranking;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..24,
        proptest::collection::vec((0u32..24, 0u32..24, 1u32..50), 1..80),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("positive weights")
        })
}

fn scratch_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "chl-proptest-{}-{:?}-{tag}.chl",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flat_round_trip_is_query_identical(g in arb_graph()) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;

        let flat = FlatIndex::from_index(&index);
        let bytes = flat.to_bytes();
        let reloaded = FlatIndex::from_bytes(&bytes).expect("clean bytes load");

        prop_assert_eq!(&reloaded, &flat);
        prop_assert_eq!(reloaded.to_index().expect("valid shape"), index.clone());

        let n = g.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(reloaded.query(u, v), index.query(u, v));
                prop_assert_eq!(reloaded.query_with_hub(u, v), index.query_with_hub(u, v));
            }
        }
    }

    #[test]
    fn v1_round_trip_is_query_identical(g in arb_graph()) {
        // Legacy files keep loading through the copying path, losslessly.
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = FlatIndex::from_index(&index);
        let reloaded = FlatIndex::from_bytes(&persist::to_bytes_v1(&flat))
            .expect("v1 bytes load");
        prop_assert_eq!(&reloaded, &flat);
    }

    #[test]
    fn owned_view_and_mmap_backends_answer_byte_identically(g in arb_graph()) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let owned = FlatIndex::from_index(&index);

        // Zero-copy view borrowed straight from the serialized bytes.
        let aligned = AlignedBytes::from_slice(&owned.to_bytes());
        let view = persist::view_bytes(&aligned).expect("clean v2 bytes view");

        // Mmap-backed index over the same bytes written to a real file.
        let path = scratch_file("parity", &aligned);
        let mapped = MmapIndex::open(&path).expect("clean v2 file maps");

        let n = g.num_vertices() as u32;
        // Include out-of-range ids: every backend must answer INFINITY/None,
        // never panic, through identical code paths.
        for u in 0..n + 2 {
            for v in 0..n + 2 {
                let expect = index.query(u, v);
                prop_assert_eq!(owned.query(u, v), expect, "owned ({}, {})", u, v);
                prop_assert_eq!(view.query(u, v), expect, "view ({}, {})", u, v);
                prop_assert_eq!(mapped.view().query(u, v), expect, "mmap ({}, {})", u, v);
                let expect_hub = index.query_with_hub(u, v);
                prop_assert_eq!(view.query_with_hub(u, v), expect_hub);
                prop_assert_eq!(mapped.view().query_with_hub(u, v), expect_hub);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_byte_corruption_never_loads(g in arb_graph(), pos in 0usize..10_000, flip in 1u8..=255) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let mut bytes = FlatIndex::from_index(&index).to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;

        // Whatever byte was flipped — header, section data, alignment
        // padding — every loader must reject the file with a typed error:
        // the copying path, the zero-copy view and the mmap open alike.
        prop_assert!(FlatIndex::from_bytes(&bytes).is_err(), "copy-load, flip at byte {}", pos);
        let aligned = AlignedBytes::from_slice(&bytes);
        prop_assert!(persist::view_bytes(&aligned).is_err(), "view, flip at byte {}", pos);
        let path = scratch_file("corrupt", &bytes);
        prop_assert!(MmapIndex::open(&path).is_err(), "mmap, flip at byte {}", pos);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_and_compressed_round_trips_are_query_identical(g in arb_graph()) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = FlatIndex::from_index(&index);

        let flat_bytes = flat.to_bytes();
        let comp_bytes = flat.to_bytes_with(&SaveOptions::compressed());
        // The compressed file decodes back to the identical index...
        let from_flat = FlatIndex::from_bytes(&flat_bytes).expect("flat bytes load");
        let from_comp = FlatIndex::from_bytes(&comp_bytes).expect("compressed bytes load");
        prop_assert_eq!(&from_comp, &flat);
        prop_assert_eq!(&from_comp, &from_flat);

        // ...and every borrowed serving path over the compressed bytes
        // answers byte-identically to the in-memory index, including
        // out-of-range ids.
        let aligned = AlignedBytes::from_slice(&comp_bytes);
        let view = persist::open_view(&aligned).expect("clean compressed bytes view");
        prop_assert!(view.is_compressed());
        let path = scratch_file("comp-parity", &comp_bytes);
        let mapped = MmapIndex::open(&path).expect("clean compressed file opens");
        prop_assert!(mapped.is_compressed());
        let n = g.num_vertices() as u32;
        for u in 0..n + 2 {
            for v in 0..n + 2 {
                let expect = index.query(u, v);
                prop_assert_eq!(view.query(u, v), expect, "view ({}, {})", u, v);
                prop_assert_eq!(mapped.view().query(u, v), expect, "mmap ({}, {})", u, v);
                let expect_hub = index.query_with_hub(u, v);
                prop_assert_eq!(view.query_with_hub(u, v), expect_hub);
                prop_assert_eq!(mapped.view().query_with_hub(u, v), expect_hub);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_re_encoding_is_byte_stable(g in arb_graph()) {
        let ranking = degree_ranking(&g);
        let flat = FlatIndex::from_index(&sequential_pll(&g, &ranking).index);
        let comp = flat.to_bytes_with(&SaveOptions::compressed());
        // decode → re-encode reproduces the exact bytes (canonical varints
        // make the encoding injective), through both load paths.
        let decoded = FlatIndex::from_bytes(&comp).expect("compressed bytes load");
        prop_assert_eq!(&decoded.to_bytes_with(&SaveOptions::compressed()), &comp);
        let aligned = AlignedBytes::from_slice(&comp);
        let reowned = persist::open_view(&aligned).expect("view").to_owned_index();
        prop_assert_eq!(&reowned.to_bytes_with(&SaveOptions::compressed()), &comp);
        // Crossing encodings is stable too: flat bytes of the decoded
        // index equal the directly written flat bytes.
        prop_assert_eq!(decoded.to_bytes(), flat.to_bytes());
    }

    #[test]
    fn single_byte_corruption_never_loads_compressed(g in arb_graph(), pos in 0usize..10_000, flip in 1u8..=255) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let mut bytes = FlatIndex::from_index(&index).to_bytes_with(&SaveOptions::compressed());
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;

        // Whatever byte was flipped — header, flags word, skip table,
        // encoded blob, alignment padding — every loader must reject the
        // file with a typed error, never a panic.
        prop_assert!(FlatIndex::from_bytes(&bytes).is_err(), "copy-load, flip at byte {}", pos);
        let aligned = AlignedBytes::from_slice(&bytes);
        prop_assert!(persist::open_view(&aligned).is_err(), "open_view, flip at byte {}", pos);
        prop_assert!(persist::view_bytes(&aligned).is_err(), "view_bytes, flip at byte {}", pos);
        let path = scratch_file("comp-corrupt", &bytes);
        prop_assert!(MmapIndex::open(&path).is_err(), "mmap, flip at byte {}", pos);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_byte_corruption_never_loads_v1(g in arb_graph(), pos in 0usize..10_000, flip in 1u8..=255) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let mut bytes = persist::to_bytes_v1(&FlatIndex::from_index(&index));
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(FlatIndex::from_bytes(&bytes).is_err(), "flip at byte {}", pos);
    }
}
