//! Property-based tests for the persistence subsystem: for arbitrary graphs,
//! the chain `HubLabelIndex -> FlatIndex -> bytes -> FlatIndex` loses nothing
//! — the reloaded index answers every query identically to the in-memory one
//! — and random single-byte corruption never loads successfully and never
//! panics.

use proptest::prelude::*;

use chl_core::flat::FlatIndex;
use chl_core::pll::sequential_pll;
use chl_graph::{CsrGraph, GraphBuilder};
use chl_ranking::degree_ranking;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..24,
        proptest::collection::vec((0u32..24, 0u32..24, 1u32..50), 1..80),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("positive weights")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flat_round_trip_is_query_identical(g in arb_graph()) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;

        let flat = FlatIndex::from_index(&index);
        let bytes = flat.to_bytes();
        let reloaded = FlatIndex::from_bytes(&bytes).expect("clean bytes load");

        prop_assert_eq!(&reloaded, &flat);
        prop_assert_eq!(reloaded.to_index().expect("valid shape"), index.clone());

        let n = g.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(reloaded.query(u, v), index.query(u, v));
                prop_assert_eq!(reloaded.query_with_hub(u, v), index.query_with_hub(u, v));
            }
        }
    }

    #[test]
    fn single_byte_corruption_never_loads(g in arb_graph(), pos in 0usize..10_000, flip in 1u8..=255) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let mut bytes = FlatIndex::from_index(&index).to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;

        // Whatever byte was flipped, the loader must reject the file with a
        // typed error (magic, version, length, checksum or semantic check) —
        // reporting success would mean serving from corrupt data.
        prop_assert!(FlatIndex::from_bytes(&bytes).is_err(), "flip at byte {}", pos);
    }
}
