//! Golden-file corpus for the `.chl` format: one small deterministic graph,
//! checked in as v1, v2-flat and v2-compressed index files together with its
//! full pinned distance table. Every fixture must keep loading through every
//! applicable path and answering the pinned table byte-identically, and
//! re-serializing a loaded fixture must reproduce its bytes exactly — so any
//! accidental format drift in a future PR fails here before it ships.
//!
//! Regenerating (only when the format changes *on purpose*):
//!
//! ```text
//! CHL_REGEN_FIXTURES=1 cargo test -p chl-core --test golden_files
//! ```

use std::path::{Path, PathBuf};

use chl_core::flat::FlatIndex;
use chl_core::mapped::MmapIndex;
use chl_core::persist::{self, AlignedBytes, SaveOptions};
use chl_core::pll::sequential_pll;
use chl_graph::generators::{grid_network, GridOptions};
use chl_graph::types::INFINITY;
use chl_ranking::degree_ranking;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The corpus graph: a 4x4 weighted grid, fully deterministic (seeded
/// generator, vendored RNG, sequential constructor).
fn build_golden() -> FlatIndex {
    let g = grid_network(
        &GridOptions {
            rows: 4,
            cols: 4,
            ..GridOptions::default()
        },
        9,
    );
    let ranking = degree_ranking(&g);
    FlatIndex::from_index(&sequential_pll(&g, &ranking).index)
}

fn distance_table(index: &FlatIndex) -> String {
    let n = index.num_vertices() as u32;
    let mut out = String::new();
    for u in 0..n {
        let row: Vec<String> = (0..n)
            .map(|v| {
                let d = index.query(u, v);
                if d == INFINITY {
                    "inf".to_string()
                } else {
                    d.to_string()
                }
            })
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out
}

fn regen(dir: &Path) {
    let golden = build_golden();
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("golden.v1.chl"), persist::to_bytes_v1(&golden)).unwrap();
    std::fs::write(dir.join("golden.v2-flat.chl"), golden.to_bytes()).unwrap();
    std::fs::write(
        dir.join("golden.v2-compressed.chl"),
        golden.to_bytes_with(&SaveOptions::compressed()),
    )
    .unwrap();
    std::fs::write(dir.join("golden.distances.txt"), distance_table(&golden)).unwrap();
}

fn pinned_table(dir: &Path) -> Vec<Vec<u64>> {
    let text = std::fs::read_to_string(dir.join("golden.distances.txt"))
        .expect("fixture corpus present (CHL_REGEN_FIXTURES=1 to create)");
    text.lines()
        .map(|line| {
            line.split_whitespace()
                .map(|tok| {
                    if tok == "inf" {
                        INFINITY
                    } else {
                        tok.parse().expect("pinned distance")
                    }
                })
                .collect()
        })
        .collect()
}

/// Asserts `query` answers exactly the pinned table, including out-of-range
/// ids beyond it.
fn assert_answers(table: &[Vec<u64>], tag: &str, query: impl Fn(u32, u32) -> u64) {
    let n = table.len() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(
                query(u, v),
                table[u as usize][v as usize],
                "{tag}: ({u}, {v})"
            );
        }
    }
    assert_eq!(query(n, 0), INFINITY, "{tag}: out of range");
    assert_eq!(query(n, n), INFINITY, "{tag}: out of range self");
}

#[test]
fn fixtures_load_everywhere_and_answer_the_pinned_distance_table() {
    let dir = fixtures_dir();
    if std::env::var_os("CHL_REGEN_FIXTURES").is_some() {
        regen(&dir);
    }
    let table = pinned_table(&dir);
    assert_eq!(table.len(), 16, "4x4 grid corpus");

    // v1: the copying path only.
    let v1_bytes = std::fs::read(dir.join("golden.v1.chl")).unwrap();
    let v1 = FlatIndex::from_bytes(&v1_bytes).expect("v1 fixture loads");
    assert_answers(&table, "v1 copy-load", |u, v| v1.query(u, v));
    assert_eq!(
        persist::to_bytes_v1(&v1),
        v1_bytes,
        "re-serializing the loaded v1 fixture must be byte-identical"
    );

    // v2 flat: copy-load, zero-copy view and mmap.
    let flat_path = dir.join("golden.v2-flat.chl");
    let flat_bytes = std::fs::read(&flat_path).unwrap();
    let flat = FlatIndex::from_bytes(&flat_bytes).expect("v2-flat fixture loads");
    assert_answers(&table, "v2-flat copy-load", |u, v| flat.query(u, v));
    let aligned = AlignedBytes::from_slice(&flat_bytes);
    let view = persist::view_bytes(&aligned).expect("v2-flat fixture views");
    assert_answers(&table, "v2-flat view", |u, v| view.query(u, v));
    let mapped = MmapIndex::open(&flat_path).expect("v2-flat fixture maps");
    assert!(!mapped.is_compressed());
    assert_answers(&table, "v2-flat mmap", |u, v| mapped.view().query(u, v));
    assert_eq!(
        flat.to_bytes(),
        flat_bytes,
        "re-serializing the loaded v2-flat fixture must be byte-identical"
    );

    // v2 compressed: decode-on-load, streaming view and mmap.
    let comp_path = dir.join("golden.v2-compressed.chl");
    let comp_bytes = std::fs::read(&comp_path).unwrap();
    let comp = FlatIndex::from_bytes(&comp_bytes).expect("v2-compressed fixture loads");
    assert_answers(&table, "v2-compressed copy-load", |u, v| comp.query(u, v));
    let aligned = AlignedBytes::from_slice(&comp_bytes);
    let view = persist::open_view(&aligned).expect("v2-compressed fixture views");
    assert!(view.is_compressed());
    assert_answers(&table, "v2-compressed view", |u, v| view.query(u, v));
    let mapped = MmapIndex::open(&comp_path).expect("v2-compressed fixture maps");
    assert!(mapped.is_compressed());
    assert_answers(&table, "v2-compressed mmap", |u, v| {
        mapped.view().query(u, v)
    });
    assert_eq!(
        comp.to_bytes_with(&SaveOptions::compressed()),
        comp_bytes,
        "re-serializing the loaded v2-compressed fixture must be byte-identical"
    );

    // The three fixtures are one index in three coats.
    assert_eq!(v1, flat);
    assert_eq!(flat, comp);

    // Sanity on the corpus itself: the headers disagree only where the
    // format does.
    let flat_header = persist::parse_header(&flat_bytes).unwrap();
    let comp_header = persist::parse_header(&comp_bytes).unwrap();
    assert!(!flat_header.is_compressed());
    assert!(comp_header.is_compressed());
    assert_eq!(flat_header.num_entries, comp_header.num_entries);
    assert!(
        comp_bytes.len() < flat_bytes.len(),
        "compressed fixture must be smaller ({} vs {} bytes)",
        comp_bytes.len(),
        flat_bytes.len()
    );
}
