//! Golden-file corpus for the `.chl` format: one small deterministic graph,
//! checked in as v1, v2-flat, v2-compressed, v3-flat, v3-compressed and
//! three v3 shard files together with its full pinned distance table. Every
//! fixture must keep loading through every applicable path and answering
//! the pinned table byte-identically, and re-serializing a loaded fixture
//! must reproduce its bytes exactly — so any accidental format drift in a
//! future PR fails here before it ships.
//!
//! Compat policy: v1 and v2 are frozen. The checked-in v1/v2 byte streams
//! never change, keep loading forever, and `SaveOptions::v2` keeps
//! reproducing them bit-for-bit; new capabilities (header CRC, shard
//! section) exist only in v3.
//!
//! The shard fixtures pin the QDOL layout for 3 shards over 16 vertices
//! (ζ = 3, contiguous chunks of 6). The owned sets hard-coded here are
//! asserted equal to the real derivation in
//! `chl-query::qdol::shard_map_covers_every_query_and_pins_the_q3_layout`,
//! which keeps this crate free of a dev-dependency cycle while tying the
//! fixtures to the code that produces real shard files.
//!
//! Regenerating (only when the format changes *on purpose*):
//!
//! ```text
//! CHL_REGEN_FIXTURES=1 cargo test -p chl-core --test golden_files
//! ```

use std::path::{Path, PathBuf};

use chl_core::flat::{FlatIndex, NotThisShard};
use chl_core::mapped::MmapIndex;
use chl_core::paths::{attach_parents, PathError, PathOracle};
use chl_core::persist::{self, AlignedBytes, SaveOptions, ShardSpec};
use chl_core::pll::sequential_pll;
use chl_graph::generators::{grid_network, GridOptions};
use chl_graph::types::{VertexId, INFINITY};
use chl_graph::CsrGraph;
use chl_ranking::degree_ranking;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The corpus graph: a 4x4 weighted grid, fully deterministic (seeded
/// generator, vendored RNG, sequential constructor).
fn golden_graph() -> CsrGraph {
    grid_network(
        &GridOptions {
            rows: 4,
            cols: 4,
            ..GridOptions::default()
        },
        9,
    )
}

fn build_golden() -> FlatIndex {
    let g = golden_graph();
    let ranking = degree_ranking(&g);
    FlatIndex::from_index(&sequential_pll(&g, &ranking).index)
}

/// The pinned QDOL shard layout for 3 shards over the 16-vertex corpus:
/// shard pairs (0,1), (0,2), (1,2) over partitions {0..6}, {6..12},
/// {12..16}. Must match `QdolShardMap::new(3, 16)` — see the module docs.
fn shard_specs() -> Vec<ShardSpec> {
    let owned = |ranges: &[std::ops::Range<VertexId>]| -> Vec<VertexId> {
        ranges.iter().flat_map(|r| r.clone()).collect()
    };
    vec![
        ShardSpec {
            shard_id: 0,
            shard_count: 3,
            zeta: 3,
            owned: owned(&[0..6, 6..12]),
        },
        ShardSpec {
            shard_id: 1,
            shard_count: 3,
            zeta: 3,
            owned: owned(&[0..6, 12..16]),
        },
        ShardSpec {
            shard_id: 2,
            shard_count: 3,
            zeta: 3,
            owned: owned(&[6..12, 12..16]),
        },
    ]
}

fn shard_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("golden.v3-shard-{i}-of-3.chl"))
}

fn distance_table(index: &FlatIndex) -> String {
    let n = index.num_vertices() as u32;
    let mut out = String::new();
    for u in 0..n {
        let row: Vec<String> = (0..n)
            .map(|v| {
                let d = index.query(u, v);
                if d == INFINITY {
                    "inf".to_string()
                } else {
                    d.to_string()
                }
            })
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out
}

/// The pinned path table: one line per pair, `u v: a b c ... z` for the
/// reconstructed walk or `u v: unreachable`. Path answers are exact, not
/// just weight-equal, because the parent derivation is deterministic
/// (first CSR-order witness), so the whole walk is pinnable.
fn path_table(index: &FlatIndex) -> String {
    let n = index.num_vertices() as u32;
    let mut out = String::new();
    for u in 0..n {
        for v in 0..n {
            let line = match index.path(u, v).expect("paths fixture answers") {
                Some(walk) => walk
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(" "),
                None => "unreachable".to_string(),
            };
            out.push_str(&format!("{u} {v}: {line}\n"));
        }
    }
    out
}

fn regen(dir: &Path) {
    let golden = build_golden();
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("golden.v1.chl"), persist::to_bytes_v1(&golden)).unwrap();
    std::fs::write(
        dir.join("golden.v2-flat.chl"),
        golden.to_bytes_with(&SaveOptions::v2()),
    )
    .unwrap();
    std::fs::write(
        dir.join("golden.v2-compressed.chl"),
        golden.to_bytes_with(&SaveOptions {
            compress: true,
            version: persist::VERSION_V2,
        }),
    )
    .unwrap();
    std::fs::write(dir.join("golden.v3-flat.chl"), golden.to_bytes()).unwrap();
    std::fs::write(
        dir.join("golden.v3-compressed.chl"),
        golden.to_bytes_with(&SaveOptions::compressed()),
    )
    .unwrap();
    for (i, spec) in shard_specs().into_iter().enumerate() {
        let shard = golden
            .restrict_to_shard(spec)
            .expect("pinned specs are consistent with the corpus");
        std::fs::write(shard_path(dir, i), shard.to_bytes()).unwrap();
    }
    std::fs::write(dir.join("golden.distances.txt"), distance_table(&golden)).unwrap();
    // The path-section fixtures: the same corpus with per-entry parent
    // records, in both entry encodings, plus its pinned walk table.
    let with_paths =
        attach_parents(&golden_graph(), golden).expect("corpus graph matches its index");
    std::fs::write(dir.join("golden.v3-paths.chl"), with_paths.to_bytes()).unwrap();
    std::fs::write(
        dir.join("golden.v3-paths-compressed.chl"),
        with_paths.to_bytes_with(&SaveOptions::compressed()),
    )
    .unwrap();
    std::fs::write(dir.join("golden.paths.txt"), path_table(&with_paths)).unwrap();
}

fn pinned_table(dir: &Path) -> Vec<Vec<u64>> {
    let text = std::fs::read_to_string(dir.join("golden.distances.txt"))
        .expect("fixture corpus present (CHL_REGEN_FIXTURES=1 to create)");
    text.lines()
        .map(|line| {
            line.split_whitespace()
                .map(|tok| {
                    if tok == "inf" {
                        INFINITY
                    } else {
                        tok.parse().expect("pinned distance")
                    }
                })
                .collect()
        })
        .collect()
}

type PinnedWalk = ((u32, u32), Option<Vec<u32>>);

fn pinned_paths(dir: &Path) -> Vec<PinnedWalk> {
    let text = std::fs::read_to_string(dir.join("golden.paths.txt"))
        .expect("paths fixture present (CHL_REGEN_FIXTURES=1 to create)");
    text.lines()
        .map(|line| {
            let (pair, walk) = line.split_once(':').expect("pinned 'u v: walk' line");
            let ids: Vec<u32> = pair
                .split_whitespace()
                .map(|t| t.parse().expect("pinned pair"))
                .collect();
            let walk = match walk.trim() {
                "unreachable" => None,
                walk => Some(
                    walk.split_whitespace()
                        .map(|t| t.parse().expect("pinned walk vertex"))
                        .collect(),
                ),
            };
            ((ids[0], ids[1]), walk)
        })
        .collect()
}

/// Asserts `query` answers exactly the pinned table, including out-of-range
/// ids beyond it.
fn assert_answers(table: &[Vec<u64>], tag: &str, query: impl Fn(u32, u32) -> u64) {
    let n = table.len() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(
                query(u, v),
                table[u as usize][v as usize],
                "{tag}: ({u}, {v})"
            );
        }
    }
    assert_eq!(query(n, 0), INFINITY, "{tag}: out of range");
    assert_eq!(query(n, n), INFINITY, "{tag}: out of range self");
}

#[test]
fn fixtures_load_everywhere_and_answer_the_pinned_distance_table() {
    let dir = fixtures_dir();
    if std::env::var_os("CHL_REGEN_FIXTURES").is_some() {
        regen(&dir);
    }
    let table = pinned_table(&dir);
    assert_eq!(table.len(), 16, "4x4 grid corpus");

    // v1: the copying path only.
    let v1_bytes = std::fs::read(dir.join("golden.v1.chl")).unwrap();
    let v1 = FlatIndex::from_bytes(&v1_bytes).expect("v1 fixture loads");
    assert_answers(&table, "v1 copy-load", |u, v| v1.query(u, v));
    assert_eq!(
        persist::to_bytes_v1(&v1),
        v1_bytes,
        "re-serializing the loaded v1 fixture must be byte-identical"
    );

    // v2 flat: copy-load, zero-copy view and mmap. The frozen v2 stream
    // keeps loading and `SaveOptions::v2` keeps reproducing it.
    let flat_path = dir.join("golden.v2-flat.chl");
    let flat_bytes = std::fs::read(&flat_path).unwrap();
    let flat = FlatIndex::from_bytes(&flat_bytes).expect("v2-flat fixture loads");
    assert_answers(&table, "v2-flat copy-load", |u, v| flat.query(u, v));
    let aligned = AlignedBytes::from_slice(&flat_bytes);
    let view = persist::view_bytes(&aligned).expect("v2-flat fixture views");
    assert_answers(&table, "v2-flat view", |u, v| view.query(u, v));
    let mapped = MmapIndex::open(&flat_path).expect("v2-flat fixture maps");
    assert!(!mapped.is_compressed());
    assert_answers(&table, "v2-flat mmap", |u, v| mapped.view().query(u, v));
    assert_eq!(
        flat.to_bytes_with(&SaveOptions::v2()),
        flat_bytes,
        "re-serializing the loaded v2-flat fixture must be byte-identical"
    );

    // v2 compressed: decode-on-load, streaming view and mmap.
    let comp_path = dir.join("golden.v2-compressed.chl");
    let comp_bytes = std::fs::read(&comp_path).unwrap();
    let comp = FlatIndex::from_bytes(&comp_bytes).expect("v2-compressed fixture loads");
    assert_answers(&table, "v2-compressed copy-load", |u, v| comp.query(u, v));
    let aligned = AlignedBytes::from_slice(&comp_bytes);
    let view = persist::open_view(&aligned).expect("v2-compressed fixture views");
    assert!(view.is_compressed());
    assert_answers(&table, "v2-compressed view", |u, v| view.query(u, v));
    let mapped = MmapIndex::open(&comp_path).expect("v2-compressed fixture maps");
    assert!(mapped.is_compressed());
    assert_answers(&table, "v2-compressed mmap", |u, v| {
        mapped.view().query(u, v)
    });
    assert_eq!(
        comp.to_bytes_with(&SaveOptions {
            compress: true,
            version: persist::VERSION_V2,
        }),
        comp_bytes,
        "re-serializing the loaded v2-compressed fixture must be byte-identical"
    );

    // v3 flat: the default writer's output, with the header CRC.
    let v3_path = dir.join("golden.v3-flat.chl");
    let v3_bytes = std::fs::read(&v3_path).unwrap();
    let v3_header = persist::parse_header(&v3_bytes).unwrap();
    assert_eq!(v3_header.version, persist::VERSION);
    assert!(!v3_header.is_sharded());
    let v3 = FlatIndex::from_bytes(&v3_bytes).expect("v3-flat fixture loads");
    assert_answers(&table, "v3-flat copy-load", |u, v| v3.query(u, v));
    let aligned = AlignedBytes::from_slice(&v3_bytes);
    let view = persist::view_bytes(&aligned).expect("v3-flat fixture views");
    assert_answers(&table, "v3-flat view", |u, v| view.query(u, v));
    let mapped = MmapIndex::open(&v3_path).expect("v3-flat fixture maps");
    assert!(!mapped.is_sharded());
    assert_answers(&table, "v3-flat mmap", |u, v| mapped.view().query(u, v));
    assert_eq!(
        v3.to_bytes(),
        v3_bytes,
        "re-serializing the loaded v3-flat fixture must be byte-identical"
    );

    // v3 compressed.
    let v3c_path = dir.join("golden.v3-compressed.chl");
    let v3c_bytes = std::fs::read(&v3c_path).unwrap();
    let v3c = FlatIndex::from_bytes(&v3c_bytes).expect("v3-compressed fixture loads");
    assert_answers(&table, "v3-compressed copy-load", |u, v| v3c.query(u, v));
    let aligned = AlignedBytes::from_slice(&v3c_bytes);
    let view = persist::open_view(&aligned).expect("v3-compressed fixture views");
    assert!(view.is_compressed());
    assert_answers(&table, "v3-compressed view", |u, v| view.query(u, v));
    let mapped = MmapIndex::open(&v3c_path).expect("v3-compressed fixture maps");
    assert!(mapped.is_compressed());
    assert_answers(&table, "v3-compressed mmap", |u, v| {
        mapped.view().query(u, v)
    });
    assert_eq!(
        v3c.to_bytes_with(&SaveOptions::compressed()),
        v3c_bytes,
        "re-serializing the loaded v3-compressed fixture must be byte-identical"
    );

    // The whole-index fixtures are one index in five coats.
    assert_eq!(v1, flat);
    assert_eq!(flat, comp);
    assert_eq!(comp, v3);
    assert_eq!(v3, v3c);

    // Sanity on the corpus itself: the headers disagree only where the
    // format does.
    let flat_header = persist::parse_header(&flat_bytes).unwrap();
    let comp_header = persist::parse_header(&comp_bytes).unwrap();
    assert_eq!(flat_header.version, persist::VERSION_V2);
    assert!(!flat_header.is_compressed());
    assert!(comp_header.is_compressed());
    assert_eq!(flat_header.num_entries, comp_header.num_entries);
    assert!(
        comp_bytes.len() < flat_bytes.len(),
        "compressed fixture must be smaller ({} vs {} bytes)",
        comp_bytes.len(),
        flat_bytes.len()
    );
}

#[test]
fn path_fixtures_answer_the_pinned_walk_table() {
    let dir = fixtures_dir();
    if std::env::var_os("CHL_REGEN_FIXTURES").is_some() {
        regen(&dir);
    }
    let table = pinned_table(&dir);
    let walks = pinned_paths(&dir);
    assert_eq!(walks.len(), 16 * 16, "one pinned walk per pair");

    // Byte stability first: loading and re-serializing each paths fixture
    // must reproduce its bytes, in both entry encodings.
    let flat_path = dir.join("golden.v3-paths.chl");
    let flat_bytes = std::fs::read(&flat_path).unwrap();
    let header = persist::parse_header(&flat_bytes).unwrap();
    assert_eq!(header.version, persist::VERSION);
    assert!(header.is_paths(), "paths fixture carries the flag");
    let flat = FlatIndex::from_bytes(&flat_bytes).expect("paths fixture loads");
    assert!(flat.has_path_data());
    assert_eq!(
        flat.to_bytes(),
        flat_bytes,
        "re-serializing the paths fixture must be byte-identical"
    );
    let comp_path = dir.join("golden.v3-paths-compressed.chl");
    let comp_bytes = std::fs::read(&comp_path).unwrap();
    let comp = FlatIndex::from_bytes(&comp_bytes).expect("compressed paths fixture loads");
    assert!(comp.has_path_data());
    assert_eq!(
        comp.to_bytes_with(&SaveOptions::compressed()),
        comp_bytes,
        "re-serializing the compressed paths fixture must be byte-identical"
    );
    assert_eq!(flat, comp, "one index in two coats");

    // Every loader answers the pinned walks exactly: copy-load, borrowed
    // views over both encodings, and both mmap shapes. The distance table
    // stays pinned too — the path section must not perturb queries — and
    // the pivoted matrix over all vertices ties the batch kernel to the
    // same pin.
    let flat_aligned = AlignedBytes::from_slice(&flat_bytes);
    let flat_view = persist::view_bytes(&flat_aligned).expect("paths fixture views");
    let comp_aligned = AlignedBytes::from_slice(&comp_bytes);
    let comp_view = persist::open_view(&comp_aligned).expect("compressed paths fixture views");
    let mapped_flat = MmapIndex::open(&flat_path).expect("paths fixture maps");
    let mapped_comp = MmapIndex::open(&comp_path).expect("compressed paths fixture maps");

    assert_answers(&table, "paths fixture queries", |u, v| flat.query(u, v));
    let n = flat.num_vertices() as u32;
    let all: Vec<u32> = (0..n).collect();
    let pinned_block: Vec<u64> = table.iter().flatten().copied().collect();
    use chl_core::oracle::DistanceOracle;
    assert_eq!(flat.matrix(&all, &all), pinned_block, "pivoted matrix pin");
    assert_eq!(
        mapped_comp.matrix(&all, &all),
        pinned_block,
        "mmap pivoted matrix pin"
    );

    for &((u, v), ref expect) in &walks {
        assert_eq!(&flat.path(u, v).unwrap(), expect, "copy-load ({u}, {v})");
        assert_eq!(&flat_view.path(u, v).unwrap(), expect, "view ({u}, {v})");
        assert_eq!(
            &comp_view.path(u, v).unwrap(),
            expect,
            "compressed view ({u}, {v})"
        );
        assert_eq!(&mapped_flat.path(u, v).unwrap(), expect, "mmap ({u}, {v})");
        assert_eq!(
            &mapped_comp.path(u, v).unwrap(),
            expect,
            "compressed mmap ({u}, {v})"
        );
    }

    // The path-less corpus answers the typed error, not a guess.
    let plain =
        FlatIndex::from_bytes(&std::fs::read(dir.join("golden.v3-flat.chl")).unwrap()).unwrap();
    assert!(!plain.has_path_data());
    assert_eq!(plain.path(0, 5), Err(PathError::NoPathData));
}

#[test]
fn shard_fixtures_union_to_the_unsharded_index() {
    let dir = fixtures_dir();
    if std::env::var_os("CHL_REGEN_FIXTURES").is_some() {
        regen(&dir);
    }
    let table = pinned_table(&dir);
    let full = FlatIndex::from_bytes(&std::fs::read(dir.join("golden.v3-flat.chl")).unwrap())
        .expect("v3-flat fixture loads");
    let specs = shard_specs();

    let mut shards = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let path = shard_path(&dir, i);
        let bytes = std::fs::read(&path).unwrap();
        let header = persist::parse_header(&bytes).unwrap();
        assert_eq!(header.version, persist::VERSION);
        assert!(header.is_sharded(), "shard fixture {i} carries the flag");

        // Copy-load: the shard identity round-trips and matches the pin.
        let shard = FlatIndex::from_bytes(&bytes).expect("shard fixture loads");
        assert_eq!(shard.shard(), Some(spec), "shard {i} spec");
        assert_eq!(shard.num_vertices(), full.num_vertices(), "global n");
        assert_eq!(
            shard.to_bytes(),
            bytes,
            "re-serializing shard fixture {i} must be byte-identical"
        );

        // Owned labels are verbatim slices of the full index; foreign
        // vertices hold nothing. This is the union-of-shards invariant.
        for v in 0..full.num_vertices() as u32 {
            if spec.owns(v) {
                assert_eq!(
                    shard.labels_of(v),
                    full.labels_of(v),
                    "shard {i} vertex {v}"
                );
            } else {
                assert!(shard.labels_of(v).is_empty(), "shard {i} vertex {v}");
            }
        }

        // Zero-copy paths: mmap serves the shard with typed foreign answers;
        // the shard-blind borrowed view is refused outright.
        let mapped = MmapIndex::open(&path).expect("shard fixture maps");
        assert!(mapped.is_sharded());
        assert_eq!(mapped.shard(), Some(spec));
        let aligned = AlignedBytes::from_slice(&bytes);
        assert!(matches!(
            persist::view_bytes(&aligned),
            Err(persist::PersistError::Unviewable { .. })
        ));
        let view = persist::open_view(&aligned).expect("shard fixture views");
        for u in 0..full.num_vertices() as u32 {
            for v in 0..full.num_vertices() as u32 {
                let expect = if spec.owns(u) && spec.owns(v) {
                    Ok(table[u as usize][v as usize])
                } else {
                    Err(NotThisShard {
                        vertex: if spec.owns(u) { v } else { u },
                    })
                };
                assert_eq!(view.try_query(u, v), expect, "shard {i} view ({u}, {v})");
                assert_eq!(
                    mapped.view().try_query(u, v),
                    expect,
                    "shard {i} mmap ({u}, {v})"
                );
            }
        }
        // Out-of-range endpoints are data on a shard too, exactly as on the
        // whole index.
        let n = full.num_vertices() as u32;
        assert_eq!(view.try_query(n, n), Ok(INFINITY));

        shards.push(shard);
    }

    // Placement proof over the pinned layout: every pair (u, v) — in range
    // or not — has a shard owning both endpoints, and that shard answers
    // the pinned table exactly. The union of the shards IS the index.
    let n = full.num_vertices() as u32;
    for u in 0..n {
        assert!(
            specs.iter().any(|s| s.owns(u)),
            "vertex {u} owned by no shard"
        );
        for v in 0..n {
            let (i, _) = specs
                .iter()
                .enumerate()
                .find(|(_, s)| s.owns(u) && s.owns(v))
                .expect("every partition pair is covered by some shard");
            assert_eq!(
                shards[i].try_query(u, v),
                Ok(table[u as usize][v as usize]),
                "shard {i} ({u}, {v})"
            );
        }
    }
}
