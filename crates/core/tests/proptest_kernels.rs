//! Differential property tests for the tiered merge-join kernels and the
//! hot-hub cache: every tier (branchless, scalar, gallop, SIMD, adaptive)
//! must return exactly what the streaming reference join returns on
//! adversarial run shapes — empty and singleton runs, disjoint hub sets,
//! saturating `Distance::MAX` sums, tie distances, 1:1000 length skew —
//! and the cached query path must answer byte-identically to the plain
//! path on every storage backend (pointer index, flat, borrowed view,
//! compressed view, mmap flat/compressed, sharded).

use proptest::prelude::*;

use chl_core::flat::FlatIndex;
use chl_core::kernel::{self, HotHubCache, HotHubCached};
use chl_core::labels::{join_sorted_iters, LabelEntry};
use chl_core::mapped::MmapIndex;
use chl_core::oracle::DistanceOracle;
use chl_core::persist::{self, AlignedBytes, SaveOptions, ShardSpec};
use chl_core::pll::sequential_pll;
use chl_graph::types::INFINITY;
use chl_graph::{CsrGraph, GraphBuilder};
use chl_ranking::degree_ranking;

/// One generated item of a run pair: a hub gap (strict ascent), the two
/// sides' distances for that hub, and which side(s) get the entry.
type RunItem = (u32, u64, u64, u8);

/// Maps a distance selector to an adversarial distance: small values for
/// ties and realistic sums, near-MAX and MAX values so `saturating_add`
/// and the `Some((h, MAX))` result shape are both exercised.
fn pick_dist(selector: u64, small: u64) -> u64 {
    match selector % 8 {
        0 => INFINITY,
        1 => INFINITY - 1,
        2 => INFINITY / 2 + small % 1024,
        // Duplicated small values make equal sums common, so the
        // first-hub-wins tie-break is actually load-bearing.
        _ => small % 4,
    }
}

/// Builds the two hub-sorted runs from generated items. Side selector:
/// 0 => left only, 1 => right only, 2.. => both (shared hub, distinct
/// distances) — so common and disjoint hub ranges both occur, including
/// fully disjoint and fully shared runs.
fn build_runs(items: &[RunItem]) -> (Vec<LabelEntry>, Vec<LabelEntry>) {
    let (mut a, mut b) = (Vec::new(), Vec::new());
    let mut hub = 0u32;
    for &(gap, da, db, side) in items {
        hub += gap.max(1);
        if side % 4 != 1 {
            a.push(LabelEntry {
                hub,
                dist: pick_dist(da, da),
            });
        }
        if side % 4 != 0 {
            b.push(LabelEntry {
                hub,
                dist: pick_dist(db, db),
            });
        }
    }
    (a, b)
}

/// Asserts every kernel tier against the streaming reference on one pair.
fn assert_tiers_match(a: &[LabelEntry], b: &[LabelEntry]) -> Result<(), TestCaseError> {
    let expect = join_sorted_iters(a.iter().copied(), b.iter().copied());
    prop_assert_eq!(kernel::join_scalar(a, b), expect, "scalar");
    prop_assert_eq!(kernel::join_branchless(a, b), expect, "branchless");
    prop_assert_eq!(kernel::join_gallop(a, b), expect, "gallop");
    prop_assert_eq!(kernel::join_simd(a, b), expect, "simd");
    prop_assert_eq!(kernel::join_adaptive(a, b), expect, "adaptive");
    // Symmetry: every tier must give the same hub and distance with the
    // sides swapped (gallop swaps internally; the rest merge symmetrically).
    prop_assert_eq!(kernel::join_gallop(b, a), expect, "gallop swapped");
    prop_assert_eq!(kernel::join_adaptive(b, a), expect, "adaptive swapped");
    Ok(())
}

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..24,
        proptest::collection::vec((0u32..24, 0u32..24, 1u32..50), 1..80),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            b.build().expect("positive weights")
        })
}

fn scratch_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "chl-proptest-kernels-{}-{:?}-{tag}.chl",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_tiers_match_reference_on_adversarial_runs(
        items in proptest::collection::vec((1u32..50, any::<u64>(), any::<u64>(), 0u8..4), 0..64),
    ) {
        let (a, b) = build_runs(&items);
        assert_tiers_match(&a, &b)?;
        // Boundary shapes the generator reaches rarely: one side empty,
        // both empty, singletons against the full run.
        assert_tiers_match(&a, &[])?;
        assert_tiers_match(&[], &b)?;
        assert_tiers_match(&[], &[])?;
        assert_tiers_match(&a, a.first().map(std::slice::from_ref).unwrap_or(&[]))?;
    }

    #[test]
    fn kernel_tiers_match_reference_on_skewed_runs(
        // ~1:1000 length skew: a long run against a handful of probes —
        // the shape that routes join_adaptive to the galloping tier.
        long_items in proptest::collection::vec((1u32..4, any::<u64>(), any::<u64>(), 0u8..1), 500..1000),
        probes in proptest::collection::vec((0u32..4000, any::<u64>()), 0..3),
    ) {
        let (long, _) = build_runs(&long_items);
        let mut short: Vec<LabelEntry> = Vec::new();
        for (hub, d) in probes {
            // Keep the short run strictly ascending by construction.
            let hub = short.last().map_or(hub % 97, |e| e.hub + 1 + hub % 97);
            short.push(LabelEntry { hub, dist: pick_dist(d, d) });
        }
        assert_tiers_match(&long, &short)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_backends_answer_identically_with_and_without_cache(g in arb_graph()) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = FlatIndex::from_index(&index);

        let flat_bytes = AlignedBytes::from_slice(&flat.to_bytes());
        let flat_view = persist::view_bytes(&flat_bytes).expect("flat bytes view");
        let comp_bytes = AlignedBytes::from_slice(&flat.to_bytes_with(&SaveOptions::compressed()));
        let comp_view = persist::open_view(&comp_bytes).expect("compressed bytes view");
        let flat_path = scratch_file("flat", &flat_bytes);
        let comp_path = scratch_file("comp", &comp_bytes);
        let mmap_flat = MmapIndex::open(&flat_path).expect("flat file maps");
        let mmap_comp = MmapIndex::open(&comp_path).expect("compressed file maps");

        let n = g.num_vertices() as u32;
        let ks = [0u32, 1, 2, 7, n, n + 64];
        let caches: Vec<HotHubCache> =
            ks.iter().map(|&k| HotHubCache::build(&flat.as_index_view(), k)).collect();
        let comp_caches: Vec<HotHubCache> =
            ks.iter().map(|&k| HotHubCache::build(&mmap_comp.view(), k)).collect();
        let cached_flat = HotHubCached::new(flat.clone(), 3);
        let cached_mmap = HotHubCached::new(MmapIndex::open(&comp_path).expect("maps"), 3);

        // Out-of-range ids included: every backend answers INFINITY there.
        for u in 0..n + 2 {
            for v in 0..n + 2 {
                let expect = index.query(u, v);
                prop_assert_eq!(flat.query(u, v), expect, "flat ({}, {})", u, v);
                prop_assert_eq!(flat_view.query(u, v), expect, "view ({}, {})", u, v);
                prop_assert_eq!(comp_view.query(u, v), expect, "comp view ({}, {})", u, v);
                prop_assert_eq!(mmap_flat.view().query(u, v), expect, "mmap flat ({}, {})", u, v);
                prop_assert_eq!(mmap_comp.view().query(u, v), expect, "mmap comp ({}, {})", u, v);
                for (cache, &k) in caches.iter().zip(&ks) {
                    prop_assert_eq!(
                        flat.as_index_view().query_cached(cache, u, v),
                        expect, "cached flat k={} ({}, {})", k, u, v
                    );
                }
                for (cache, &k) in comp_caches.iter().zip(&ks) {
                    prop_assert_eq!(
                        mmap_comp.view().query_cached(cache, u, v),
                        expect, "cached mmap comp k={} ({}, {})", k, u, v
                    );
                }
                prop_assert_eq!(cached_flat.distance(u, v), expect, "HotHubCached flat");
                prop_assert_eq!(cached_mmap.distance(u, v), expect, "HotHubCached mmap");
            }
        }
        std::fs::remove_file(&flat_path).ok();
        std::fs::remove_file(&comp_path).ok();
    }

    #[test]
    fn sharded_backend_cache_parity(g in arb_graph(), stride in 2u32..4) {
        let ranking = degree_ranking(&g);
        let index = sequential_pll(&g, &ranking).index;
        let flat = FlatIndex::from_index(&index);
        let n = g.num_vertices() as u32;

        // A shard owning every `stride`-th vertex: the cached path must
        // agree with the plain path on the shard's own (partial) labeling —
        // owned vertices answer like the full index, foreign ones through
        // their empty runs — across both the owned and mmap backends.
        let spec = ShardSpec {
            shard_id: 0,
            shard_count: 3,
            zeta: 2,
            owned: (0..n).step_by(stride as usize).collect(),
        };
        let shard = flat.restrict_to_shard(spec).expect("valid shard spec");
        let shard_path = scratch_file("shard", &shard.to_bytes());
        let mapped = MmapIndex::open(&shard_path).expect("shard file maps");
        prop_assert!(mapped.view().is_sharded());

        for &k in &[0u32, 2, 5, n] {
            let owned_cache = HotHubCache::build(&shard.as_index_view(), k);
            let mapped_cache = HotHubCache::build(&mapped.view(), k);
            for u in 0..n + 2 {
                for v in 0..n + 2 {
                    let expect = shard.query(u, v);
                    prop_assert_eq!(
                        shard.as_index_view().query_cached(&owned_cache, u, v),
                        expect, "sharded owned k={} ({}, {})", k, u, v
                    );
                    prop_assert_eq!(
                        mapped.view().query_cached(&mapped_cache, u, v),
                        expect, "sharded mmap k={} ({}, {})", k, u, v
                    );
                }
            }
        }
        std::fs::remove_file(&shard_path).ok();
    }
}
