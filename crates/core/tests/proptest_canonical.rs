//! Property-based correctness tests: every constructor must produce the
//! Canonical Hub Labeling on arbitrary weighted graphs and arbitrary
//! rankings, and every labeling must answer queries exactly.

use proptest::prelude::*;

use chl_core::canonical::{brute_force_chl, is_canonical, satisfies_cover_property};
use chl_core::gll::gll;
use chl_core::hybrid::shared_hybrid;
use chl_core::lcc::lcc;
use chl_core::para_pll::spara_pll;
use chl_core::plant::plant_labeling;
use chl_core::pll::{pll_with_restricted_pruning, sequential_pll};
use chl_core::LabelingConfig;
use chl_graph::sssp::dijkstra;
use chl_graph::{CsrGraph, GraphBuilder};
use chl_ranking::Ranking;

/// Strategy: a small weighted undirected graph plus a random total order.
fn arb_graph_and_ranking() -> impl Strategy<Value = (CsrGraph, Ranking)> {
    (
        3usize..28,
        proptest::collection::vec((0u32..28, 0u32..28, 1u32..20), 2..120),
        any::<u64>(),
    )
        .prop_map(|(n, edges, seed)| {
            let mut b = GraphBuilder::new_undirected();
            b.ensure_vertices(n);
            for (u, v, w) in edges {
                b.add_edge(u % n as u32, v % n as u32, w);
            }
            let g = b.build().expect("positive weights");
            // Random permutation derived from the seed.
            let mut order: Vec<u32> = (0..n as u32).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let ranking = Ranking::from_order(order, n).expect("permutation");
            (g, ranking)
        })
}

fn config(threads: usize) -> LabelingConfig {
    LabelingConfig::default().with_threads(threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Sequential PLL equals the brute-force canonical labeling.
    #[test]
    fn pll_is_canonical((g, ranking) in arb_graph_and_ranking()) {
        let reference = brute_force_chl(&g, &ranking);
        let built = sequential_pll(&g, &ranking).index;
        prop_assert_eq!(&built, &reference);
        prop_assert!(is_canonical(&g, &ranking, &built));
    }

    /// LCC (parallel construction + cleaning) equals the CHL.
    #[test]
    fn lcc_is_canonical((g, ranking) in arb_graph_and_ranking()) {
        let reference = brute_force_chl(&g, &ranking);
        let built = lcc(&g, &ranking, &config(4)).index;
        prop_assert_eq!(built, reference);
    }

    /// GLL with a small synchronization threshold equals the CHL.
    #[test]
    fn gll_is_canonical((g, ranking) in arb_graph_and_ranking()) {
        let reference = brute_force_chl(&g, &ranking);
        let built = gll(&g, &ranking, &config(3).with_alpha(1.0)).index;
        prop_assert_eq!(built, reference);
    }

    /// PLaNT (no pruning queries at all) equals the CHL.
    #[test]
    fn plant_is_canonical((g, ranking) in arb_graph_and_ranking()) {
        let reference = brute_force_chl(&g, &ranking);
        let built = plant_labeling(&g, &ranking, &config(4)).index;
        prop_assert_eq!(built, reference);
    }

    /// The shared-memory Hybrid equals the CHL for an aggressive switch point.
    #[test]
    fn hybrid_is_canonical((g, ranking) in arb_graph_and_ranking()) {
        let reference = brute_force_chl(&g, &ranking);
        let mut cfg = config(3).with_psi_threshold(2.0);
        cfg.psi_window = 4;
        let built = shared_hybrid(&g, &ranking, &cfg).index;
        prop_assert_eq!(built, reference);
    }

    /// paraPLL is not canonical in general but must still answer every query
    /// exactly (cover property). No per-run label-count bound is asserted
    /// here: with adversarial tie-heavy graphs a rare interleaving can prune
    /// a canonical label through a concurrently-planted equal-length path and
    /// land *below* the CHL size, so "superset on realistic inputs" is
    /// checked on the seeded datasets in the integration tests instead.
    #[test]
    fn para_pll_covers((g, ranking) in arb_graph_and_ranking()) {
        let built = spara_pll(&g, &ranking, &config(4)).index;
        prop_assert!(satisfies_cover_property(&g, &built));
        // Interleaving-independent size bounds: every vertex keeps its self
        // label, and nothing can exceed the all-pairs worst case.
        let n = g.num_vertices();
        prop_assert!(built.total_labels() >= n);
        prop_assert!(built.total_labels() <= n * n);
    }

    /// Restricting pruning to the top-x hubs (Figure 4's sweep) never breaks
    /// query exactness and label counts decrease monotonically in x.
    #[test]
    fn restricted_pruning_is_monotone_and_exact((g, ranking) in arb_graph_and_ranking()) {
        let n = g.num_vertices() as u32;
        let counts: Vec<usize> = [0u32, 1, 4, n]
            .iter()
            .map(|&x| {
                let r = pll_with_restricted_pruning(&g, &ranking, x);
                prop_assert!(satisfies_cover_property(&g, &r.index));
                Ok(r.index.total_labels())
            })
            .collect::<Result<_, TestCaseError>>()?;
        for w in counts.windows(2) {
            prop_assert!(w[0] >= w[1], "label count must not increase with more pruning hubs: {counts:?}");
        }
    }

    /// Hub-label queries equal Dijkstra for every pair (spot-checked from a
    /// few sources to keep runtime bounded).
    #[test]
    fn queries_equal_dijkstra((g, ranking) in arb_graph_and_ranking()) {
        let index = gll(&g, &ranking, &config(2)).index;
        let n = g.num_vertices() as u32;
        for src in [0, n / 2, n - 1] {
            let d = dijkstra(&g, src);
            for v in 0..n {
                prop_assert_eq!(index.query(src, v), d[v as usize]);
            }
        }
    }
}
