//! Hub label primitives: entries, per-vertex label sets and the pruning /
//! query kernels that operate on them.
//!
//! A hub label for vertex `v` is a pair `(h, d(v, h))`. Throughout this
//! workspace the hub is stored as its **rank position** (0 = most important)
//! rather than its vertex id: comparisons against the current root become
//! single integer comparisons, and a label set sorted ascending by hub is
//! automatically sorted most-important-first, which lets merge-join queries
//! stop at the first (highest-ranked) common hub when only coverage matters.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use chl_graph::types::{Distance, INFINITY};

/// A single hub label: the hub's rank position and the distance to it.
///
/// The layout is `#[repr(C)]` because the `.chl` v2 on-disk format (see
/// [`crate::persist`]) stores entries byte-identically to this struct —
/// `hub` at offset 0, four bytes of zero padding, `dist` at offset 8 — so a
/// validated byte buffer can be reinterpreted in place as `&[LabelEntry]`
/// without copying. Every bit pattern of the two integer fields is a valid
/// value, which is what makes that reinterpretation sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(C)]
pub struct LabelEntry {
    /// Rank position of the hub (0 = most important vertex).
    pub hub: u32,
    /// Shortest distance from the labeled vertex to the hub.
    pub dist: Distance,
}

// The persistence layer depends on this exact layout; fail the build, not
// the loader, if it ever drifts.
const _: () = {
    assert!(std::mem::size_of::<LabelEntry>() == 16);
    assert!(std::mem::align_of::<LabelEntry>() == 8);
    assert!(std::mem::offset_of!(LabelEntry, hub) == 0);
    assert!(std::mem::offset_of!(LabelEntry, dist) == 8);
};

impl LabelEntry {
    /// Creates a new label entry.
    pub fn new(hub: u32, dist: Distance) -> Self {
        LabelEntry { hub, dist }
    }
}

/// The label set of one vertex, kept sorted by hub rank position.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelSet {
    entries: Vec<LabelEntry>,
}

/// PPSD merge-join over two hub-sorted label slices: the minimum
/// `d(u,h) + d(v,h)` over common hubs, together with the hub achieving it.
///
/// This is the query kernel shared by [`LabelSet`] (pointer-per-vertex
/// storage) and [`crate::flat::FlatIndex`] (contiguous CSR storage): both
/// hold their entries sorted ascending by hub rank position, so the same
/// join serves either layout. Slice inputs route through the tiered
/// branchless/gallop/SIMD kernels of [`crate::kernel`] (selected by run
/// length); [`join_sorted_iters`] remains the streaming reference the tiers
/// are differentially tested against, and the kernel streaming label
/// decoders still use.
pub fn join_sorted_slices(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    crate::kernel::join_adaptive(a, b)
}

/// PPSD merge-join over two hub-sorted label *streams*: the iterator form of
/// [`join_sorted_slices`], and the single kernel both compile down to.
///
/// Generalizing over `Iterator<Item = LabelEntry>` is what lets one query
/// kernel serve every storage encoding: plain slices iterate by copy, while
/// the delta+varint compressed store (see [`crate::flat::CompressedStore`])
/// decodes entries on the fly — the join itself never knows the difference.
/// Both inputs must be sorted strictly ascending by hub rank position.
pub fn join_sorted_iters<A, B>(mut a: A, mut b: B) -> Option<(u32, Distance)>
where
    A: Iterator<Item = LabelEntry>,
    B: Iterator<Item = LabelEntry>,
{
    let mut x = a.next()?;
    let mut y = b.next()?;
    let mut best: Option<(u32, Distance)> = None;
    loop {
        if x.hub < y.hub {
            x = match a.next() {
                Some(e) => e,
                None => break,
            };
        } else if y.hub < x.hub {
            y = match b.next() {
                Some(e) => e,
                None => break,
            };
        } else {
            let total = x.dist.saturating_add(y.dist);
            if best.is_none_or(|(_, d)| total < d) {
                best = Some((x.hub, total));
            }
            match (a.next(), b.next()) {
                (Some(nx), Some(ny)) => {
                    x = nx;
                    y = ny;
                }
                _ => break,
            }
        }
    }
    best
}

impl LabelSet {
    /// Creates an empty label set.
    pub fn new() -> Self {
        LabelSet {
            entries: Vec::new(),
        }
    }

    /// Creates a label set from raw entries, sorting them and dropping
    /// duplicate hubs (keeping the smallest distance, which is the only
    /// correct one for true hub labels).
    pub fn from_entries(mut entries: Vec<LabelEntry>) -> Self {
        entries.sort_unstable_by_key(|e| (e.hub, e.dist));
        entries.dedup_by_key(|e| e.hub);
        LabelSet { entries }
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the set holds no labels.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, sorted ascending by hub rank position.
    pub fn entries(&self) -> &[LabelEntry] {
        &self.entries
    }

    /// Appends an entry known to have a hub ranked below every existing entry
    /// (the natural insertion order of rank-ordered constructors). Falls back
    /// to a sort-preserving insertion otherwise.
    pub fn push(&mut self, entry: LabelEntry) {
        match self.entries.last() {
            Some(last) if last.hub > entry.hub => {
                let pos = self.entries.partition_point(|e| e.hub < entry.hub);
                match self.entries.get_mut(pos) {
                    // Keep the smaller distance for a duplicate hub.
                    Some(slot) if slot.hub == entry.hub => {
                        if entry.dist < slot.dist {
                            *slot = entry;
                        }
                    }
                    _ => self.entries.insert(pos, entry),
                }
            }
            Some(last) if last.hub == entry.hub => {
                if let Some(slot) = self.entries.last_mut() {
                    if entry.dist < slot.dist {
                        *slot = entry;
                    }
                }
            }
            _ => self.entries.push(entry),
        }
    }

    /// Looks up the distance to `hub`, if labeled.
    pub fn distance_to_hub(&self, hub: u32) -> Option<Distance> {
        self.entries
            .binary_search_by_key(&hub, |e| e.hub)
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|e| e.dist)
    }

    /// `true` when `hub` appears in this set.
    pub fn contains_hub(&self, hub: u32) -> bool {
        self.distance_to_hub(hub).is_some()
    }

    /// Removes the label for `hub`, returning `true` if it was present.
    pub fn remove_hub(&mut self, hub: u32) -> bool {
        match self.entries.binary_search_by_key(&hub, |e| e.hub) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Merges another sorted label set into this one (used when committing a
    /// local table into the global table). Duplicate hubs keep the smaller
    /// distance.
    pub fn merge(&mut self, other: &LabelSet) {
        if other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let a = self.entries[i];
            let b = other.entries[j];
            if a.hub < b.hub {
                merged.push(a);
                i += 1;
            } else if b.hub < a.hub {
                merged.push(b);
                j += 1;
            } else {
                merged.push(LabelEntry::new(a.hub, a.dist.min(b.dist)));
                i += 1;
                j += 1;
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
    }

    /// PPSD merge-join: the minimum `d(u,h) + d(v,h)` over common hubs of the
    /// two sets, together with the hub achieving it.
    pub fn query_join(&self, other: &LabelSet) -> Option<(u32, Distance)> {
        join_sorted_slices(&self.entries, &other.entries)
    }

    /// PPSD distance between the owners of the two label sets
    /// ([`INFINITY`] when they share no hub).
    pub fn query_distance(&self, other: &LabelSet) -> Distance {
        self.query_join(other).map(|(_, d)| d).unwrap_or(INFINITY)
    }

    /// The paper's cleaning query `DQ_Clean` (Algorithm 2, lines 12-16):
    /// decides whether the label `(hub, dist)` held by this set's owner is
    /// redundant, i.e. whether a *more important* common hub of `self` and
    /// `hub_labels` (the label set of the hub itself) certifies a distance no
    /// longer than `dist`.
    pub fn is_redundant_label(&self, hub: u32, dist: Distance, hub_labels: &LabelSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < hub_labels.entries.len() {
            let a = self.entries[i];
            let b = hub_labels.entries[j];
            if a.hub < b.hub {
                i += 1;
            } else if b.hub < a.hub {
                j += 1;
            } else {
                // Common hub, in increasing rank-position order (most
                // important first).
                if a.hub >= hub {
                    // Reached the hub itself (or anything less important):
                    // nothing more important covers the pair within `dist`.
                    return false;
                }
                if a.dist.saturating_add(b.dist) <= dist {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
        false
    }

    /// Approximate heap footprint of this label set in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<LabelEntry>()
    }

    /// Restricts the set to hubs ranked within the top `eta` positions
    /// (used to build the Common Label Table of §5.3).
    pub fn restrict_to_top_hubs(&self, eta: u32) -> LabelSet {
        LabelSet {
            entries: self
                .entries
                .iter()
                .copied()
                .filter(|e| e.hub < eta)
                .collect(),
        }
    }
}

/// Hash-join view of a root's label set used by construction-time pruning
/// queries (Algorithm 1 builds `LR = hash(L_h)` once per SPT).
#[derive(Debug, Clone, Default)]
pub struct RootLabelHash {
    map: HashMap<u32, Distance>,
}

impl RootLabelHash {
    /// Builds the hash from any iterator of label entries; duplicate hubs
    /// keep the smaller distance.
    pub fn from_entries<I: IntoIterator<Item = LabelEntry>>(entries: I) -> Self {
        let mut map = HashMap::new();
        for e in entries {
            map.entry(e.hub)
                .and_modify(|d: &mut Distance| *d = (*d).min(e.dist))
                .or_insert(e.dist);
        }
        RootLabelHash { map }
    }

    /// Number of hubs in the hash.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the hash is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Distance from the root to `hub`, if the root is labeled with it.
    pub fn distance_to_hub(&self, hub: u32) -> Option<Distance> {
        self.map.get(&hub).copied()
    }

    /// The construction-time distance query `DQ` of Algorithm 1: `true` when
    /// some hub common to the root (this hash) and `labels` certifies a
    /// distance `<= delta`.
    pub fn covers(&self, labels: &[LabelEntry], delta: Distance) -> bool {
        for e in labels {
            if let Some(root_d) = self.map.get(&e.hub) {
                if e.dist.saturating_add(*root_d) <= delta {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(entries: &[(u32, Distance)]) -> LabelSet {
        LabelSet::from_entries(
            entries
                .iter()
                .map(|&(h, d)| LabelEntry::new(h, d))
                .collect(),
        )
    }

    #[test]
    fn from_entries_sorts_and_dedups() {
        let s = set(&[(5, 10), (1, 3), (5, 7), (2, 4)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.entries()[0], LabelEntry::new(1, 3));
        assert_eq!(s.distance_to_hub(5), Some(7)); // kept the smaller distance
    }

    #[test]
    fn push_in_rank_order_is_cheap_and_sorted() {
        let mut s = LabelSet::new();
        s.push(LabelEntry::new(0, 5));
        s.push(LabelEntry::new(3, 2));
        s.push(LabelEntry::new(7, 9));
        assert_eq!(
            s.entries().iter().map(|e| e.hub).collect::<Vec<_>>(),
            vec![0, 3, 7]
        );
    }

    #[test]
    fn push_out_of_order_keeps_sorted_invariant() {
        let mut s = LabelSet::new();
        s.push(LabelEntry::new(5, 1));
        s.push(LabelEntry::new(2, 1));
        s.push(LabelEntry::new(9, 1));
        s.push(LabelEntry::new(2, 5)); // duplicate with larger distance: ignored
        s.push(LabelEntry::new(9, 0)); // duplicate with smaller distance: replaces
        assert_eq!(
            s.entries()
                .iter()
                .map(|e| (e.hub, e.dist))
                .collect::<Vec<_>>(),
            vec![(2, 1), (5, 1), (9, 0)]
        );
    }

    #[test]
    fn contains_remove_and_lookup() {
        let mut s = set(&[(1, 3), (4, 6)]);
        assert!(s.contains_hub(4));
        assert!(!s.contains_hub(2));
        assert!(s.remove_hub(4));
        assert!(!s.remove_hub(4));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_takes_minimum_distance_per_hub() {
        let mut a = set(&[(1, 5), (3, 2), (8, 1)]);
        let b = set(&[(1, 4), (2, 7), (8, 3)]);
        a.merge(&b);
        assert_eq!(
            a.entries()
                .iter()
                .map(|e| (e.hub, e.dist))
                .collect::<Vec<_>>(),
            vec![(1, 4), (2, 7), (3, 2), (8, 1)]
        );
        // Merging an empty set is a no-op.
        let before = a.clone();
        a.merge(&LabelSet::new());
        assert_eq!(a, before);
    }

    #[test]
    fn query_join_finds_minimum_over_common_hubs() {
        let u = set(&[(0, 10), (2, 1), (5, 3)]);
        let v = set(&[(2, 9), (5, 4), (7, 0)]);
        assert_eq!(u.query_join(&v), Some((5, 7)));
        assert_eq!(u.query_distance(&v), 7);
        // Disjoint sets: no answer.
        let w = set(&[(9, 1)]);
        assert_eq!(u.query_join(&w), None);
        assert_eq!(u.query_distance(&w), INFINITY);
    }

    #[test]
    fn redundant_label_detection_follows_dq_clean() {
        // Owner v has labels {h0: 4, h3: 6}; hub 3's own labels are {h0: 2, h3: 0}.
        let v = set(&[(0, 4), (3, 6)]);
        let h3 = set(&[(0, 2), (3, 0)]);
        // Common hub 0 has rank above 3 and d(v,0)+d(3,0) = 6 <= 6: redundant.
        assert!(v.is_redundant_label(3, 6, &h3));
        // With a strictly smaller claimed distance the higher hub no longer covers it.
        assert!(!v.is_redundant_label(3, 5, &h3));
        // The hub itself always covers the label; must NOT count as redundancy.
        let v2 = set(&[(3, 6)]);
        assert!(!v2.is_redundant_label(3, 6, &h3));
    }

    #[test]
    fn root_hash_covers_matches_brute_force() {
        let root = RootLabelHash::from_entries(vec![
            LabelEntry::new(0, 2),
            LabelEntry::new(4, 5),
            LabelEntry::new(4, 3),
        ]);
        assert_eq!(root.len(), 2);
        assert_eq!(root.distance_to_hub(4), Some(3));
        let labels = [LabelEntry::new(0, 7), LabelEntry::new(9, 0)];
        assert!(root.covers(&labels, 9));
        assert!(!root.covers(&labels, 8));
        assert!(!RootLabelHash::default().covers(&labels, 100));
        assert!(RootLabelHash::default().is_empty());
    }

    #[test]
    fn restrict_to_top_hubs_filters_by_rank() {
        let s = set(&[(0, 1), (5, 2), (15, 3), (16, 4)]);
        let top = s.restrict_to_top_hubs(16);
        assert_eq!(top.len(), 3);
        assert!(top.contains_hub(15));
        assert!(!top.contains_hub(16));
    }

    #[test]
    fn memory_accounting() {
        let s = set(&[(0, 1), (5, 2)]);
        assert_eq!(s.memory_bytes(), 2 * std::mem::size_of::<LabelEntry>());
    }
}
