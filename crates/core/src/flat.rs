//! Flat, cache-contiguous storage of a hub labeling — owned or borrowed.
//!
//! [`HubLabelIndex`] keeps one heap allocation per vertex (`Vec<LabelSet>`),
//! which is the natural shape during construction — label sets grow
//! independently — but a poor shape for serving: every query chases two
//! pointers into unrelated heap regions, and the index cannot be written to
//! or read from disk without walking every allocation.
//!
//! The serving layout lives here twice, with one query kernel:
//!
//! * [`FlatView`] is the **ownership-agnostic query kernel**: ranking,
//!   offsets and entries as plain borrowed slices, with every query method
//!   defined on it. It does not care whether the slices come from `Vec`s, a
//!   serialized byte buffer ([`crate::persist::view_bytes`]) or an mmap
//!   ([`crate::mapped::MmapIndex`]).
//! * [`FlatIndex`] is the thin owning wrapper: the same three arrays in
//!   `Vec`s plus the full [`Ranking`], delegating every query through
//!   [`FlatIndex::as_view`]. (A literal `Deref<Target = FlatView>` is not
//!   expressible — the view borrows from `self` — so the wrapper forwards
//!   method by method instead.)
//!
//! The layout is what the `.chl` on-disk format (see [`crate::persist`])
//! stores byte-for-byte, so loading an index is one read plus validation —
//! and, for v2 files, querying needs no copy at all. Conversion to and from
//! [`HubLabelIndex`] is lossless, and all layouts answer every query
//! identically (asserted by the persistence proptests).

use serde::{Deserialize, Serialize};

use chl_graph::types::{Distance, VertexId};
use chl_ranking::Ranking;

use crate::index::HubLabelIndex;
use crate::labels::{join_sorted_slices, LabelEntry, LabelSet};
use crate::oracle::DistanceOracle;
use crate::persist::{self, PersistError};

/// A borrowed hub labeling in the flat CSR serving layout: the query kernel
/// shared by every storage backend.
///
/// `entries[offsets[v] .. offsets[v + 1]]` is the label set of vertex `v`,
/// sorted ascending by hub rank position; `order[pos]` is the vertex at rank
/// position `pos` (most important first). Construction is restricted to this
/// crate — a view always comes from a validated source, either
/// [`FlatIndex::as_view`] or the persistence layer's
/// [`view_bytes`](crate::persist::view_bytes) — so the query methods can
/// index with the CSR invariants taken as given.
///
/// Views are `Copy`: three fat pointers, cheap to pass around and to send to
/// worker threads (`FlatView: Sync` via its shared slices).
#[derive(Debug, Clone, Copy)]
pub struct FlatView<'a> {
    offsets: &'a [u64],
    entries: &'a [LabelEntry],
    order: &'a [VertexId],
}

impl<'a> FlatView<'a> {
    /// Assembles a view from raw parts, without validating the CSR
    /// invariants. Callers (the owning wrapper and the persistence layer)
    /// must have established them.
    pub(crate) fn from_validated_parts(
        order: &'a [VertexId],
        offsets: &'a [u64],
        entries: &'a [LabelEntry],
    ) -> Self {
        debug_assert_eq!(offsets.len(), order.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), entries.len() as u64);
        FlatView {
            offsets,
            entries,
            order,
        }
    }

    /// Number of vertices covered by the view.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The ranking's order array: `order()[pos]` is the vertex at rank
    /// position `pos`, most important first.
    pub fn order(&self) -> &'a [VertexId] {
        self.order
    }

    /// Vertex at rank position `pos`.
    ///
    /// # Panics
    ///
    /// Panics when `pos >= num_vertices()`.
    #[inline]
    pub fn vertex_at(&self, pos: u32) -> VertexId {
        self.order[pos as usize]
    }

    /// The CSR offsets array (`num_vertices + 1` entries, first `0`, last
    /// equal to [`Self::total_labels`]).
    pub fn offsets(&self) -> &'a [u64] {
        self.offsets
    }

    /// All label entries, concatenated in vertex order.
    pub fn entries(&self) -> &'a [LabelEntry] {
        self.entries
    }

    /// Label slice of vertex `v`, sorted ascending by hub rank position.
    ///
    /// # Panics
    ///
    /// Panics when `v >= num_vertices()`; use [`Self::try_labels_of`] for
    /// ids that may come from untrusted input.
    #[inline]
    pub fn labels_of(&self, v: VertexId) -> &'a [LabelEntry] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Label slice of vertex `v`, or `None` when `v` is out of range.
    #[inline]
    pub fn try_labels_of(&self, v: VertexId) -> Option<&'a [LabelEntry]> {
        let lo = *self.offsets.get(v as usize)? as usize;
        let hi = *self.offsets.get(v as usize + 1)? as usize;
        Some(&self.entries[lo..hi])
    }

    /// Answers a PPSD query: the exact shortest-path distance between `u` and
    /// `v`, or [`chl_graph::types::INFINITY`] when they are not connected.
    /// Ids outside `0..num_vertices()` are unreachable, including
    /// `query(u, u)` for a nonexistent `u`.
    pub fn query(&self, u: VertexId, v: VertexId) -> Distance {
        let (Some(lu), Some(lv)) = (self.try_labels_of(u), self.try_labels_of(v)) else {
            return chl_graph::types::INFINITY;
        };
        if u == v {
            return 0;
        }
        join_sorted_slices(lu, lv)
            .map(|(_, d)| d)
            .unwrap_or(chl_graph::types::INFINITY)
    }

    /// Like [`Self::query`] but also reports the hub (as a vertex id) through
    /// which the minimum distance is achieved. `None` for disconnected pairs
    /// and for out-of-range ids.
    pub fn query_with_hub(&self, u: VertexId, v: VertexId) -> Option<(VertexId, Distance)> {
        let (lu, lv) = (self.try_labels_of(u)?, self.try_labels_of(v)?);
        if u == v {
            return Some((u, 0));
        }
        join_sorted_slices(lu, lv).map(|(hub_pos, d)| (self.vertex_at(hub_pos), d))
    }

    /// Total number of labels stored.
    pub fn total_labels(&self) -> usize {
        self.entries.len()
    }

    /// Average label size per vertex (ALS).
    pub fn average_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.total_labels() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum label-set size over all vertices.
    pub fn max_label_size(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Bytes of backing storage the view's slices span — for a view over a
    /// `.chl` v2 buffer, the file bytes actually touched by queries. Unlike
    /// an owned [`FlatIndex`], a view carries no rank-position array, so this
    /// is smaller than [`FlatIndex::memory_bytes`] by `4 * n`.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets)
            + std::mem::size_of_val(self.entries)
            + std::mem::size_of_val(self.order)
    }
}

impl DistanceOracle for FlatView<'_> {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.query(u, v)
    }

    fn num_vertices(&self) -> usize {
        FlatView::num_vertices(self)
    }

    fn memory_bytes(&self) -> usize {
        FlatView::memory_bytes(self)
    }
}

/// A hub labeling stored as two contiguous CSR-style arrays, owned.
///
/// This is a thin owning wrapper over the [`FlatView`] query kernel: the
/// arrays live in `Vec`s (plus the full [`Ranking`], whose rank-position
/// array the borrowed view does not need), and every query delegates through
/// [`FlatIndex::as_view`].
///
/// Build one with [`FlatIndex::from_index`] (or `From<&HubLabelIndex>`),
/// persist it with [`FlatIndex::save`] and reload it with
/// [`FlatIndex::load`]:
///
/// ```
/// use chl_core::api::{Algorithm, ChlBuilder, RankingStrategy};
/// use chl_core::flat::FlatIndex;
/// use chl_graph::generators::{grid_network, GridOptions};
///
/// let g = grid_network(&GridOptions { rows: 5, cols: 5, ..GridOptions::default() }, 3);
/// let built = ChlBuilder::new(&g)
///     .ranking(RankingStrategy::Degree)
///     .algorithm(Algorithm::Pll)
///     .build()
///     .unwrap();
/// let flat = FlatIndex::from_index(&built.index);
/// assert_eq!(flat.query(0, 24), built.index.query(0, 24));
/// assert_eq!(flat.to_index().unwrap(), built.index);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatIndex {
    offsets: Vec<u64>,
    entries: Vec<LabelEntry>,
    ranking: Ranking,
}

impl FlatIndex {
    /// Flattens a pointer-per-vertex index into contiguous storage.
    pub fn from_index(index: &HubLabelIndex) -> Self {
        let n = index.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(index.total_labels());
        offsets.push(0);
        for v in 0..n as VertexId {
            entries.extend_from_slice(index.labels_of(v).entries());
            offsets.push(entries.len() as u64);
        }
        FlatIndex {
            offsets,
            entries,
            ranking: index.ranking().clone(),
        }
    }

    /// Copies a borrowed view into owned storage (the inverse of
    /// [`FlatIndex::as_view`]); the only allocation a zero-copy load path
    /// performs when a caller explicitly asks for ownership.
    pub fn from_view(view: FlatView<'_>) -> Self {
        let ranking = Ranking::from_order(view.order().to_vec(), view.num_vertices())
            .expect("views only exist over validated permutations");
        FlatIndex {
            offsets: view.offsets().to_vec(),
            entries: view.entries().to_vec(),
            ranking,
        }
    }

    /// Borrows the index as the ownership-agnostic query kernel. All query
    /// methods on `FlatIndex` are thin forwards through this view, so owned
    /// and borrowed serving paths execute literally the same code.
    #[inline]
    pub fn as_view(&self) -> FlatView<'_> {
        FlatView::from_validated_parts(self.ranking.order(), &self.offsets, &self.entries)
    }

    /// Rebuilds the pointer-per-vertex [`HubLabelIndex`]. The conversion is
    /// lossless: `FlatIndex::from_index(&i).to_index().unwrap() == i`.
    pub fn to_index(&self) -> Result<HubLabelIndex, crate::error::LabelingError> {
        let labels = (0..self.num_vertices() as VertexId)
            .map(|v| LabelSet::from_entries(self.labels_of(v).to_vec()))
            .collect();
        HubLabelIndex::new(labels, self.ranking.clone())
    }

    /// Assembles a flat index from raw parts, without validating the CSR
    /// invariants. The persistence layer calls this after its own validation;
    /// everything else should go through [`FlatIndex::from_index`].
    pub(crate) fn from_validated_parts(
        offsets: Vec<u64>,
        entries: Vec<LabelEntry>,
        ranking: Ranking,
    ) -> Self {
        debug_assert_eq!(offsets.len(), ranking.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), entries.len() as u64);
        FlatIndex {
            offsets,
            entries,
            ranking,
        }
    }

    /// Number of vertices covered by the index.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The ranking the labeling respects.
    pub fn ranking(&self) -> &Ranking {
        &self.ranking
    }

    /// The CSR offsets array (`num_vertices + 1` entries, first `0`, last
    /// equal to [`Self::total_labels`]).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// All label entries, concatenated in vertex order.
    pub fn entries(&self) -> &[LabelEntry] {
        &self.entries
    }

    /// Label slice of vertex `v`, sorted ascending by hub rank position.
    ///
    /// # Panics
    ///
    /// Panics when `v >= num_vertices()`; use [`Self::try_labels_of`] for
    /// ids that may come from untrusted input.
    #[inline]
    pub fn labels_of(&self, v: VertexId) -> &[LabelEntry] {
        self.as_view().labels_of(v)
    }

    /// Label slice of vertex `v`, or `None` when `v` is out of range.
    #[inline]
    pub fn try_labels_of(&self, v: VertexId) -> Option<&[LabelEntry]> {
        self.as_view().try_labels_of(v)
    }

    /// Answers a PPSD query: the exact shortest-path distance between `u` and
    /// `v`, or [`chl_graph::types::INFINITY`] when they are not connected.
    /// Same contract as [`HubLabelIndex::query`], on contiguous storage: ids
    /// outside `0..num_vertices()` are unreachable, including `query(u, u)`
    /// for a nonexistent `u`.
    pub fn query(&self, u: VertexId, v: VertexId) -> Distance {
        self.as_view().query(u, v)
    }

    /// Like [`Self::query`] but also reports the hub (as a vertex id) through
    /// which the minimum distance is achieved. `None` for disconnected pairs
    /// and for out-of-range ids.
    pub fn query_with_hub(&self, u: VertexId, v: VertexId) -> Option<(VertexId, Distance)> {
        self.as_view().query_with_hub(u, v)
    }

    /// Total number of labels stored.
    pub fn total_labels(&self) -> usize {
        self.entries.len()
    }

    /// Average label size per vertex (ALS).
    pub fn average_label_size(&self) -> f64 {
        self.as_view().average_label_size()
    }

    /// Maximum label-set size over all vertices.
    pub fn max_label_size(&self) -> usize {
        self.as_view().max_label_size()
    }

    /// Approximate heap memory consumed, in bytes: the two flat arrays plus
    /// both direction arrays of the [`Ranking`] (order and rank position) —
    /// everything resident when this index serves.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.entries.len() * std::mem::size_of::<LabelEntry>()
            + self.ranking.memory_bytes()
    }

    /// Serializes the index into the versioned `.chl` byte format
    /// (see [`crate::persist`] for the field-by-field layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        persist::to_bytes(self)
    }

    /// Deserializes an index from `.chl` bytes, validating magic, version,
    /// checksum and every CSR/ranking invariant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        persist::from_bytes(bytes)
    }

    /// Writes the index to `path` in the `.chl` format.
    ///
    /// A worked round-trip (the serving half runs in a fresh process in real
    /// deployments — `load` only needs the file):
    ///
    /// ```
    /// use chl_core::flat::FlatIndex;
    /// use chl_core::HubLabelIndex;
    /// use chl_ranking::Ranking;
    ///
    /// // Label a 3-vertex path graph 0 - 1 - 2 by hand.
    /// let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
    /// let index = HubLabelIndex::from_triples(
    ///     vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
    ///     ranking,
    /// );
    ///
    /// let path = std::env::temp_dir().join(format!("chl-doctest-{}.chl", std::process::id()));
    /// FlatIndex::from_index(&index).save(&path).unwrap();
    ///
    /// let served = FlatIndex::load(&path).unwrap();
    /// assert_eq!(served.query(0, 2), 2);
    /// assert_eq!(served.query(0, 2), index.query(0, 2));
    /// std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> Result<(), PersistError> {
        persist::save(self, path)
    }

    /// Reads an index from a `.chl` file written by [`Self::save`].
    /// Corruption of any kind — truncation, bit flips, wrong magic or
    /// version — is reported as a typed [`PersistError`], never a panic.
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<Self, PersistError> {
        persist::load(path)
    }
}

impl From<&HubLabelIndex> for FlatIndex {
    fn from(index: &HubLabelIndex) -> Self {
        FlatIndex::from_index(index)
    }
}

impl From<FlatView<'_>> for FlatIndex {
    fn from(view: FlatView<'_>) -> Self {
        FlatIndex::from_view(view)
    }
}

impl DistanceOracle for FlatIndex {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.query(u, v)
    }

    fn num_vertices(&self) -> usize {
        FlatIndex::num_vertices(self)
    }

    fn memory_bytes(&self) -> usize {
        FlatIndex::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::types::INFINITY;

    fn tiny_index() -> HubLabelIndex {
        // Path 0 - 1 - 2, ranking 1 > 0 > 2 (see index.rs tests).
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        )
    }

    #[test]
    fn flat_answers_identically_to_pointer_layout() {
        let idx = tiny_index();
        let flat = FlatIndex::from_index(&idx);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(flat.query(u, v), idx.query(u, v), "({u}, {v})");
                assert_eq!(flat.query_with_hub(u, v), idx.query_with_hub(u, v));
            }
        }
    }

    #[test]
    fn view_is_the_same_kernel_as_the_owned_index() {
        let flat = FlatIndex::from_index(&tiny_index());
        let view = flat.as_view();
        assert_eq!(view.num_vertices(), flat.num_vertices());
        assert_eq!(view.total_labels(), flat.total_labels());
        assert_eq!(view.max_label_size(), flat.max_label_size());
        assert_eq!(view.order(), flat.ranking().order());
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(view.query(u, v), flat.query(u, v), "({u}, {v})");
                assert_eq!(view.query_with_hub(u, v), flat.query_with_hub(u, v));
            }
        }
        // Views are Copy and round-trip to an equal owned index.
        let copy = view;
        assert_eq!(FlatIndex::from_view(copy), flat);
        assert_eq!(FlatIndex::from(view), flat);
    }

    #[test]
    fn conversion_round_trips_losslessly() {
        let idx = tiny_index();
        let flat = FlatIndex::from(&idx);
        assert_eq!(flat.to_index().unwrap(), idx);
    }

    #[test]
    fn csr_shape_and_statistics_match() {
        let idx = tiny_index();
        let flat = FlatIndex::from_index(&idx);
        assert_eq!(flat.num_vertices(), 3);
        assert_eq!(flat.offsets(), &[0, 2, 3, 5]);
        assert_eq!(flat.total_labels(), idx.total_labels());
        assert_eq!(flat.max_label_size(), idx.max_label_size());
        assert!((flat.average_label_size() - idx.average_label_size()).abs() < 1e-12);
        assert_eq!(flat.labels_of(1).len(), 1);
        assert!(flat.memory_bytes() > 0);
    }

    #[test]
    fn memory_bytes_accounts_for_the_ranking_too() {
        let flat = FlatIndex::from_index(&tiny_index());
        let n = flat.num_vertices();
        let arrays = std::mem::size_of_val(flat.offsets()) + std::mem::size_of_val(flat.entries());
        // The owned index keeps order + position (8 bytes per vertex)...
        assert_eq!(flat.memory_bytes(), arrays + 8 * n);
        // ...while a borrowed view only spans the order array (4 per vertex).
        assert_eq!(flat.as_view().memory_bytes(), arrays + 4 * n);
    }

    #[test]
    fn empty_index_flattens() {
        let flat = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(4)));
        assert_eq!(flat.num_vertices(), 4);
        assert_eq!(flat.total_labels(), 0);
        assert_eq!(flat.query(0, 3), INFINITY);
        assert_eq!(flat.query(2, 2), 0);
        assert_eq!(flat.max_label_size(), 0);
        assert_eq!(flat.average_label_size(), 0.0);
    }

    #[test]
    fn zero_vertex_index_flattens() {
        let flat = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(0)));
        assert_eq!(flat.num_vertices(), 0);
        assert_eq!(flat.average_label_size(), 0.0);
        assert_eq!(flat.offsets(), &[0]);
        assert_eq!(flat.as_view().num_vertices(), 0);
        assert_eq!(flat.as_view().average_label_size(), 0.0);
    }

    #[test]
    fn oracle_surface_matches_direct_calls() {
        let flat = FlatIndex::from_index(&tiny_index());
        let oracle: &dyn DistanceOracle = &flat;
        assert_eq!(oracle.distance(0, 2), 2);
        assert_eq!(oracle.num_vertices(), 3);
        assert!(oracle.memory_bytes() > 0);
        assert_eq!(oracle.distances(&[(0, 1), (0, 2)]), vec![1, 2]);
        // The borrowed view serves through the same trait.
        let view = flat.as_view();
        let oracle: &dyn DistanceOracle = &view;
        assert_eq!(oracle.distance(0, 2), 2);
        assert_eq!(oracle.distances(&[(0, 1), (0, 2)]), vec![1, 2]);
    }

    #[test]
    fn out_of_range_ids_are_unreachable_not_a_panic() {
        let flat = FlatIndex::from_index(&tiny_index()); // 3 vertices
        for &(u, v) in &[(0, 3), (3, 0), (3, 3), (7, 9), (u32::MAX, 0)] {
            assert_eq!(flat.query(u, v), INFINITY, "({u}, {v})");
            assert_eq!(flat.query_with_hub(u, v), None, "({u}, {v})");
            assert_eq!(flat.as_view().query(u, v), INFINITY, "view ({u}, {v})");
            assert_eq!(flat.as_view().query_with_hub(u, v), None);
        }
        // A self-query on a nonexistent vertex is NOT 0.
        assert_eq!(flat.query(3, 3), INFINITY);
        assert!(flat.try_labels_of(2).is_some());
        assert!(flat.try_labels_of(3).is_none());
        assert!(flat.as_view().try_labels_of(3).is_none());
        // Batch queries go through the same checked path.
        let oracle: &dyn DistanceOracle = &flat;
        assert_eq!(
            oracle.distances(&[(0, 2), (3, 3), (0, 9)]),
            vec![2, INFINITY, INFINITY]
        );
        assert!(!oracle.connected(3, 3));
    }
}
